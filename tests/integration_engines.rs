//! The transition-safety net for the event-driven timing engine: the cycle
//! and event engines must produce **bit-identical** results.
//!
//! Both engines share one scheduler and one issue path (see
//! `crates/dram/src/controller/mod.rs`); the event engine only skips cycles
//! in which the cycle engine provably finds nothing to issue.  These tests
//! pin that equivalence end to end:
//!
//! * identical [`Record`]s for every Table I preset at a reduced burst count
//!   (both mappings, default refresh — the exact sweep behind Table I);
//! * identical raw [`tbi::Stats`] (including diagnostic counters such as
//!   `stall_cycles`) for a write-then-read phase pair, where any divergence
//!   in absolute time would shift refresh deadlines and show up;
//! * identical stats under every refresh mode and scheduling/page-policy
//!   ablation, where the scheduler takes its rarer code paths.

use tbi::dram::controller::TimingEngine;
use tbi::exp::SweepGrid;
use tbi::{
    ControllerConfig, DramConfig, DramStandard, InterleaverSpec, MappingKind, PagePolicy, Record,
    RefreshMode, SchedulingPolicy, ThroughputEvaluator,
};

const REDUCED_BURSTS: u64 = 6_000;

fn table1_records(engine: TimingEngine) -> Vec<Record> {
    SweepGrid::new()
        .all_presets()
        .expect("all presets build")
        .size(REDUCED_BURSTS)
        .mappings(MappingKind::TABLE1)
        .controller(ControllerConfig {
            engine,
            ..ControllerConfig::default()
        })
        .into_experiment()
        .with_auto_workers()
        .run()
        .expect("table1 sweep runs")
}

#[test]
fn cycle_and_event_engines_produce_identical_table1_records() {
    let cycle = table1_records(TimingEngine::Cycle);
    let event = table1_records(TimingEngine::Event);
    assert_eq!(cycle.len(), event.len());
    for (c, e) in cycle.iter().zip(&event) {
        assert_eq!(c, e, "records diverge for {}", c.scenario_id);
        // `Record`'s PartialEq deliberately ignores wall-clock fields, but
        // the simulated-cycle count is deterministic and must match exactly.
        assert_eq!(
            c.simulated_cycles, e.simulated_cycles,
            "cycle counts diverge for {}",
            c.scenario_id
        );
    }
}

fn phase_stats(
    standard: DramStandard,
    rate: u32,
    mapping: MappingKind,
    ctrl: ControllerConfig,
) -> (tbi::Stats, tbi::Stats) {
    let dram = DramConfig::preset(standard, rate).expect("preset exists");
    let evaluator = ThroughputEvaluator::with_controller(
        dram,
        InterleaverSpec::from_burst_count(REDUCED_BURSTS),
        ctrl,
    );
    let report = evaluator.evaluate(mapping).expect("evaluation runs");
    (report.write.stats, report.read.stats)
}

/// Raw per-phase statistics — every field, including diagnostics — must be
/// bit-identical between the engines.  The read phase starts at whatever
/// absolute cycle the write phase ended on, so a single skipped or duplicated
/// cycle in either engine would desynchronize the refresh deadlines of the
/// second phase and fail this test.
#[test]
fn cycle_and_event_engines_agree_on_raw_stats() {
    for (standard, rate) in [
        (DramStandard::Ddr4, 3200),
        (DramStandard::Lpddr4, 4266),
        (DramStandard::Ddr5, 6400),
    ] {
        for mapping in MappingKind::TABLE1 {
            let cycle_ctrl = ControllerConfig {
                engine: TimingEngine::Cycle,
                ..ControllerConfig::default()
            };
            let event_ctrl = ControllerConfig {
                engine: TimingEngine::Event,
                ..ControllerConfig::default()
            };
            let (cw, cr) = phase_stats(standard, rate, mapping, cycle_ctrl);
            let (ew, er) = phase_stats(standard, rate, mapping, event_ctrl);
            assert_eq!(cw, ew, "{standard:?}-{rate}/{mapping} write phase");
            assert_eq!(cr, er, "{standard:?}-{rate}/{mapping} read phase");
        }
    }
}

#[test]
fn engines_agree_across_controller_ablations() {
    let ablations = [
        ControllerConfig {
            refresh_mode: Some(RefreshMode::Disabled),
            ..ControllerConfig::default()
        },
        ControllerConfig {
            refresh_mode: Some(RefreshMode::AllBank),
            ..ControllerConfig::default()
        },
        ControllerConfig {
            refresh_mode: Some(RefreshMode::PerBank),
            ..ControllerConfig::default()
        },
        ControllerConfig {
            scheduling: SchedulingPolicy::Fcfs,
            ..ControllerConfig::default()
        },
        ControllerConfig {
            page_policy: PagePolicy::Closed,
            ..ControllerConfig::default()
        },
        ControllerConfig {
            queue_capacity: 4,
            ..ControllerConfig::default()
        },
    ];
    for base in ablations {
        for mapping in MappingKind::TABLE1 {
            let cycle_ctrl = ControllerConfig {
                engine: TimingEngine::Cycle,
                ..base
            };
            let event_ctrl = ControllerConfig {
                engine: TimingEngine::Event,
                ..base
            };
            let (cw, cr) = phase_stats(DramStandard::Lpddr5, 8533, mapping, cycle_ctrl);
            let (ew, er) = phase_stats(DramStandard::Lpddr5, 8533, mapping, event_ctrl);
            assert_eq!(cw, ew, "{base:?}/{mapping} write phase");
            assert_eq!(cr, er, "{base:?}/{mapping} read phase");
        }
    }
}
