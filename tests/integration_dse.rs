//! End-to-end tests of the bit-permutation design-space exploration:
//! seed-reproducibility at any worker count, and replay of discovered
//! permutations as ordinary scenarios on both timing engines.

use tbi::{
    BitPermutation, DramConfig, DramStandard, InterleaverSpec, MappingKind, MappingSearch,
    Scenario, SearchSettings, SweepGrid, TimingEngine,
};

fn settings(workers: usize) -> SearchSettings {
    SearchSettings {
        seed: 7,
        restarts: 3,
        budget: 10,
        neighbors: 4,
        workers,
        ..SearchSettings::default()
    }
}

fn run_search(workers: usize) -> tbi::SearchRecord {
    let dram = DramConfig::preset(DramStandard::Lpddr4, 4266).unwrap();
    MappingSearch::new(
        dram,
        InterleaverSpec::from_burst_count(4_000),
        settings(workers),
    )
    .run()
    .unwrap()
}

/// The acceptance-criterion invariant: a fixed seed reproduces the search
/// bit-for-bit at any worker count (records compare on every deterministic
/// field).
#[test]
fn search_is_bit_reproducible_for_a_fixed_seed_at_any_worker_count() {
    let one = run_search(1);
    let four = run_search(4);
    let auto = run_search(0);
    assert_eq!(one, four);
    assert_eq!(one, auto);
    assert_eq!(one.permutation, four.permutation);
    assert_eq!(one.best.activates, four.best.activates);
}

/// A discovered permutation replays as an ordinary scenario: the search's
/// own record is reproduced exactly, on both timing engines.
#[test]
fn discovered_permutations_replay_as_ordinary_scenarios_on_both_engines() {
    let outcome = run_search(1);
    let permutation: BitPermutation = outcome.permutation.parse().unwrap();
    let dram = DramConfig::preset(DramStandard::Lpddr4, 4266).unwrap();
    let scenario = Scenario::custom(
        dram,
        MappingKind::Permutation(permutation),
        InterleaverSpec::from_burst_count(4_000),
    );
    let event = scenario.clone().run().unwrap();
    let cycle = scenario.with_engine(TimingEngine::Cycle).run().unwrap();
    assert_eq!(event, cycle, "both engines agree on permutation mappings");
    assert_eq!(event, outcome.best, "replay reproduces the search record");
}

/// Permutation design points ride the regular sweep machinery: they expand
/// through `SweepGrid` with distinct stable IDs next to the named schemes.
#[test]
fn permutations_sweep_through_the_grid_next_to_named_schemes() {
    let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
    let permutation = BitPermutation::for_scheme(
        tbi::dram::DecodeScheme::default(),
        &dram.geometry,
        tbi::ChannelTopology::default(),
    )
    .unwrap();
    let records = SweepGrid::new()
        .dram(dram)
        .size(2_000)
        .mapping(MappingKind::Optimized)
        .mapping(MappingKind::Permutation(permutation))
        .into_experiment()
        .with_workers(2)
        .run()
        .unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].mapping, "optimized");
    let label = format!("permutation:{permutation}");
    assert_eq!(records[1].mapping, label);
    assert!(records[1].scenario_id.contains(&label));
    assert_ne!(records[0].scenario_id, records[1].scenario_id);
}
