//! Integration tests spanning the interleaver and DRAM crates: the full
//! trace-generation → controller → statistics pipeline.

use tbi::interleaver::trace::{AccessPhase, TraceGenerator};
use tbi::{
    ControllerConfig, DramConfig, DramStandard, InterleaverSpec, MappingKind, MemorySystem,
    RefreshMode, SchedulingPolicy, ThroughputEvaluator, TriangularInterleaver,
};

#[test]
fn every_mapping_completes_every_request_on_every_preset() {
    let spec = InterleaverSpec::from_burst_count(3_000);
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let dram = DramConfig::preset(*standard, *rate).unwrap();
        for kind in MappingKind::ALL {
            let evaluator = ThroughputEvaluator::new(dram.clone(), spec);
            let report = evaluator.evaluate(kind).unwrap();
            assert_eq!(
                report.write.stats.completed_requests,
                spec.total_positions(),
                "{kind} write on {}",
                dram.label()
            );
            assert_eq!(
                report.read.stats.completed_requests,
                spec.total_positions(),
                "{kind} read on {}",
                dram.label()
            );
            assert!(report.min_utilization() > 0.0, "{kind} on {}", dram.label());
        }
    }
}

#[test]
fn optimized_mapping_never_loses_to_row_major_on_the_limiting_phase() {
    let spec = InterleaverSpec::from_burst_count(30_000);
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let dram = DramConfig::preset(*standard, *rate).unwrap();
        let evaluator = ThroughputEvaluator::new(dram.clone(), spec);
        let (row_major, optimized) = evaluator.evaluate_table1_pair().unwrap();
        assert!(
            optimized.min_utilization() >= row_major.min_utilization() * 0.98,
            "{}: optimized {} vs row-major {}",
            dram.label(),
            optimized.min_utilization(),
            row_major.min_utilization()
        );
    }
}

#[test]
fn trace_through_memory_system_matches_evaluator_counts() {
    let dram = DramConfig::preset(DramStandard::Ddr4, 1600).unwrap();
    let interleaver = TriangularInterleaver::new(96).unwrap();
    let mapping = MappingKind::Optimized.build(&dram, 96).unwrap();
    let generator = TraceGenerator::new(interleaver, mapping.as_ref());

    let mut system = MemorySystem::new(dram.clone()).unwrap();
    let write_stats = system.run_trace(generator.requests(AccessPhase::Write));
    system.reset_stats();
    let read_stats = system.run_trace(generator.requests(AccessPhase::Read));

    assert_eq!(write_stats.write_bursts, interleaver.len());
    assert_eq!(read_stats.read_bursts, interleaver.len());
    assert_eq!(write_stats.read_bursts, 0);
    assert_eq!(read_stats.write_bursts, 0);
}

#[test]
fn fcfs_scheduling_is_never_faster_than_frfcfs_for_the_baseline() {
    let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
    let spec = InterleaverSpec::from_burst_count(10_000);
    let run = |policy: SchedulingPolicy| {
        let controller = ControllerConfig {
            scheduling: policy,
            refresh_mode: Some(RefreshMode::Disabled),
            ..ControllerConfig::default()
        };
        ThroughputEvaluator::with_controller(dram.clone(), spec, controller)
            .evaluate(MappingKind::RowMajor)
            .unwrap()
            .min_utilization()
    };
    assert!(run(SchedulingPolicy::FrFcfs) >= run(SchedulingPolicy::Fcfs));
}

#[test]
fn disabling_refresh_lifts_optimized_mapping_above_99_percent() {
    // The paper's in-text claim: with refresh disabled the optimized mapping
    // exceeds 99 % utilization.  Checked here on one representative
    // configuration with a moderately sized interleaver.
    let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
    let controller = ControllerConfig {
        refresh_mode: Some(RefreshMode::Disabled),
        ..ControllerConfig::default()
    };
    let evaluator = ThroughputEvaluator::with_controller(
        dram,
        InterleaverSpec::from_burst_count(120_000),
        controller,
    );
    let report = evaluator.evaluate(MappingKind::Optimized).unwrap();
    assert!(
        report.min_utilization() > 0.97,
        "expected near-ideal utilization without refresh, got {}",
        report.min_utilization()
    );
}
