//! Integration test for the experiment layer: reproduces the qualitative
//! Table I ordering through a declarative [`SweepGrid`] and proves that the
//! parallel runner is deterministic — a 1-worker and a multi-worker run
//! produce identical record vectors.

use tbi::{MappingKind, Record, SweepGrid};

const REDUCED_BURSTS: u64 = 20_000;

fn table1_grid() -> SweepGrid {
    SweepGrid::new()
        .all_presets()
        .expect("all presets build")
        .size(REDUCED_BURSTS)
        .mappings(MappingKind::TABLE1)
}

fn run_with_workers(workers: usize) -> Vec<Record> {
    table1_grid()
        .into_experiment()
        .with_workers(workers)
        .run()
        .expect("table1 sweep runs")
}

#[test]
fn golden_table1_ordering_via_sweep_grid_is_worker_count_invariant() {
    // One experiment, executed sequentially and with several worker counts:
    // the records must be bit-identical, and the paper's qualitative Table I
    // ordering must hold in all of them.
    let sequential = run_with_workers(1);
    assert_eq!(
        sequential.len(),
        2 * tbi::dram::standards::ALL_CONFIGS.len()
    );
    let parallel = run_with_workers(4);
    assert_eq!(sequential, parallel, "worker count changed the records");

    // Golden pin of the paper's qualitative Table I ordering at a
    // deliberately small burst count.  Two configurations (DDR3-800,
    // DDR5-3200) never collapse under row-major in this reproduction — both
    // mappings sit above 95 % and the difference is simulation noise — so
    // the pin is:
    //
    //   * wherever the row-major baseline's worst phase drops below 90 %,
    //     the optimized mapping must beat it strictly AND stay above 90 %;
    //   * everywhere else the optimized mapping must be no worse than the
    //     baseline minus a 1 % noise tolerance.
    const NOISE: f64 = 0.01;
    let mut collapsing_rows = 0;
    for pair in sequential.chunks(2) {
        let [row_major, optimized] = pair else {
            panic!("TABLE1 grids expand to (row-major, optimized) pairs");
        };
        assert_eq!(row_major.dram_label, optimized.dram_label);
        assert_eq!(row_major.mapping, "row-major");
        assert_eq!(optimized.mapping, "optimized");
        let (rm, opt) = (row_major.min_utilization, optimized.min_utilization);
        if rm < 0.90 {
            collapsing_rows += 1;
            assert!(
                opt > rm && opt > 0.90,
                "{}: optimized min utilization {opt:.4} should beat collapsed \
                 row-major {rm:.4} and exceed 90 %",
                row_major.dram_label
            );
        } else {
            assert!(
                opt >= rm - NOISE,
                "{}: optimized min utilization {opt:.4} fell more than {NOISE} \
                 below row-major {rm:.4}",
                row_major.dram_label
            );
        }
    }
    // The paper's table has a majority of configurations where row-major
    // collapses; if none did here, this golden test would be vacuous.
    assert!(
        collapsing_rows >= 6,
        "only {collapsing_rows}/10 configurations showed a row-major collapse"
    );
}

#[test]
fn sweep_grid_ids_match_paper_row_order() {
    let scenarios = table1_grid().scenarios();
    let labels: Vec<String> = scenarios
        .iter()
        .step_by(2)
        .map(|s| s.dram().label())
        .collect();
    let expected: Vec<String> = tbi::dram::standards::ALL_CONFIGS
        .iter()
        .map(|(standard, rate)| format!("{}-{rate}", standard.name()))
        .collect();
    assert_eq!(labels, expected);
}

#[test]
fn records_serialize_to_parseable_json() {
    // A tiny sweep through the whole pipeline: run, serialize, re-parse.
    let records = SweepGrid::new()
        .preset(tbi::DramStandard::Ddr3, 800)
        .expect("preset exists")
        .size(2_000)
        .mappings(MappingKind::TABLE1)
        .into_experiment()
        .run()
        .expect("sweep runs");
    let json = tbi::exp::serialize::records_to_json(&records);
    let value = tbi::exp::json::parse(&json).expect("emitted JSON parses");
    let array = value.as_array().expect("array of records");
    assert_eq!(array.len(), records.len());
    for (parsed, record) in array.iter().zip(&records) {
        assert_eq!(
            parsed.get("scenario_id").and_then(|v| v.as_str()),
            Some(record.scenario_id.as_str())
        );
        assert_eq!(
            parsed.get("min_utilization").and_then(|v| v.as_f64()),
            Some(record.min_utilization)
        );
    }
}
