//! Cross-validation between the analytic access-pattern model
//! (`tbi_interleaver::analysis`) and the cycle-accurate simulator: the cheap
//! architectural statistics must predict what the detailed model measures.

use tbi::interleaver::analysis::{analyse_phase, MappingComparison};
use tbi::interleaver::trace::AccessPhase;
use tbi::{
    ControllerConfig, DramConfig, DramStandard, InterleaverSpec, MappingKind, RefreshMode,
    ThroughputEvaluator,
};

const DIMENSION: u32 = 300;

fn spec() -> InterleaverSpec {
    // Matches DIMENSION: 300*301/2 positions.
    InterleaverSpec::from_burst_count(45_000)
}

#[test]
fn analytic_activation_counts_match_the_simulator_without_refresh() {
    // With refresh disabled and an open-page policy the controller performs
    // exactly one activate per (bank, row) transition, which is what the
    // analytic model counts.
    let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
    let controller = ControllerConfig {
        refresh_mode: Some(RefreshMode::Disabled),
        ..ControllerConfig::default()
    };
    for kind in [MappingKind::RowMajor, MappingKind::Optimized] {
        let mapping = kind.build(&dram, DIMENSION).unwrap();
        let predicted_write = analyse_phase(mapping.as_ref(), AccessPhase::Write).activations;
        let predicted_read = analyse_phase(mapping.as_ref(), AccessPhase::Read).activations;

        let evaluator = ThroughputEvaluator::with_controller(dram.clone(), spec(), controller);
        let report = evaluator.evaluate(kind).unwrap();
        // The simulator may perform a handful of extra activates because the
        // read phase starts with rows left open by the write phase.
        let measured_write = report.write.stats.activates;
        let measured_read = report.read.stats.activates;
        let close = |measured: u64, predicted: u64| {
            measured >= predicted.saturating_sub(dram.geometry.total_banks() as u64)
                && measured <= predicted + dram.geometry.total_banks() as u64
        };
        assert!(
            close(measured_write, predicted_write),
            "{kind}: write activates measured {measured_write} vs predicted {predicted_write}"
        );
        assert!(
            close(measured_read, predicted_read),
            "{kind}: read activates measured {measured_read} vs predicted {predicted_read}"
        );
    }
}

#[test]
fn higher_predicted_activation_reuse_means_higher_measured_utilization() {
    let dram = DramConfig::preset(DramStandard::Lpddr4, 4266).unwrap();
    let controller = ControllerConfig {
        refresh_mode: Some(RefreshMode::Disabled),
        ..ControllerConfig::default()
    };
    let mut predicted_reuse = Vec::new();
    let mut measured_min_util = Vec::new();
    for kind in [MappingKind::RowMajor, MappingKind::Optimized] {
        let mapping = kind.build(&dram, DIMENSION).unwrap();
        let write = analyse_phase(mapping.as_ref(), AccessPhase::Write);
        let read = analyse_phase(mapping.as_ref(), AccessPhase::Read);
        predicted_reuse.push(
            write
                .accesses_per_activation()
                .min(read.accesses_per_activation()),
        );
        let evaluator = ThroughputEvaluator::with_controller(dram.clone(), spec(), controller);
        measured_min_util.push(evaluator.evaluate(kind).unwrap().min_utilization());
    }
    assert!(predicted_reuse[1] > predicted_reuse[0]);
    assert!(measured_min_util[1] > measured_min_util[0]);
}

#[test]
fn comparison_ranks_optimized_best_on_every_preset() {
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let dram = DramConfig::preset(*standard, *rate).unwrap();
        let mut comparison = MappingComparison::new();
        for kind in [
            MappingKind::RowMajor,
            MappingKind::BankRoundRobin,
            MappingKind::Optimized,
        ] {
            let mapping = kind.build(&dram, 256).unwrap();
            comparison.add(mapping.as_ref());
        }
        assert_eq!(
            comparison.best_by_activation_reuse(),
            Some("optimized"),
            "{standard:?}-{rate}"
        );
    }
}

#[test]
fn bank_group_switch_rate_is_ideal_for_the_optimized_mapping() {
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let dram = DramConfig::preset(*standard, *rate).unwrap();
        if dram.geometry.bank_groups == 1 {
            continue;
        }
        let mapping = MappingKind::Optimized.build(&dram, 256).unwrap();
        for phase in AccessPhase::ALL {
            let stats = analyse_phase(mapping.as_ref(), phase);
            assert!(
                stats.bank_group_switch_rate() > 0.95,
                "{standard:?}-{rate} {phase}: switch rate {}",
                stats.bank_group_switch_rate()
            );
        }
    }
}
