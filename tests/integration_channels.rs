//! The channel/rank scale-out safety net:
//!
//! 1. **Legacy pinning** — with the default `channels=1, ranks=1` topology,
//!    the full Table I sweep must reproduce the records captured from the
//!    pre-scale-out tree (`tests/fixtures/table1_main_b6000.json`)
//!    **bit-identically**, on both timing engines.  Every shared record
//!    field is compared with exact (`==`) float equality.
//! 2. **Scaling** — striping the optimized mapping across two channels must
//!    scale the aggregate bandwidth by ≥ 1.8×, with balanced per-channel
//!    load (the claim pinned at full size by the committed
//!    `BENCH_channels.json` from the `channel_sweep` binary).
//! 3. **Topology axes** — the channels/ranks sweep axes expand, run and
//!    serialize end to end.

use std::sync::OnceLock;

use tbi::exp::json::{parse, JsonValue};
use tbi::exp::SweepGrid;
use tbi::{ControllerConfig, MappingKind, Record, TimingEngine};

const FIXTURE: &str = include_str!("fixtures/table1_main_b6000.json");
const FIXTURE_BURSTS: u64 = 6_000;

fn table1_records(engine: TimingEngine) -> Vec<Record> {
    SweepGrid::new()
        .all_presets()
        .expect("all presets build")
        .size(FIXTURE_BURSTS)
        .mappings(MappingKind::TABLE1)
        .controller(ControllerConfig {
            engine,
            ..ControllerConfig::default()
        })
        .into_experiment()
        .with_auto_workers()
        .run()
        .expect("table1 sweep runs")
}

fn fixture() -> &'static Vec<JsonValue> {
    static FIXTURE_VALUES: OnceLock<Vec<JsonValue>> = OnceLock::new();
    FIXTURE_VALUES.get_or_init(|| {
        parse(FIXTURE)
            .expect("committed fixture parses")
            .as_array()
            .expect("fixture is an array")
            .to_vec()
    })
}

/// Compares one freshly computed record against its fixture object: every
/// field the fixture knows about must match bit-exactly (floats with `==`,
/// no tolerance), and the new topology fields must hold their legacy
/// values.
fn assert_matches_fixture(record: &Record, expected: &JsonValue) {
    let id = record.scenario_id.as_str();
    let get_str = |k: &str| {
        expected
            .get(k)
            .and_then(JsonValue::as_str)
            .map(String::from)
    };
    let get_f64 = |k: &str| {
        expected
            .get(k)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("{id}: fixture missing `{k}`"))
    };
    assert_eq!(get_str("scenario_id").as_deref(), Some(id));
    assert_eq!(get_str("dram").as_deref(), Some(record.dram_label.as_str()));
    assert_eq!(get_str("mapping").as_deref(), Some(record.mapping.as_str()));
    assert_eq!(get_f64("bursts"), record.bursts as f64, "{id}: bursts");
    assert_eq!(get_f64("dimension"), f64::from(record.dimension), "{id}");
    assert_eq!(
        expected
            .get("refresh_disabled")
            .and_then(JsonValue::as_bool),
        Some(record.refresh_disabled),
        "{id}: refresh_disabled"
    );
    // Exact float equality: the simulation is deterministic, so the values
    // must be bit-identical to the pre-scale-out tree, not merely close.
    assert_eq!(
        get_f64("write_utilization"),
        record.write_utilization,
        "{id}: write_utilization"
    );
    assert_eq!(
        get_f64("read_utilization"),
        record.read_utilization,
        "{id}: read_utilization"
    );
    assert_eq!(
        get_f64("min_utilization"),
        record.min_utilization,
        "{id}: min_utilization"
    );
    assert_eq!(
        get_f64("sustained_gbps"),
        record.sustained_gbps,
        "{id}: sustained_gbps"
    );
    assert_eq!(
        get_f64("write_row_hit_rate"),
        record.write_row_hit_rate,
        "{id}: write_row_hit_rate"
    );
    assert_eq!(
        get_f64("read_row_hit_rate"),
        record.read_row_hit_rate,
        "{id}: read_row_hit_rate"
    );
    assert_eq!(get_f64("activates"), record.activates as f64, "{id}");
    assert_eq!(
        get_f64("energy_total_mj"),
        record.energy_total_mj,
        "{id}: energy_total_mj"
    );
    assert_eq!(
        get_f64("energy_nj_per_byte"),
        record.energy_nj_per_byte,
        "{id}: energy_nj_per_byte"
    );
    assert_eq!(
        get_f64("simulated_cycles"),
        record.simulated_cycles as f64,
        "{id}: simulated_cycles"
    );
    // The scale-out fields must report the legacy topology.
    assert_eq!(record.channels, 1, "{id}: channels");
    assert_eq!(record.ranks, 1, "{id}: ranks");
    assert_eq!(record.aggregate_gbps, record.sustained_gbps, "{id}");
    assert_eq!(record.channel_utilization_spread, 0.0, "{id}: spread");
}

#[test]
fn single_topology_table1_is_bit_identical_to_the_pre_scale_out_fixture() {
    for engine in [TimingEngine::Event, TimingEngine::Cycle] {
        let records = table1_records(engine);
        let expected = fixture();
        assert_eq!(records.len(), expected.len(), "{engine}: record count");
        for (record, object) in records.iter().zip(expected) {
            assert_matches_fixture(record, object);
        }
    }
}

#[test]
fn two_channel_optimized_mapping_scales_aggregate_bandwidth() {
    let run = |channels: u32| {
        SweepGrid::new()
            .preset(tbi::DramStandard::Ddr4, 3200)
            .expect("preset builds")
            .channel_count(channels)
            .size(100_000)
            .mapping(MappingKind::Optimized)
            .into_experiment()
            .run()
            .expect("sweep runs")
            .remove(0)
    };
    let single = run(1);
    let dual = run(2);
    let scaling = dual.aggregate_gbps / single.aggregate_gbps;
    assert!(
        scaling >= 1.8,
        "1 -> 2 channel aggregate bandwidth scaling {scaling:.3} below 1.8x \
         ({} vs {} Gbit/s)",
        single.aggregate_gbps,
        dual.aggregate_gbps
    );
    assert!(
        dual.channel_utilization_spread < 0.1,
        "channel load imbalanced: spread {}",
        dual.channel_utilization_spread
    );
    assert_eq!(dual.channels, 2);
}

#[test]
fn topology_axes_run_end_to_end_and_serialize() {
    let records = SweepGrid::new()
        .preset(tbi::DramStandard::Lpddr4, 4266)
        .expect("preset builds")
        .channels([1, 2])
        .ranks([1, 2])
        .size(20_000)
        .mapping(MappingKind::Optimized)
        .into_experiment()
        .with_auto_workers()
        .run()
        .expect("topology sweep runs");
    assert_eq!(records.len(), 4);
    let topologies: Vec<(u32, u32)> = records.iter().map(|r| (r.channels, r.ranks)).collect();
    assert_eq!(topologies, vec![(1, 1), (1, 2), (2, 1), (2, 2)]);
    for record in &records {
        assert!(record.min_utilization > 0.5, "{}", record.scenario_id);
        assert!(
            record.aggregate_gbps >= record.sustained_gbps,
            "{}",
            record.scenario_id
        );
    }
    // The whole topology sweep serializes and re-parses.
    let json = tbi::exp::serialize::records_to_json(&records);
    let parsed = parse(&json).expect("emitted JSON parses");
    assert_eq!(parsed.as_array().unwrap().len(), 4);

    // Both engines agree on every topology cell.
    let cycle = SweepGrid::new()
        .preset(tbi::DramStandard::Lpddr4, 4266)
        .expect("preset builds")
        .channels([1, 2])
        .ranks([1, 2])
        .size(20_000)
        .mapping(MappingKind::Optimized)
        .engine(TimingEngine::Cycle)
        .into_experiment()
        .with_auto_workers()
        .run()
        .expect("cycle sweep runs");
    assert_eq!(records, cycle);
}
