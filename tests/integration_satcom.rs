//! Integration tests spanning the satcom and interleaver crates: the
//! end-to-end coding + interleaving pipeline and the bandwidth budget.

use rand::SeedableRng;
use tbi::satcom::channel::SymbolChannel;
use tbi::satcom::link::{interleaving_gain, InterleaverChoice, LinkConfig};
use tbi::{
    BandwidthBudget, CoherenceFading, DramConfig, DramStandard, GilbertElliott, InterleaverSpec,
    ReedSolomon, ThroughputEvaluator, TwoStageInterleaver,
};

#[test]
fn interleaving_gain_is_reproducible_across_seeds() {
    // RS(63,47) corrects 8 symbol errors; the bursts below average ~35
    // consecutive errors, so an uninterleaved code word dies while the
    // interleaved stream spreads each burst over dozens of code words.
    let channel = GilbertElliott::new(0.001, 0.02, 0.0, 0.7);
    let config = LinkConfig {
        rs_code_len: 63,
        rs_data_len: 47,
        codewords: 300,
        interleaver: InterleaverChoice::Triangular,
    };
    let mut wins = 0;
    let runs = 5;
    for seed in 0..runs {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + seed);
        let (without, with) = interleaving_gain(config, &channel, &mut rng).unwrap();
        if with.frame_error_rate() <= without.frame_error_rate() {
            wins += 1;
        }
    }
    assert!(
        wins >= runs - 1,
        "interleaving should win on (almost) every seed, won {wins}/{runs}"
    );
}

#[test]
fn two_stage_interleaver_survives_a_full_burst_erasure() {
    // Build a small two-stage interleaver and verify that wiping out a whole
    // DRAM burst touches at most one symbol per code word - the property the
    // SRAM pre-interleaver exists for.
    let symbols_per_burst = 8u32;
    let codewords = 16u32;
    let il = TwoStageInterleaver::new(32, codewords, symbols_per_burst).unwrap();
    let block = il.sram_stage().len() as u32;
    // Tag each symbol with its code word id within its SRAM block.
    let data: Vec<u32> = (0..il.symbol_count() as u32)
        .map(|i| (i % block) / symbols_per_burst + (i / block) * codewords)
        .collect();
    let tx = il.interleave(&data).unwrap();
    for (burst_index, burst) in tx.chunks(symbols_per_burst as usize).enumerate() {
        let mut tags: Vec<u32> = burst.to_vec();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(
            tags.len(),
            symbols_per_burst as usize,
            "burst {burst_index} contains repeated code words"
        );
    }
}

#[test]
fn coherence_fading_bursts_are_broken_up_by_the_interleaver() {
    // A fade lasting thousands of symbols overwhelms RS(63,47) directly, but
    // after triangular interleaving the residual frame error rate drops.
    let channel = CoherenceFading::from_link(0.5, 1.0, 0.05, 0.9);
    assert!(channel.average_symbol_error_rate() < 0.06);
    let config = LinkConfig {
        rs_code_len: 63,
        rs_data_len: 47,
        codewords: 400,
        interleaver: InterleaverChoice::Triangular,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let (without, with) = interleaving_gain(config, &channel, &mut rng).unwrap();
    assert!(
        with.frame_error_rate() <= without.frame_error_rate(),
        "interleaver should help: {} vs {}",
        with.frame_error_rate(),
        without.frame_error_rate()
    );
}

#[test]
fn reed_solomon_handles_interleaved_round_trip() {
    let rs = ReedSolomon::new(63, 47).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let channel = GilbertElliott::new(0.0, 1.0, 0.0, 0.0);
    let data: Vec<u8> = (0..47).collect();
    let codeword = rs.encode(&data).unwrap();
    let received = channel.corrupt(&codeword, &mut rng);
    assert_eq!(rs.decode(&received).unwrap(), data);
}

#[test]
fn dram_utilization_feeds_the_link_budget() {
    // Close the loop between the two halves of the reproduction: measure the
    // utilization of both mappings on LPDDR5-8533 and check what line rate
    // they can sustain.
    let dram = DramConfig::preset(DramStandard::Lpddr5, 8533).unwrap();
    let evaluator =
        ThroughputEvaluator::new(dram.clone(), InterleaverSpec::from_burst_count(30_000));
    let (row_major, optimized) = evaluator.evaluate_table1_pair().unwrap();

    let max_rate_row_major =
        BandwidthBudget::max_line_rate_gbps(&dram, row_major.min_utilization());
    let max_rate_optimized =
        BandwidthBudget::max_line_rate_gbps(&dram, optimized.min_utilization());
    assert!(
        max_rate_optimized > max_rate_row_major,
        "optimized mapping must sustain a higher line rate"
    );
    // The optimized mapping must make the 100 Gbit/s-class target reachable
    // on this single channel.
    assert!(
        max_rate_optimized > 100.0,
        "optimized mapping should sustain >100 Gbit/s, got {max_rate_optimized:.1}"
    );
}
