//! Integration test reproducing the *shape* of the paper's Table I on a
//! reduced interleaver size: the qualitative claims must hold even though the
//! absolute percentages differ from the DRAMSys-based numbers in the paper.

use tbi::{DramConfig, DramStandard, InterleaverSpec, MappingKind, ThroughputEvaluator};

const BURSTS: u64 = 60_000;

fn pair(standard: DramStandard, rate: u32) -> (tbi::UtilizationReport, tbi::UtilizationReport) {
    let dram = DramConfig::preset(standard, rate).unwrap();
    let evaluator = ThroughputEvaluator::new(dram, InterleaverSpec::from_burst_count(BURSTS));
    evaluator.evaluate_table1_pair().unwrap()
}

#[test]
fn row_major_write_phase_stays_high_everywhere() {
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let (row_major, _) = pair(*standard, *rate);
        assert!(
            row_major.write_utilization() > 0.85,
            "{standard:?}-{rate}: row-major write utilization {} too low",
            row_major.write_utilization()
        );
    }
}

#[test]
fn row_major_read_phase_collapses_on_fast_speed_grades() {
    // The paper's central observation: the faster grade of each standard
    // loses a large fraction of its bandwidth in the column-wise read phase.
    for (standard, rate, ceiling) in [
        (DramStandard::Ddr3, 1600, 0.80),
        (DramStandard::Ddr4, 3200, 0.65),
        (DramStandard::Lpddr4, 4266, 0.55),
        (DramStandard::Lpddr5, 8533, 0.65),
    ] {
        let (row_major, _) = pair(standard, rate);
        assert!(
            row_major.read_utilization() < ceiling,
            "{standard:?}-{rate}: row-major read utilization {} should collapse below {ceiling}",
            row_major.read_utilization()
        );
    }
}

#[test]
fn slow_grades_suffer_less_than_fast_grades_under_row_major() {
    for standard in DramStandard::ALL {
        let [slow, fast] = standard.paper_speed_grades();
        let (row_major_slow, _) = pair(standard, slow);
        let (row_major_fast, _) = pair(standard, fast);
        assert!(
            row_major_slow.read_utilization() >= row_major_fast.read_utilization() - 0.02,
            "{standard:?}: slow grade {} should not be worse than fast grade {}",
            row_major_slow.read_utilization(),
            row_major_fast.read_utilization()
        );
    }
}

#[test]
fn optimized_mapping_reaches_high_utilization_in_both_phases_everywhere() {
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let (_, optimized) = pair(*standard, *rate);
        assert!(
            optimized.write_utilization() > 0.85 && optimized.read_utilization() > 0.85,
            "{standard:?}-{rate}: optimized mapping write {} / read {} below target",
            optimized.write_utilization(),
            optimized.read_utilization()
        );
    }
}

#[test]
fn golden_table1_ordering_holds_for_every_preset_at_reduced_size() {
    // Golden pin of the paper's qualitative Table I ordering at a
    // deliberately small burst count (the table regenerates in a couple of
    // seconds; absolute percentages at a larger size are covered by the
    // tests above).  Two configurations (DDR3-800, DDR5-3200) never collapse
    // under row-major in this reproduction — both mappings sit above 95 % and
    // the difference is simulation noise — so the pin is:
    //
    //   * wherever the row-major baseline's worst phase drops below 90 %,
    //     the optimized mapping must beat it strictly AND stay above 90 %;
    //   * everywhere else the optimized mapping must be no worse than the
    //     baseline minus a 1 % noise tolerance.
    const REDUCED_BURSTS: u64 = 20_000;
    const NOISE: f64 = 0.01;
    let mut collapsing_rows = 0;
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let dram = DramConfig::preset(*standard, *rate).unwrap();
        let evaluator =
            ThroughputEvaluator::new(dram, InterleaverSpec::from_burst_count(REDUCED_BURSTS));
        let row_major = evaluator.evaluate(MappingKind::RowMajor).unwrap();
        let optimized = evaluator.evaluate(MappingKind::Optimized).unwrap();
        let (rm, opt) = (row_major.min_utilization(), optimized.min_utilization());
        if rm < 0.90 {
            collapsing_rows += 1;
            assert!(
                opt > rm && opt > 0.90,
                "{standard:?}-{rate}: optimized min utilization {opt:.4} should beat \
                 collapsed row-major {rm:.4} and exceed 90 %"
            );
        } else {
            assert!(
                opt >= rm - NOISE,
                "{standard:?}-{rate}: optimized min utilization {opt:.4} fell more than \
                 {NOISE} below row-major {rm:.4}"
            );
        }
    }
    // The paper's table has a majority of configurations where row-major
    // collapses; if none did here, this golden test would be vacuous.
    assert!(
        collapsing_rows >= 6,
        "only {collapsing_rows}/10 configurations showed a row-major collapse"
    );
}

#[test]
fn optimized_mapping_gives_large_gains_where_the_paper_reports_them() {
    // LPDDR4-4266 is the paper's most dramatic row (35.77 % -> 99.72 %).
    let (row_major, optimized) = pair(DramStandard::Lpddr4, 4266);
    assert!(
        optimized.min_utilization() > 1.5 * row_major.min_utilization(),
        "expected a large speedup on LPDDR4-4266: {} vs {}",
        optimized.min_utilization(),
        row_major.min_utilization()
    );
}
