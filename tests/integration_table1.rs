//! Integration test reproducing the *shape* of the paper's Table I on a
//! reduced interleaver size: the qualitative claims must hold even though the
//! absolute percentages differ from the DRAMSys-based numbers in the paper.
//!
//! All ten configurations are evaluated once, through a single parallel
//! [`tbi::Experiment`] shared by every test (the golden ordering pin and the
//! worker-count determinism check live in `integration_experiment.rs`).

use std::sync::OnceLock;

use tbi::{DramStandard, MappingKind, Record, SweepGrid};

const BURSTS: u64 = 60_000;

/// Runs the full Table I sweep once and shares the records across tests.
fn records() -> &'static [Record] {
    static RECORDS: OnceLock<Vec<Record>> = OnceLock::new();
    RECORDS.get_or_init(|| {
        SweepGrid::new()
            .all_presets()
            .expect("all presets build")
            .size(BURSTS)
            .mappings(MappingKind::TABLE1)
            .into_experiment()
            .with_auto_workers()
            .run()
            .expect("table1 sweep runs")
    })
}

/// The `(row-major, optimized)` record pair for one configuration.
fn pair(standard: DramStandard, rate: u32) -> (&'static Record, &'static Record) {
    let label = format!("{}-{rate}", standard.name());
    let mut it = records().iter().filter(|r| r.dram_label == label);
    let row_major = it.next().expect("row-major record present");
    let optimized = it.next().expect("optimized record present");
    assert_eq!(row_major.mapping, "row-major");
    assert_eq!(optimized.mapping, "optimized");
    (row_major, optimized)
}

#[test]
fn row_major_write_phase_stays_high_everywhere() {
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let (row_major, _) = pair(*standard, *rate);
        assert!(
            row_major.write_utilization > 0.85,
            "{standard:?}-{rate}: row-major write utilization {} too low",
            row_major.write_utilization
        );
    }
}

#[test]
fn row_major_read_phase_collapses_on_fast_speed_grades() {
    // The paper's central observation: the faster grade of each standard
    // loses a large fraction of its bandwidth in the column-wise read phase.
    for (standard, rate, ceiling) in [
        (DramStandard::Ddr3, 1600, 0.80),
        (DramStandard::Ddr4, 3200, 0.65),
        (DramStandard::Lpddr4, 4266, 0.55),
        (DramStandard::Lpddr5, 8533, 0.65),
    ] {
        let (row_major, _) = pair(standard, rate);
        assert!(
            row_major.read_utilization < ceiling,
            "{standard:?}-{rate}: row-major read utilization {} should collapse below {ceiling}",
            row_major.read_utilization
        );
    }
}

#[test]
fn slow_grades_suffer_less_than_fast_grades_under_row_major() {
    for standard in DramStandard::ALL {
        let [slow, fast] = standard.paper_speed_grades();
        let (row_major_slow, _) = pair(standard, slow);
        let (row_major_fast, _) = pair(standard, fast);
        assert!(
            row_major_slow.read_utilization >= row_major_fast.read_utilization - 0.02,
            "{standard:?}: slow grade {} should not be worse than fast grade {}",
            row_major_slow.read_utilization,
            row_major_fast.read_utilization
        );
    }
}

#[test]
fn optimized_mapping_reaches_high_utilization_in_both_phases_everywhere() {
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let (_, optimized) = pair(*standard, *rate);
        assert!(
            optimized.write_utilization > 0.85 && optimized.read_utilization > 0.85,
            "{standard:?}-{rate}: optimized mapping write {} / read {} below target",
            optimized.write_utilization,
            optimized.read_utilization
        );
    }
}

#[test]
fn optimized_mapping_gives_large_gains_where_the_paper_reports_them() {
    // LPDDR4-4266 is the paper's most dramatic row (35.77 % -> 99.72 %).
    let (row_major, optimized) = pair(DramStandard::Lpddr4, 4266);
    assert!(
        optimized.min_utilization > 1.5 * row_major.min_utilization,
        "expected a large speedup on LPDDR4-4266: {} vs {}",
        optimized.min_utilization,
        row_major.min_utilization
    );
    assert!(optimized.speedup_over(row_major) > 1.5);
}

#[test]
fn records_carry_energy_and_row_hit_metrics() {
    for record in records() {
        assert!(record.energy_total_mj > 0.0, "{}", record.scenario_id);
        assert!(record.energy_nj_per_byte > 0.0, "{}", record.scenario_id);
        assert!(record.activates > 0, "{}", record.scenario_id);
        assert!(
            (0.0..=1.0).contains(&record.write_row_hit_rate)
                && (0.0..=1.0).contains(&record.read_row_hit_rate),
            "{}",
            record.scenario_id
        );
    }
    // The optimized mapping exists to avoid row thrashing in the read
    // phase: its read row-hit rate must dwarf the row-major baseline's on
    // the collapsing configurations.
    let (row_major, optimized) = pair(DramStandard::Lpddr4, 4266);
    assert!(optimized.read_row_hit_rate > row_major.read_row_hit_rate);
}
