//! End-to-end optical LEO downlink scenario: demonstrates the interleaving
//! gain that motivates the paper and the DRAM bandwidth budget of the
//! interleaver.
//!
//! The downlink transmits Reed–Solomon RS(255,223) code words over a bursty
//! optical channel (coherence-time fading).  Without interleaving, a single
//! fade destroys whole code words; with the triangular block interleaver the
//! same fade is spread over many code words and corrected.
//!
//! ```text
//! cargo run --release -p tbi --example optical_downlink
//! ```

use rand::SeedableRng;
use tbi::satcom::channel::SymbolChannel;
use tbi::satcom::link::{interleaving_gain, InterleaverChoice, LinkConfig};
use tbi::{
    BandwidthBudget, DramConfig, DramStandard, GilbertElliott, InterleaverSpec, MappingKind,
    ThroughputEvaluator,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Optical LEO downlink, 100 Gbit/s class ==\n");

    // 1. The FEC view: interleaving gain on a bursty channel.
    let channel = GilbertElliott::new(0.001, 0.02, 0.0, 0.6);
    println!(
        "Channel: Gilbert-Elliott, mean burst length {:.0} symbols, average symbol error rate {:.4}",
        channel.mean_burst_length(),
        channel.average_symbol_error_rate()
    );
    let config = LinkConfig {
        rs_code_len: 255,
        rs_data_len: 223,
        codewords: 60,
        interleaver: InterleaverChoice::Triangular,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let (without, with) = interleaving_gain(config, &channel, &mut rng)?;
    println!(
        "  without interleaver: frame error rate {:6.3} ({} of {} code words lost)",
        without.frame_error_rate(),
        without.codeword_failures,
        without.codewords
    );
    println!(
        "  with triangular interleaver: frame error rate {:6.3} ({} of {} code words lost)\n",
        with.frame_error_rate(),
        with.codeword_failures,
        with.codewords
    );

    // 2. The memory view: what the interleaver demands from DRAM.
    let spec = InterleaverSpec::paper_table1();
    println!(
        "Full-scale interleaver: {} bursts = {:.0} MB, fill time {:.0} ms at 100 Gbit/s",
        spec.burst_count(),
        spec.storage_bytes() as f64 / 1e6,
        spec.fill_time_ms(100.0)
    );
    let dram = DramConfig::preset(DramStandard::Lpddr5, 8533)?;
    let evaluator =
        ThroughputEvaluator::new(dram.clone(), InterleaverSpec::from_burst_count(200_000));
    for kind in MappingKind::TABLE1 {
        let report = evaluator.evaluate(kind)?;
        let budget = BandwidthBudget::new(100.0, report.min_utilization());
        println!(
            "  {} on {}: min utilization {:5.1} % -> needs {:5.0} Gbit/s provisioned ({}satisfied, peak {:.0} Gbit/s)",
            report.mapping_name,
            dram.label(),
            report.min_utilization() * 100.0,
            budget.required_peak_bandwidth_gbps(),
            if budget.is_satisfied_by(&dram) { "" } else { "NOT " },
            dram.peak_bandwidth_gbps()
        );
    }
    Ok(())
}
