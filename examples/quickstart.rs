//! Quickstart: evaluate the paper's optimized mapping against the row-major
//! baseline on one DRAM configuration.
//!
//! ```text
//! cargo run --release -p tbi --example quickstart
//! ```

use tbi::{
    BandwidthBudget, DramConfig, DramStandard, InterleaverSpec, MappingKind, ThroughputEvaluator,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An LPDDR4-4266 channel: 136.5 Gbit/s of peak bandwidth.
    let dram = DramConfig::preset(DramStandard::Lpddr4, 4266)?;
    println!(
        "DRAM configuration: {} ({:.1} Gbit/s peak)",
        dram.label(),
        dram.peak_bandwidth_gbps()
    );

    // A triangular block interleaver, sized down from the paper's 12.5 M
    // bursts so the example finishes in about a second.
    let spec = InterleaverSpec::from_burst_count(200_000);
    println!(
        "Interleaver: {} bursts (dimension {}), {:.1} MB of DRAM",
        spec.burst_count(),
        spec.dimension(),
        spec.storage_bytes() as f64 / 1e6
    );

    let evaluator = ThroughputEvaluator::new(dram.clone(), spec);
    for kind in MappingKind::TABLE1 {
        let report = evaluator.evaluate(kind)?;
        println!(
            "  {:<10}  write {:6.2} %   read {:6.2} %   min {:6.2} %   sustained {:6.1} Gbit/s",
            report.mapping_name,
            report.write_utilization() * 100.0,
            report.read_utilization() * 100.0,
            report.min_utilization() * 100.0,
            report.sustained_throughput_gbps()
        );
        let budget = BandwidthBudget::new(100.0, report.min_utilization());
        println!(
            "              -> a 100 Gbit/s downlink needs {:.0} Gbit/s of provisioned DRAM bandwidth ({}satisfied by this device)",
            budget.required_peak_bandwidth_gbps(),
            if budget.is_satisfied_by(&dram) { "" } else { "NOT " }
        );
    }
    Ok(())
}
