//! Mapping explorer: prints how each mapping scheme lays out the top-left
//! corner of the interleaver index space on a chosen DRAM device, and how
//! many row activations a full write+read cycle would need.
//!
//! ```text
//! cargo run --release -p tbi --example mapping_explorer [ddr3|ddr4|ddr5|lpddr4|lpddr5]
//! ```

use std::collections::HashSet;

use tbi::interleaver::mapping::render_grid;
use tbi::{DramConfig, DramStandard, MappingKind};

fn parse_standard(name: &str) -> Option<(DramStandard, u32)> {
    let standard = match name.to_ascii_lowercase().as_str() {
        "ddr3" => DramStandard::Ddr3,
        "ddr4" => DramStandard::Ddr4,
        "ddr5" => DramStandard::Ddr5,
        "lpddr4" => DramStandard::Lpddr4,
        "lpddr5" => DramStandard::Lpddr5,
        _ => return None,
    };
    Some((standard, standard.paper_speed_grades()[1]))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ddr4".to_string());
    let (standard, rate) = parse_standard(&arg).ok_or("expected ddr3|ddr4|ddr5|lpddr4|lpddr5")?;
    let dram = DramConfig::preset(standard, rate)?;
    let n = 512u32;
    println!(
        "{}: {} bank groups x {} banks, {}-burst pages\n",
        dram.label(),
        dram.geometry.bank_groups,
        dram.geometry.banks_per_group,
        dram.geometry.columns_per_row
    );

    for kind in MappingKind::ALL {
        let mapping = kind.build(&dram, n)?;
        println!("--- {} ---", kind.name());
        println!("{}", render_grid(mapping.as_ref(), 6, 6));

        // Count how many distinct (bank, row) pages a full row-wise sweep and
        // a full column-wise sweep would open - a proxy for activate energy.
        let mut open: Vec<Option<u32>> = vec![None; dram.geometry.total_banks() as usize];
        let mut activations = 0u64;
        let mut pages = HashSet::new();
        for i in 0..n {
            for j in 0..(n - i) {
                let addr = mapping.map(i, j);
                let bank = addr.flat_bank(&dram.geometry) as usize;
                pages.insert((bank, addr.row));
                if open[bank] != Some(addr.row) {
                    activations += 1;
                    open[bank] = Some(addr.row);
                }
            }
        }
        println!(
            "row-wise sweep: {activations} activations over {} accesses ({} distinct pages)\n",
            n as u64 * (n as u64 + 1) / 2,
            pages.len()
        );
    }
    Ok(())
}
