//! Custom-device exploration: the paper's mapping applies to *any*
//! JEDEC-compliant DRAM, so this example builds a hypothetical device with the
//! `DramConfigBuilder` (a wider-page, higher-clocked DDR4-class part) and a
//! concatenated CCSDS coding chain, then checks that the optimized mapping
//! still keeps both phases fast enough for a 100 Gbit/s downlink.
//!
//! ```text
//! cargo run --release -p tbi --example custom_device
//! ```

use rand::SeedableRng;
use tbi::dram::DramConfigBuilder;
use tbi::satcom::concatenated::{ConcatenatedCode, ConcatenatedConfig};
use tbi::{
    BandwidthBudget, DramStandard, GilbertElliott, InterleaverSpec, MappingKind,
    ThroughputEvaluator,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hypothetical next-generation part: DDR4 core timings scaled to
    // 4266 MT/s with 256-burst pages.
    let custom = DramConfigBuilder::from_preset(DramStandard::Ddr4, 3200)?
        .scale_core_timings(3200, 4266)
        .columns_per_row(256)
        .rows(1 << 15)
        .build()?;
    println!(
        "custom device: {} MT/s, {} banks, {} KiB pages, {:.1} Gbit/s peak",
        custom.data_rate_mtps,
        custom.geometry.total_banks(),
        custom.geometry.page_bytes() / 1024,
        custom.peak_bandwidth_gbps()
    );

    let evaluator =
        ThroughputEvaluator::new(custom.clone(), InterleaverSpec::from_burst_count(150_000));
    for kind in MappingKind::TABLE1 {
        let report = evaluator.evaluate(kind)?;
        let budget = BandwidthBudget::new(100.0, report.min_utilization());
        println!(
            "  {:<10} write {:6.2} %  read {:6.2} %  -> 100 Gbit/s needs {:5.0} Gbit/s provisioned ({}ok)",
            report.mapping_name,
            report.write_utilization() * 100.0,
            report.read_utilization() * 100.0,
            budget.required_peak_bandwidth_gbps(),
            if budget.is_satisfied_by(&custom) { "" } else { "not " }
        );
    }

    // The FEC chain this memory system serves: CCSDS concatenated coding.
    let code = ConcatenatedCode::new(ConcatenatedConfig {
        rs_code_len: 255,
        rs_data_len: 223,
        codewords: 8,
        interleaved: true,
    })?;
    let channel = GilbertElliott::new(0.0, 1.0, 0.003, 0.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let report = code.transmit(&channel, &mut rng)?;
    println!(
        "\nconcatenated CCSDS chain (rate {:.2}): inner residual BER {:.2e}, outer frame error rate {:.3}",
        code.overall_rate(),
        report.inner_bit_error_rate(),
        report.frame_error_rate()
    );
    Ok(())
}
