//! Regenerates a compact version of the paper's Table I through the public
//! `tbi` API (the full harness with CLI flags lives in
//! `crates/bench/src/bin/table1.rs`).
//!
//! ```text
//! cargo run --release -p tbi --example bandwidth_table
//! ```

use tbi::{DramConfig, InterleaverSpec, MappingKind, ThroughputEvaluator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bursts = 200_000;
    println!("DRAM bandwidth utilization, triangular interleaver of {bursts} bursts");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "Configuration", "RowMaj write", "RowMaj read", "Optim write", "Optim read"
    );
    for (standard, rate) in tbi::dram::standards::ALL_CONFIGS {
        let dram = DramConfig::preset(*standard, *rate)?;
        let evaluator =
            ThroughputEvaluator::new(dram.clone(), InterleaverSpec::from_burst_count(bursts));
        let row_major = evaluator.evaluate(MappingKind::RowMajor)?;
        let optimized = evaluator.evaluate(MappingKind::Optimized)?;
        println!(
            "{:<14} {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}%",
            dram.label(),
            row_major.write_utilization() * 100.0,
            row_major.read_utilization() * 100.0,
            optimized.write_utilization() * 100.0,
            optimized.read_utilization() * 100.0,
        );
    }
    Ok(())
}
