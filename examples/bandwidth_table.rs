//! Regenerates a compact version of the paper's Table I through the public
//! `tbi` experiment API (the full harness with CLI flags lives in
//! `crates/bench/src/bin/table1.rs`).
//!
//! ```text
//! cargo run --release -p tbi --example bandwidth_table
//! ```

use tbi::{MappingKind, SweepGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bursts = 200_000;

    // Declare the whole table as one sweep (all presets × the Table I
    // mapping pair) and run it across all cores; the records come back in
    // deterministic paper order regardless of the worker count.
    let records = SweepGrid::new()
        .all_presets()?
        .size(bursts)
        .mappings(MappingKind::TABLE1)
        .into_experiment()
        .with_auto_workers()
        .run()?;

    println!("DRAM bandwidth utilization, triangular interleaver of {bursts} bursts");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "Configuration", "RowMaj write", "RowMaj read", "Optim write", "Optim read"
    );
    for pair in records.chunks(2) {
        let [row_major, optimized] = pair else {
            unreachable!("TABLE1 sweeps produce records in pairs");
        };
        println!(
            "{:<14} {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}%",
            row_major.dram_label,
            row_major.write_utilization * 100.0,
            row_major.read_utilization * 100.0,
            optimized.write_utilization * 100.0,
            optimized.read_utilization * 100.0,
        );
    }
    Ok(())
}
