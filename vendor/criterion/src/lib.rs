//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendors the subset
//! of criterion's API that the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Throughput`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up once,
//! then timed over an adaptively chosen iteration count per sample, and the
//! per-iteration median is printed together with the configured throughput.
//! There is no statistical analysis, plotting, or HTML report — the point is
//! that `cargo bench` compiles, runs, and prints comparable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per benchmark iteration, used to report a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with both a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id that is just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function_name: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function_name: Some(name),
            parameter: None,
        }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Benchmarks `routine`, storing per-sample timings.
    ///
    /// A second call replaces the timings of the first (the last `iter` in a
    /// benchmark body wins), mirroring how each call re-calibrates.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: aim for samples of at least ~2 ms each.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        self.samples.clear();
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&mut self) -> Option<f64> {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return None;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        Some(median.as_nanos() as f64 / self.iters_per_sample as f64)
    }
}

/// The benchmark driver; one per process.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_one(name, sample_size, None, f);
        self
    }
}

/// A set of benchmarks sharing a name prefix, sample size and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much data one iteration processes.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks `f` with `input` under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 0,
    };
    f(&mut bencher);
    match bencher.median_ns_per_iter() {
        Some(ns) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    // n elements per `ns` nanoseconds -> mega-elements per second.
                    format!(" ({:.3} Melem/s)", n as f64 / ns * 1e9 / 1e6)
                }
                Throughput::Bytes(n) => {
                    format!(" ({:.3} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
                }
            });
            println!("{label:<60} {ns:>14.1} ns/iter{}", rate.unwrap_or_default());
        }
        None => println!("{label:<60} (no samples collected)"),
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($group), "` benchmark group.")]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", "p").render(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).render(), "42");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("group");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_function("work", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
