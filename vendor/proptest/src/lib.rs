//! Minimal, dependency-light stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors exactly the
//! subset of proptest used by the workspace's property tests:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute and
//!   any number of `#[test] fn name(x in strategy, ..) { .. }` items);
//! * [`prop_assert!`] / [`prop_assert_eq!`] that fail the current case with a
//!   message instead of panicking inside the closure;
//! * integer `Range`/`RangeInclusive` strategies and
//!   [`collection::vec`].
//!
//! Compared to the real crate there is **no shrinking**: a failing case
//! reports the sampled inputs and stops.  Sampling is deterministic — the
//! seed is derived from the test's name — so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of the generated values.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_strategy_for_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize);
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Controls how many cases each property test executes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Config {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        /// 64 cases, overridable via the `PROPTEST_CASES` environment
        /// variable (matching upstream proptest, whose env override CI uses
        /// to raise the case count on scheduled runs).
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|value| value.parse().ok())
                .filter(|&cases| cases > 0)
                .unwrap_or(64);
            Self { cases }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Builds the deterministic per-test RNG (seeded from the test name).
///
/// Uses FNV-1a rather than `DefaultHasher` so the seed — and therefore the
/// sampled cases — is stable across Rust toolchain versions.
#[doc(hidden)]
pub fn deterministic_rng(test_name: &str) -> rand::rngs::StdRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(hash)
}

/// Defines property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng = $crate::deterministic_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                    )+
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(&::std::format!(
                                "{} = {:?}, ", stringify!($arg), $arg
                            ));
                        )+
                        s
                    };
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        ::std::panic!(
                            "property `{}` failed on case {} [{}]: {}",
                            stringify!($name), __case, __inputs.trim_end_matches(", "), __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition, failing the current property case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality, failing the current property case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                ::std::format!($($fmt)*), __l, __r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(a in 1u32..10, b in 0u8..=3) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 3);
        }

        #[test]
        fn vec_strategy_obeys_size(v in crate::collection::vec(0u8..=1, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x <= 1));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert_eq!(x, 1_000);
            }
        }
        always_fails();
    }
}
