//! Minimal, dependency-free stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the subset of `rand` that the workspace actually uses is vendored here:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`];
//! * the [`Rng`] trait with `gen`, `gen_range` and `gen_bool`;
//! * uniform sampling from `Range`/`RangeInclusive` over the unsigned
//!   integer types and `f64`.
//!
//! The generator is SplitMix64: deterministic, fast, and statistically good
//! enough for the simulation and test workloads in this repository.  It is
//! **not** cryptographically secure and makes no cross-version
//! reproducibility promises beyond this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator.
///
/// This merges the `RngCore`/`Rng` split of the real crate into a single
/// trait; only `next_u64` must be provided.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain
/// (the analogue of the real crate's `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                (start as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Rng, SeedableRng};

    /// The standard generator: SplitMix64.
    ///
    /// Deterministic for a given seed, which is all the workspace's
    /// simulations and tests rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(1..=255u8);
            assert!(v >= 1);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn full_u64_range_is_samplable() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(0u64..u64::MAX);
        let _: u8 = rng.gen();
        let _: f64 = rng.gen();
    }
}
