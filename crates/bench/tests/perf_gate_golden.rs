//! Golden coverage for the performance-regression gate.
//!
//! Two layers, mirroring `tbi_exp`'s `serialize_golden.rs` discipline:
//!
//! 1. **Report goldens** — [`tbi_bench::gate::evaluate`] runs on fixed
//!    synthetic documents (a regressed pair that must fail, a
//!    tolerance-boundary pair that must pass) and the rendered report is
//!    pinned byte-for-byte under `tests/fixtures/`.  Regenerate after an
//!    intentional format change:
//!
//!    ```text
//!    TBI_BLESS_GOLDEN=1 cargo test -p tbi_bench --test perf_gate_golden
//!    ```
//!
//! 2. **End-to-end injected regression** — the `perf_gate` binary runs
//!    against a committed synthetic artifact whose baseline metric is
//!    impossibly good; the gate must exit non-zero and name the failing
//!    metric.  A companion artifact with a modest baseline must pass.

use std::path::Path;
use std::process::Command;

use tbi_bench::gate::{evaluate, Check, CheckKind};
use tbi_exp::json::{parse, JsonValue};

const REGRESSED_REPORT: &str = include_str!("fixtures/gate_report_regressed.txt");
const BOUNDARY_REPORT: &str = include_str!("fixtures/gate_report_boundary.txt");
const DEGENERATE_REPORT: &str = include_str!("fixtures/gate_report_degenerate.txt");

fn doc(text: &str) -> JsonValue {
    parse(text).expect("test document parses")
}

/// With `TBI_BLESS_GOLDEN=1`, rewrites the fixture instead of comparing
/// (returns `true` when blessing happened).
fn bless(name: &str, contents: &str) -> bool {
    if std::env::var("TBI_BLESS_GOLDEN").is_err() {
        return false;
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, contents).unwrap();
    eprintln!("blessed {}", path.display());
    true
}

/// The check set of a representative bench (`engine_speed`-shaped, plus a
/// ratio check so every [`CheckKind`] appears in the goldens).
fn checks() -> Vec<Check> {
    vec![
        Check::new("records_identical", CheckKind::MustBeTrue),
        Check::new("speedup", CheckKind::MinRatio(0.5)),
        Check::new(
            "event_sim_cycles_per_second",
            CheckKind::AbsFloor(1000000.0),
        ),
    ]
}

#[test]
fn regressed_artifact_fails_every_check_and_matches_the_golden_report() {
    // Identity broken, speedup collapsed below half the baseline, absolute
    // throughput below the floor: all three checks must fail.
    let current = doc(r#"{"records_identical": false, "speedup": 4.25,
            "event_sim_cycles_per_second": 500000.0}"#);
    let committed = doc(r#"{"speedup": 13.5, "event_sim_cycles_per_second": 90000000.0}"#);
    let report = evaluate("engine_speed", &current, &committed, &checks());
    assert!(!report.passed(), "regressed artifact must fail the gate");
    assert!(report.results.iter().all(|r| !r.passed));
    let text = report.render();
    if bless("gate_report_regressed.txt", &text) {
        return;
    }
    assert_eq!(
        text, REGRESSED_REPORT,
        "gate report format drifted from tests/fixtures/gate_report_regressed.txt — if \
         intentional, regenerate with TBI_BLESS_GOLDEN=1"
    );
}

#[test]
fn tolerance_boundary_artifact_passes_and_matches_the_golden_report() {
    // Every metric sits exactly on its boundary: the ratio check at
    // committed × tolerance, the floor check at the floor itself.  The gate
    // is inclusive (>=), so all must pass.
    let current = doc(r#"{"records_identical": true, "speedup": 6.75,
            "event_sim_cycles_per_second": 1000000.0}"#);
    let committed = doc(r#"{"speedup": 13.5, "event_sim_cycles_per_second": 90000000.0}"#);
    let report = evaluate("engine_speed", &current, &committed, &checks());
    assert!(report.passed(), "boundary artifact must pass the gate");
    let text = report.render();
    if bless("gate_report_boundary.txt", &text) {
        return;
    }
    assert_eq!(
        text, BOUNDARY_REPORT,
        "gate report format drifted from tests/fixtures/gate_report_boundary.txt — if \
         intentional, regenerate with TBI_BLESS_GOLDEN=1"
    );
}

#[test]
fn degenerate_min_ratio_baselines_fail_cleanly_and_match_the_golden_report() {
    // A corrupt committed artifact must fail its `MinRatio` checks with a
    // diagnostic — never divide by zero, never pass against a meaningless
    // baseline, never panic on a non-numeric stand-in (non-finite floats
    // serialize as `null` under the artifact discipline, so `null` is the
    // on-disk face of a NaN/inf baseline).
    let current = doc(
        r#"{"zero_base": 1.0, "negative_base": 1.0, "null_base": 1.0,
            "missing_base": 1.0, "null_current": null}"#,
    );
    let committed = doc(
        r#"{"zero_base": 0.0, "negative_base": -13.5, "null_base": null,
            "null_current": 2.0}"#,
    );
    let checks = [
        Check::new("zero_base", CheckKind::MinRatio(0.5)),
        Check::new("negative_base", CheckKind::MinRatio(0.5)),
        Check::new("null_base", CheckKind::MinRatio(0.5)),
        Check::new("missing_base", CheckKind::MinRatio(0.5)),
        Check::new("null_current", CheckKind::MinRatio(0.5)),
    ];
    let report = evaluate("degenerate", &current, &committed, &checks);
    assert!(!report.passed(), "every degenerate baseline must fail");
    assert!(report.results.iter().all(|r| !r.passed));
    let text = report.render();
    if bless("gate_report_degenerate.txt", &text) {
        return;
    }
    assert_eq!(
        text, DEGENERATE_REPORT,
        "gate report format drifted from tests/fixtures/gate_report_degenerate.txt — if \
         intentional, regenerate with TBI_BLESS_GOLDEN=1"
    );
}

/// Runs the `perf_gate` binary on one committed artifact fixture at a tiny
/// re-run size, returning (exit success, stdout).
fn run_gate(fixture: &str) -> (bool, String) {
    let artifact = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let output = Command::new(env!("CARGO_BIN_EXE_perf_gate"))
        .arg("--bursts")
        .arg("4000")
        .arg(&artifact)
        .output()
        .expect("perf_gate binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

#[test]
fn injected_regression_fixture_fails_the_gate_binary() {
    // The fixture claims an impossibly good committed baseline (1 → 2
    // channel scaling of 1000x), so any honest re-run regresses against it.
    let (success, stdout) = run_gate("gate_regressed_channels.json");
    assert!(!success, "gate must exit non-zero on the regressed fixture");
    assert!(
        stdout.contains("FAIL channel_sweep/min_scaling_1_to_2_optimized"),
        "gate must name the regressed metric:\n{stdout}"
    );
    assert!(
        stdout.contains("PERFORMANCE REGRESSION DETECTED"),
        "gate must print the failure banner:\n{stdout}"
    );
}

#[test]
fn modest_baseline_fixture_passes_the_gate_binary() {
    // Same artifact shape with a deliberately conservative baseline (1.0x
    // scaling): any healthy re-run clears 0.75 × 1.0 with a wide margin, so
    // this pins the gate's pass path end to end without depending on the
    // host's exact throughput.
    let (success, stdout) = run_gate("gate_passing_channels.json");
    assert!(
        success,
        "gate must exit zero on the passing fixture:\n{stdout}"
    );
    assert!(
        stdout.contains("PASS channel_sweep/min_scaling_1_to_2_optimized"),
        "gate must report the passing metric:\n{stdout}"
    );
    assert!(
        stdout.contains("all artifacts within tolerance"),
        "gate must print the success banner:\n{stdout}"
    );
}
