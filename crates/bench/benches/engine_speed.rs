//! Benchmarks the wall-clock speed of the two timing engines on identical
//! workloads (simulated requests per second of host time).
//!
//! The `engine_speed` *binary* measures the same thing on the full Table I
//! sweep and emits `BENCH_engine.json`; this criterion bench is the
//! fine-grained per-configuration view that `cargo bench` users get.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tbi_dram::{ControllerConfig, DramConfig, DramStandard, TimingEngine};
use tbi_interleaver::{AccessPhase, InterleaverSpec, MappingKind, TraceGenerator};

const BURSTS: u64 = 60_000;

fn run_both_phases(
    config: &DramConfig,
    generator: &TraceGenerator<'_>,
    engine: TimingEngine,
) -> u64 {
    let ctrl = ControllerConfig {
        engine,
        ..ControllerConfig::default()
    };
    let mut system =
        tbi_dram::MemorySystem::with_controller(config.clone(), ctrl).expect("valid config");
    let write = system.run_trace(generator.requests(AccessPhase::Write));
    system.reset_stats();
    let read = system.run_trace(generator.requests(AccessPhase::Read));
    write.elapsed_cycles + read.elapsed_cycles
}

fn bench_engine_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_speed");
    group.sample_size(10);
    group.throughput(Throughput::Elements(
        2 * InterleaverSpec::from_burst_count(BURSTS).total_positions(),
    ));

    let spec = InterleaverSpec::from_burst_count(BURSTS);
    for (standard, rate) in [(DramStandard::Ddr4, 3200u32), (DramStandard::Lpddr4, 4266)] {
        let config = DramConfig::preset(standard, rate).expect("preset exists");
        for mapping_kind in MappingKind::TABLE1 {
            let mapping = mapping_kind
                .build(&config, spec.dimension())
                .expect("mapping fits");
            let generator = TraceGenerator::new(spec.triangular(), mapping.as_ref());
            for engine in [TimingEngine::Cycle, TimingEngine::Event] {
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{}/{}", config.label(), mapping_kind.name()),
                        engine,
                    ),
                    &engine,
                    |b, &engine| {
                        b.iter(|| run_both_phases(&config, &generator, engine));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_speed);
criterion_main!(benches);
