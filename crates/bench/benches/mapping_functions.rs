//! Microbenchmarks of the address-mapping functions themselves: nanoseconds
//! per mapped position.  The paper argues the optimized mapping is cheap
//! enough for hardware (additions, shifts and bit operations only); this
//! benchmark confirms the software model is in the same spirit.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tbi_dram::{DramConfig, DramStandard};
use tbi_interleaver::MappingKind;

fn bench_mapping_functions(c: &mut Criterion) {
    let dram = DramConfig::preset(DramStandard::Ddr5, 6400).expect("preset exists");
    let n = 4096u32;
    let mut group = c.benchmark_group("mapping_functions");
    group.throughput(Throughput::Elements(u64::from(n)));
    for kind in MappingKind::ALL {
        let mapping = kind.build(&dram, n).expect("mapping builds");
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &mapping,
            |b, mapping| {
                b.iter(|| {
                    let mut accumulator = 0u64;
                    for k in 0..n {
                        let addr = mapping.map(black_box(k % 2048), black_box((k * 7) % 2048));
                        accumulator = accumulator
                            .wrapping_add(u64::from(addr.row))
                            .wrapping_add(u64::from(addr.column));
                    }
                    accumulator
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapping_functions);
criterion_main!(benches);
