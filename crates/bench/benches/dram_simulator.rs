//! Benchmarks the raw speed of the cycle-accurate DRAM model (simulated
//! bursts per second of wall-clock time) for friendly and hostile access
//! patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tbi_dram::{DramConfig, DramStandard, MemorySystem, Request};

const REQUESTS: u64 = 20_000;

fn bench_dram_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REQUESTS));

    for (standard, rate) in [(DramStandard::Ddr4, 3200u32), (DramStandard::Lpddr5, 8533)] {
        let config = DramConfig::preset(standard, rate).expect("preset exists");

        group.bench_with_input(
            BenchmarkId::new("sequential_writes", config.label()),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut system = MemorySystem::new(config.clone()).expect("valid config");
                    system.run_trace((0..REQUESTS).map(|i| Request::write(config.decode_linear(i))))
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("random_reads", config.label()),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    let total = config.geometry.total_bursts();
                    let mut system = MemorySystem::new(config.clone()).expect("valid config");
                    system.run_trace(
                        (0..REQUESTS)
                            .map(|_| Request::read(config.decode_linear(rng.gen_range(0..total)))),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dram_simulator);
criterion_main!(benches);
