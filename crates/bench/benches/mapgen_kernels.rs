//! Microbenchmarks of the batched address-generation kernels: elements per
//! second for `map_batch`/`route_batch` against the per-element scalar
//! loop, on the three kernel families (linear decode, shift/mask
//! permutation, gather permutation).
//!
//! The workload is fully deterministic — a fixed triangle of coordinates,
//! no random inputs, and an asserted bit-identity check before timing — so
//! instruction counts are stable run over run and regressions show up as
//! rate changes rather than noise.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tbi_dram::{AddressBatch, BitPermutation, ChannelTopology, DramConfig, DramStandard};
use tbi_interleaver::mapping::{DramMapping, PermutedMapping};
use tbi_interleaver::MappingKind;

/// Index-space dimension: 512 gives 131 328 positions per iteration.
const N: u32 = 512;

fn triangle_coords(n: u32) -> Vec<(u32, u32)> {
    let mut coords = Vec::with_capacity((n as usize) * (n as usize + 1) / 2);
    for i in 0..n {
        for j in 0..(n - i) {
            coords.push((i, j));
        }
    }
    coords
}

fn bench_mapgen_kernels(c: &mut Criterion) {
    let dram = DramConfig::preset(DramStandard::Ddr4, 3200).expect("preset exists");
    let coords = triangle_coords(N);
    let scheme_permutation = BitPermutation::for_scheme(
        dram.decode_scheme,
        &dram.geometry,
        ChannelTopology::default(),
    )
    .expect("scheme permutation exists");
    let top = scheme_permutation.fields().len() - 1;
    let gather_permutation = scheme_permutation.with_swap(0, top).with_swap(1, top / 2);

    let mappings: Vec<(&str, Box<dyn DramMapping>)> = vec![
        (
            "row-major",
            MappingKind::RowMajor.build(&dram, N).expect("builds"),
        ),
        (
            "permutation-scheme",
            Box::new(
                PermutedMapping::new(
                    dram.geometry,
                    ChannelTopology::default(),
                    scheme_permutation,
                    N,
                )
                .expect("builds"),
            ),
        ),
        (
            "permutation-gather",
            Box::new(
                PermutedMapping::new(
                    dram.geometry,
                    ChannelTopology::default(),
                    gather_permutation,
                    N,
                )
                .expect("builds"),
            ),
        ),
    ];

    let mut group = c.benchmark_group("mapgen_kernels");
    group.throughput(Throughput::Elements(coords.len() as u64));
    for (name, mapping) in &mappings {
        // Pin bit-identity between the two timed paths before measuring.
        let mut scalar_out = AddressBatch::with_capacity(coords.len());
        for &(i, j) in &coords {
            scalar_out.push(0, mapping.map(i, j));
        }
        let mut batch_out = AddressBatch::with_capacity(coords.len());
        mapping.map_batch(&coords, &mut batch_out);
        assert_eq!(
            scalar_out.address(coords.len() - 1),
            batch_out.address(coords.len() - 1),
            "{name}: batch diverges from scalar"
        );
        assert_eq!(scalar_out.rows(), batch_out.rows(), "{name}: rows diverge");

        group.bench_with_input(BenchmarkId::new("scalar", name), mapping, |b, mapping| {
            let mut out = AddressBatch::with_capacity(coords.len());
            b.iter(|| {
                out.clear();
                for &(i, j) in black_box(&coords) {
                    out.push(0, mapping.map(i, j));
                }
                out.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("batch", name), mapping, |b, mapping| {
            let mut out = AddressBatch::with_capacity(coords.len());
            b.iter(|| {
                out.clear();
                mapping.map_batch(black_box(&coords), &mut out);
                out.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapgen_kernels);
criterion_main!(benches);
