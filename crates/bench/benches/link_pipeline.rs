//! Benchmarks the satcom substrate: Reed–Solomon encode/decode throughput and
//! the end-to-end link pipeline with and without interleaving (DESIGN.md
//! experiment A2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tbi_satcom::channel::GilbertElliott;
use tbi_satcom::link::{InterleaverChoice, LinkConfig, LinkSimulation};
use tbi_satcom::ReedSolomon;

fn bench_reed_solomon(c: &mut Criterion) {
    let rs = ReedSolomon::ccsds();
    let mut rng = StdRng::seed_from_u64(5);
    let data: Vec<u8> = (0..rs.data_len()).map(|_| rng.gen()).collect();
    let codeword = rs.encode(&data).expect("encoding succeeds");
    let mut corrupted = codeword.clone();
    for i in 0..rs.correction_capability() {
        corrupted[i * 9] ^= 0x3C;
    }

    let mut group = c.benchmark_group("reed_solomon");
    group.throughput(Throughput::Bytes(rs.code_len() as u64));
    group.bench_function("encode_255_223", |b| {
        b.iter(|| rs.encode(&data).expect("encoding succeeds"));
    });
    group.bench_function("decode_clean", |b| {
        b.iter(|| rs.decode(&codeword).expect("decoding succeeds"));
    });
    group.bench_function("decode_16_errors", |b| {
        b.iter(|| rs.decode(&corrupted).expect("decoding succeeds"));
    });
    group.finish();
}

fn bench_link_pipeline(c: &mut Criterion) {
    let channel = GilbertElliott::optical_downlink(0.05);
    let mut group = c.benchmark_group("link_pipeline");
    group.sample_size(10);
    for (name, interleaver) in [
        ("without_interleaver", InterleaverChoice::None),
        ("with_triangular_interleaver", InterleaverChoice::Triangular),
    ] {
        let config = LinkConfig {
            codewords: 32,
            interleaver,
            ..LinkConfig::default()
        };
        let simulation = LinkSimulation::new(config).expect("valid link config");
        group.throughput(Throughput::Bytes(
            (config.codewords * config.rs_code_len) as u64,
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &simulation,
            |b, simulation| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(99);
                    simulation
                        .run(&channel, &mut rng)
                        .expect("link run succeeds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reed_solomon, bench_link_pipeline);
criterion_main!(benches);
