//! Criterion benchmark for the ablation study (DESIGN.md experiment A1):
//! evaluates every mapping scheme on the most bandwidth-sensitive
//! configuration (DDR4-3200) and reports simulated-bursts-per-second, so the
//! relative cost of each scheme's address arithmetic and access pattern is
//! visible.  Each scheme is one [`tbi_exp::Scenario`].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tbi_dram::DramStandard;
use tbi_exp::Scenario;
use tbi_interleaver::{InterleaverSpec, MappingKind};

const BURSTS: u64 = 20_000;

fn bench_mapping_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_ablation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * BURSTS));
    for kind in MappingKind::ALL {
        let scenario = Scenario::preset(
            DramStandard::Ddr4,
            3200,
            kind,
            InterleaverSpec::from_burst_count(BURSTS),
        )
        .expect("preset exists");
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &scenario,
            |b, scenario| {
                b.iter(|| scenario.run().expect("evaluation succeeds"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapping_ablation);
criterion_main!(benches);
