//! Criterion benchmark behind Table I: times the full write+read phase
//! simulation of the row-major and optimized mappings for every DRAM
//! configuration (the utilization numbers themselves are printed by the
//! `table1` binary; this benchmark tracks how fast the harness regenerates
//! them).  Each (configuration, mapping) cell is one [`tbi_exp::Scenario`].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tbi_exp::Scenario;
use tbi_interleaver::{InterleaverSpec, MappingKind};

const BURSTS: u64 = 20_000;

fn bench_table1_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * BURSTS));
    for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
        for kind in MappingKind::TABLE1 {
            let scenario = Scenario::preset(
                *standard,
                *rate,
                kind,
                InterleaverSpec::from_burst_count(BURSTS),
            )
            .expect("preset exists");
            let label = scenario.dram().label();
            group.bench_with_input(
                BenchmarkId::new(kind.name(), &label),
                &scenario,
                |b, scenario| {
                    b.iter(|| {
                        let record = scenario.run().expect("evaluation succeeds");
                        assert!(record.min_utilization > 0.0);
                        record
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1_configs);
criterion_main!(benches);
