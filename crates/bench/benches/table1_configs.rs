//! Criterion benchmark behind Table I: times the full write+read phase
//! simulation of the row-major and optimized mappings for every DRAM
//! configuration (the utilization numbers themselves are printed by the
//! `table1` binary; this benchmark tracks how fast the harness regenerates
//! them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tbi_dram::DramConfig;
use tbi_interleaver::{InterleaverSpec, MappingKind, ThroughputEvaluator};

const BURSTS: u64 = 20_000;

fn bench_table1_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * BURSTS));
    for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
        let dram = DramConfig::preset(*standard, *rate).expect("preset exists");
        let label = dram.label();
        for kind in MappingKind::TABLE1 {
            let evaluator =
                ThroughputEvaluator::new(dram.clone(), InterleaverSpec::from_burst_count(BURSTS));
            group.bench_with_input(
                BenchmarkId::new(kind.name(), &label),
                &evaluator,
                |b, evaluator| {
                    b.iter(|| {
                        let report = evaluator.evaluate(kind).expect("evaluation succeeds");
                        assert!(report.min_utilization() > 0.0);
                        report
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1_configs);
criterion_main!(benches);
