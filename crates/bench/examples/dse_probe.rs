//! Focused mapping-search probe for one preset — the iteration tool behind
//! `BENCH_dse.json` regenerations.
//!
//! `mapping_search` always sweeps all ten Table I presets; when tuning the
//! portfolio on one stubborn configuration (historically DDR3-800 and
//! LPDDR4-4266, the no-bank-group standards) that wastes nine presets of
//! wall clock per iteration.  This example runs a single preset:
//!
//! ```text
//! cargo run --release -p tbi_bench --example dse_probe -- \
//!     DDR3-800 [bursts] [budget] [restarts] [surrogate] [seed]
//! ```
//!
//! Focused sub-modes score one explicit design point instead of searching:
//! `eval <preset> <bursts> <perm> [fold]` for a bit-sliced candidate,
//! `tile <preset> <bursts> <h> <w>` for a free-shape tiling,
//! `sweep <preset> <bursts> <perm> <fold>` for all one-step fold
//! extensions, and `analyze <preset> <n>` for order-based (timing-free)
//! reference hit rates.

use tbi_bench::HarnessOptions;
use tbi_dram::standards::ALL_CONFIGS;
use tbi_dram::{BitPermutation, DramConfig, XorFold};
use tbi_exp::search::{MappingSearch, SearchSettings, SearchStrategy};
use tbi_interleaver::InterleaverSpec;

fn preset(label: &str) -> DramConfig {
    ALL_CONFIGS
        .iter()
        .map(|(standard, rate)| DramConfig::preset(*standard, *rate).expect("preset builds"))
        .find(|dram| dram.label() == label)
        .unwrap_or_else(|| panic!("unknown preset `{label}`"))
}

/// `eval <preset> <bursts> <perm> [fold]` — score one explicit candidate
/// against the references, with per-phase hit rates.
fn eval_candidate(args: &[String]) {
    let label = &args[0];
    let bursts: u64 = args[1].parse().expect("bursts");
    let permutation: BitPermutation = args[2].parse().expect("permutation");
    let fold: XorFold = args
        .get(3)
        .map_or("", String::as_str)
        .parse()
        .expect("fold");
    let dram = preset(label);
    let settings = SearchSettings {
        budget: 1,
        restarts: 1,
        ..SearchSettings::default()
    };
    let controller = HarnessOptions {
        no_refresh: true,
        ..HarnessOptions::new()
    }
    .controller();
    let spec = InterleaverSpec::from_burst_count(bursts);
    let search = MappingSearch::new(dram, spec, settings).with_controller(controller);
    let (record, row_major, optimized) = search
        .score_candidate(permutation, fold)
        .expect("candidate evaluates");
    for (name, r) in [
        ("candidate", &record),
        ("optimized", &optimized),
        ("row_major", &row_major),
    ] {
        println!(
            "{name:<10} write {:.9} read {:.9} round {:.9} activates {}",
            r.write_row_hit_rate,
            r.read_row_hit_rate,
            (r.write_row_hit_rate + r.read_row_hit_rate) / 2.0,
            r.activates,
        );
    }
}

/// `tile <preset> <bursts> <h> <w>` — score one free-shape tiling against
/// the references, with per-phase hit rates.
fn eval_tile(args: &[String]) {
    use tbi_interleaver::MappingKind;

    let label = &args[0];
    let bursts: u64 = args[1].parse().expect("bursts");
    let tile_h: u32 = args[2].parse().expect("tile height");
    let tile_w: u32 = args[3].parse().expect("tile width");
    let dram = preset(label);
    let settings = SearchSettings {
        budget: 1,
        restarts: 1,
        ..SearchSettings::default()
    };
    let controller = HarnessOptions {
        no_refresh: true,
        ..HarnessOptions::new()
    }
    .controller();
    let spec = InterleaverSpec::from_burst_count(bursts);
    let search = MappingSearch::new(dram, spec, settings).with_controller(controller);
    let (record, row_major, optimized) = search
        .score_kind(MappingKind::GeneralTiled { tile_h, tile_w })
        .expect("tiling evaluates");
    for (name, r) in [
        ("tiled", &record),
        ("optimized", &optimized),
        ("row_major", &row_major),
    ] {
        println!(
            "{name:<10} write {:.9} read {:.9} round {:.9} activates {}",
            r.write_row_hit_rate,
            r.read_row_hit_rate,
            (r.write_row_hit_rate + r.read_row_hit_rate) / 2.0,
            r.activates,
        );
    }
}

/// `analyze <preset> <n>` — order-based (timing-free) hit rates of the
/// reference mappings, to separate ordering losses from scheduling losses.
fn analyze(args: &[String]) {
    use tbi_interleaver::analysis::analyse_phase;
    use tbi_interleaver::trace::AccessPhase;
    use tbi_interleaver::MappingKind;

    let dram = preset(&args[0]);
    let n: u32 = args[1].parse().expect("dimension");
    for kind in [MappingKind::Optimized, MappingKind::RowMajor] {
        let mapping = kind.build(&dram, n).expect("mapping builds");
        let write = analyse_phase(mapping.as_ref(), AccessPhase::Write);
        let read = analyse_phase(mapping.as_ref(), AccessPhase::Read);
        println!(
            "{kind:<22} analytic write {:.9} read {:.9} round {:.9} activations {}",
            write.row_hit_rate(),
            read.row_hit_rate(),
            (write.row_hit_rate() + read.row_hit_rate()) / 2.0,
            write.activations + read.activations,
        );
    }
}

/// `sweep <preset> <bursts> <perm> <fold>` — evaluate every single-step
/// fold extension of a base candidate, printing those that beat optimized.
fn sweep_folds(args: &[String]) {
    use tbi_dram::{AddressField, FoldOp, FoldStep};

    let label = &args[0];
    let bursts: u64 = args[1].parse().expect("bursts");
    let permutation: BitPermutation = args[2].parse().expect("permutation");
    let base: XorFold = args
        .get(3)
        .map_or("", String::as_str)
        .parse()
        .expect("fold");
    let dram = preset(label);
    let settings = SearchSettings {
        budget: 1,
        restarts: 1,
        ..SearchSettings::default()
    };
    let controller = HarnessOptions {
        no_refresh: true,
        ..HarnessOptions::new()
    }
    .controller();
    let spec = InterleaverSpec::from_burst_count(bursts);
    let search = MappingSearch::new(dram, spec, settings).with_controller(controller);
    let (_, _, optimized) = search
        .score_candidate(permutation, base)
        .expect("base evaluates");
    let target_rate = (optimized.write_row_hit_rate + optimized.read_row_hit_rate) / 2.0;
    println!("optimized round {target_rate:.9}");
    let fields = [
        AddressField::Bank,
        AddressField::Row,
        AddressField::Column,
        AddressField::BankGroup,
    ];
    for target in fields {
        for source in fields {
            if target == source || permutation.width_of(target) == 0 {
                continue;
            }
            for shift in 0..permutation.width_of(source) {
                for op in [FoldOp::Add, FoldOp::Xor] {
                    let step = FoldStep {
                        target,
                        source,
                        shift: u8::try_from(shift).expect("shift fits"),
                        op,
                    };
                    let Ok(fold) = base.with_step(step) else {
                        continue;
                    };
                    if fold.validate_for(&permutation).is_err() {
                        continue;
                    }
                    let (record, _, _) = search
                        .score_candidate(permutation, fold)
                        .expect("candidate evaluates");
                    let round = (record.write_row_hit_rate + record.read_row_hit_rate) / 2.0;
                    let marker = if round > target_rate {
                        " <-- BEATS"
                    } else {
                        ""
                    };
                    println!(
                        "{fold:<14} round {round:.9} ({:+.3e}){marker}",
                        round - target_rate
                    );
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("eval") {
        eval_candidate(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("sweep") {
        sweep_folds(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("tile") {
        eval_tile(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("analyze") {
        analyze(&args[1..]);
        return;
    }
    let label = args.first().map_or("DDR3-800", String::as_str);
    let arg = |index: usize, default: u64| -> u64 {
        args.get(index).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| panic!("bad argument `{v}`"))
        })
    };
    let bursts = arg(1, 2_000_000);
    let budget = u32::try_from(arg(2, 60)).expect("budget fits u32");
    let restarts = u32::try_from(arg(3, 10)).expect("restarts fits u32");
    let surrogate = u32::try_from(arg(4, 16)).expect("surrogate fits u32");
    let seed = arg(5, 0);

    let dram = preset(label);
    let settings = SearchSettings {
        seed,
        restarts,
        budget,
        neighbors: 8,
        strategy: SearchStrategy::Portfolio,
        surrogate_divisor: surrogate,
        ..SearchSettings::default()
    };
    let controller = HarnessOptions {
        no_refresh: true,
        ..HarnessOptions::new()
    }
    .controller();
    let spec = InterleaverSpec::from_burst_count(bursts);
    let record = MappingSearch::new(dram, spec, settings)
        .with_controller(controller)
        .run()
        .expect("search runs");
    println!(
        "{label} @ {bursts} bursts: discovered {:.9} vs optimized {:.9} \
         (gain {:.7}x, strict beat: {}) in {} full + {} surrogate evals\n  \
         permutation {}\n  fold {}",
        record.discovered_row_hit_rate(),
        record.optimized_row_hit_rate(),
        record.row_hit_gain(),
        record.beats_optimized(),
        record.evaluations,
        record.surrogate_evaluations,
        record.permutation,
        if record.fold.is_empty() {
            "-"
        } else {
            &record.fold
        },
    );
}
