//! Measures the intra-scenario threaded drive mode — worker threads driving
//! one scenario's channel controllers in parallel — across a threads ×
//! channels × streams matrix, verifies every threaded record is
//! bit-identical to the sequential run, and emits a script-friendly
//! `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin parallel_sweep [-- --full | --bursts <n> |
//!                                                          --json <p>]
//! ```
//!
//! Two workloads cover both threaded paths:
//!
//! - `table1` — the Table I DDR4-3200 row-major/optimized pair scaled out to
//!   1/2/4 channels, driven through
//!   `ChannelRouter::run_phase_sources_threaded`.  This is the headline
//!   speedup row family: at 4 channels, 4 workers drive 4 independent
//!   controllers concurrently.
//! - `tenants` — the multi-tenant scheduler at 4 channels × 8/64 streams,
//!   where only the final drain is threaded (admission is inherently
//!   sequential), pinning that the scheduler path stays bit-identical too.
//!
//! The experiment worker pool is pinned to one scenario at a time
//! (`--workers` is not supported) so intra-scenario threading is the only
//! parallelism being measured.  Wall-clock speedups are meaningful only on
//! multi-core hosts; the artifact records `host_parallelism` so consumers
//! (e.g. the CI smoke check) can gate speedup assertions on it.  Exits
//! non-zero if any threaded record diverges from its sequential reference.

use std::path::PathBuf;
use std::time::Instant;

use tbi_bench::HarnessOptions;
use tbi_dram::{ChannelTopology, DramConfig, DramStandard, TimingEngine};
use tbi_exp::serialize::{json_number, json_string};
use tbi_exp::{Experiment, Record, Scenario, TenantStage};
use tbi_interleaver::{InterleaverSpec, MappingKind};
use tbi_sched::SchedPolicyKind;

const DEFAULT_OUTPUT: &str = "BENCH_parallel.json";
const CHANNEL_AXIS: [u32; 3] = [1, 2, 4];
const THREAD_AXIS: [usize; 3] = [1, 2, 4];
const STREAM_AXIS: [u32; 2] = [8, 64];
/// Minimum per-stream interleaver size of the tenant rows (matches
/// `tenant_sweep`).
const MIN_STREAM_BURSTS: u64 = 64;

const USAGE_FLAGS: &[&str] = &["--full", "--bursts", "--json"];

fn usage() -> String {
    HarnessOptions::usage_for("parallel_sweep", USAGE_FLAGS)
}

/// One measured (workload, channels, streams, threads) cell.
struct Row {
    workload: &'static str,
    channels: u32,
    /// Tenant streams of the cell (0 for the plain `table1` workload).
    streams: u32,
    threads: usize,
    wall_s: f64,
    speedup_vs_1_thread: f64,
    identical_to_1_thread: bool,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "{{\"workload\":{},\"channels\":{},\"streams\":{},\"threads\":{},\
             \"wall_s\":{},\"speedup_vs_1_thread\":{},\"identical_to_1_thread\":{}}}",
            json_string(self.workload),
            self.channels,
            self.streams,
            self.threads,
            json_number(self.wall_s),
            json_number(self.speedup_vs_1_thread),
            self.identical_to_1_thread,
        )
    }
}

/// Runs `scenario` once on a single experiment worker, returning its records
/// and the wall-clock time of the run.
fn timed_run(scenarios: Vec<Scenario>) -> (Vec<Record>, f64) {
    let started = Instant::now();
    let records = match Experiment::new(scenarios).with_workers(1).run() {
        Ok(records) => records,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };
    (records, started.elapsed().as_secs_f64())
}

/// Measures one workload cell across the thread axis: the 1-thread run is
/// the sequential reference, every other thread count must reproduce its
/// records bit-for-bit.
fn sweep_threads(
    workload: &'static str,
    channels: u32,
    streams: u32,
    scenarios: &[Scenario],
    rows: &mut Vec<Row>,
) {
    let mut reference: Option<(Vec<Record>, f64)> = None;
    for &threads in &THREAD_AXIS {
        let threaded: Vec<Scenario> = scenarios
            .iter()
            .map(|s| s.clone().with_threads(threads))
            .collect();
        let (records, wall_s) = timed_run(threaded);
        let (identical, speedup) = match &reference {
            None => (true, 1.0),
            Some((baseline, baseline_wall_s)) => (
                baseline == &records,
                baseline_wall_s / wall_s.max(f64::MIN_POSITIVE),
            ),
        };
        if !identical {
            eprintln!(
                "RECORD DIVERGENCE: {workload} c{channels} s{streams} at {threads} thread(s)"
            );
        }
        rows.push(Row {
            workload,
            channels,
            streams,
            threads,
            wall_s,
            speedup_vs_1_thread: speedup,
            identical_to_1_thread: identical,
        });
        if reference.is_none() {
            reference = Some((records, wall_s));
        }
    }
}

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if options.help {
        println!("{}", usage());
        return;
    }
    if options.no_refresh
        || options.csv.is_some()
        || options.workers != 0
        || options.threads != 1
        || options.engine != TimingEngine::default()
        || options.channels != 1
        || options.ranks != 1
    {
        eprintln!(
            "error: parallel_sweep owns the channel ({CHANNEL_AXIS:?}) and thread \
             ({THREAD_AXIS:?}) axes and runs one scenario at a time; only --full/--bursts/--json \
             are supported"
        );
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    let output = options
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_OUTPUT));
    let host_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let preset = match DramConfig::preset(DramStandard::Ddr4, 3200) {
        Ok(config) => config,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "parallel_sweep: {} bursts per scenario, channels {CHANNEL_AXIS:?} x threads \
         {THREAD_AXIS:?} (+ tenant rows at streams {STREAM_AXIS:?}), host parallelism {}",
        options.bursts, host_parallelism,
    );

    let mut rows: Vec<Row> = Vec::new();
    let spec = InterleaverSpec::from_burst_count(options.bursts);
    for &channels in &CHANNEL_AXIS {
        let dram = preset
            .clone()
            .with_topology(ChannelTopology::new(channels, 1));
        let scenarios: Vec<Scenario> = [MappingKind::RowMajor, MappingKind::Optimized]
            .into_iter()
            .map(|kind| Scenario::custom(dram.clone(), kind, spec))
            .collect();
        sweep_threads("table1", channels, 0, &scenarios, &mut rows);
    }
    let tenant_dram = preset.clone().with_topology(ChannelTopology::new(4, 1));
    for &streams in &STREAM_AXIS {
        let per_stream = (options.bursts / u64::from(streams)).max(MIN_STREAM_BURSTS);
        let spec = InterleaverSpec::from_burst_count(per_stream);
        let scenarios = vec![
            Scenario::custom(tenant_dram.clone(), MappingKind::Optimized, spec)
                .with_tenants(TenantStage::new(streams, SchedPolicyKind::WeightedShare)),
        ];
        sweep_threads("tenants", 4, streams, &scenarios, &mut rows);
    }

    let all_identical = rows.iter().all(|row| row.identical_to_1_thread);
    let speedup_4ch_4t = rows
        .iter()
        .find(|row| row.workload == "table1" && row.channels == 4 && row.threads == 4)
        .map_or(0.0, |row| row.speedup_vs_1_thread);

    println!(
        "{:<10} {:>3} {:>8} {:>8} {:>10} {:>9} {:>10}",
        "workload", "ch", "streams", "threads", "wall s", "speedup", "identical"
    );
    for row in &rows {
        println!(
            "{:<10} {:>3} {:>8} {:>8} {:>10.3} {:>8.2}x {:>10}",
            row.workload,
            row.channels,
            row.streams,
            row.threads,
            row.wall_s,
            row.speedup_vs_1_thread,
            row.identical_to_1_thread,
        );
    }
    println!("  4-channel / 4-thread speedup : {speedup_4ch_4t:.2}x");
    println!("  records bit-identical        : {all_identical}");

    let rows_json: Vec<String> = rows
        .iter()
        .map(|row| format!("    {}", row.to_json()))
        .collect();
    let json = format!(
        "{{\n  \"bench\": {},\n  \"bursts\": {},\n  \"host_parallelism\": {},\n  \
         \"channel_axis\": [1,2,4],\n  \"thread_axis\": [1,2,4],\n  \"stream_axis\": [8,64],\n  \
         \"speedup_4ch_4t\": {},\n  \"all_identical\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_string("parallel_sweep"),
        options.bursts,
        host_parallelism,
        json_number(speedup_4ch_4t),
        all_identical,
        rows_json.join(",\n"),
    );
    if let Err(error) = std::fs::write(&output, json) {
        eprintln!("error: cannot write {}: {error}", output.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", output.display());

    if !all_identical {
        std::process::exit(1);
    }
}
