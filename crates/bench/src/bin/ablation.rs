//! Ablation study (not in the paper, but called out in DESIGN.md): how much
//! each of the three optimizations contributes, per DRAM configuration.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin ablation [-- --bursts <n> | --no-refresh | --full]
//! ```

use tbi_bench::HarnessOptions;
use tbi_dram::DramConfig;
use tbi_interleaver::MappingKind;

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: ablation [--full] [--bursts <n>] [--no-refresh]");
            std::process::exit(2);
        }
    };

    println!("Ablation: minimum-phase bandwidth utilization per mapping scheme");
    println!("(interleaver of {} bursts)", options.bursts);
    println!();
    print!("{:<14}", "DRAM");
    for kind in MappingKind::ALL {
        print!(" {:>21}", kind.name());
    }
    println!();
    println!("{}", "-".repeat(14 + 22 * MappingKind::ALL.len()));

    for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
        let dram = DramConfig::preset(*standard, *rate).expect("preset exists");
        let label = dram.label();
        let evaluator = options.evaluator(dram);
        print!("{label:<14}");
        for kind in MappingKind::ALL {
            let report = evaluator.evaluate(kind).expect("evaluation succeeds");
            print!(" {:>19.2} %", report.min_utilization() * 100.0);
        }
        println!();
    }
}
