//! Ablation study (not in the paper, but called out in DESIGN.md): how much
//! each of the three optimizations contributes, per DRAM configuration.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin ablation [-- --bursts <n> | --no-refresh | --full |
//!                                                    --channels <n> | --ranks <n> |
//!                                                    --workers <n> | --json <p> | --csv <p>]
//! ```
//!
//! Declared as one [`tbi_exp::SweepGrid`]: all presets × every mapping
//! scheme on the selected channel/rank topology, executed in parallel.

use tbi_exp::SweepGrid;
use tbi_interleaver::MappingKind;

use tbi_bench::HarnessOptions;

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", HarnessOptions::usage("ablation"));
            std::process::exit(2);
        }
    };
    if options.help {
        println!("{}", HarnessOptions::usage("ablation"));
        return;
    }

    let grid = match SweepGrid::new().all_presets() {
        Ok(grid) => grid
            .channel_count(options.channels)
            .rank_count(options.ranks)
            .size(options.bursts)
            .mappings(MappingKind::ALL)
            .refresh(options.refresh_setting())
            .controller(options.controller()),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };
    let records = match options.run_grid(grid) {
        Ok(records) => records,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };

    println!("Ablation: minimum-phase bandwidth utilization per mapping scheme");
    println!("(interleaver of {} bursts)", options.bursts);
    println!();
    print!("{:<14}", "DRAM");
    for kind in MappingKind::ALL {
        print!(" {:>21}", kind.name());
    }
    println!();
    println!("{}", "-".repeat(14 + 22 * MappingKind::ALL.len()));

    for row in records.chunks(MappingKind::ALL.len()) {
        print!("{:<14}", row[0].dram_label);
        for record in row {
            print!(" {:>19.2} %", record.min_utilization * 100.0);
        }
        println!();
    }

    if let Err(error) = options.write_outputs(&records) {
        eprintln!("error: {error}");
        std::process::exit(1);
    }
}
