//! Regenerates **Figure 1** of the paper: the mapping schemes rendered as a
//! small text grid over the top-left corner of the index space.
//!
//! ```text
//! cargo run -p tbi_bench --bin fig1 [-- a|b|c|d [rows cols]]
//! ```
//!
//! * `a` — bank round-robin only (Fig. 1a)
//! * `b` — page tiling only (Fig. 1b)
//! * `c` — banks + columns + rows combined, no stagger (Fig. 1c)
//! * `d` — the full optimized mapping with the bank-dependent offset (Fig. 1d)
//!
//! The paper's figure uses a miniature device with two banks and four-column
//! pages; the same miniature geometry is used here so the printed pattern is
//! directly comparable.

use tbi_dram::DeviceGeometry;
use tbi_interleaver::mapping::{
    render_grid, BankRoundRobinMapping, DramMapping, OptimizedMapping, TiledMapping,
};

/// The miniature geometry used in the paper's Figure 1: two banks (in two
/// bank groups) and four bursts per page.
fn figure_geometry() -> DeviceGeometry {
    DeviceGeometry {
        bank_groups: 2,
        banks_per_group: 1,
        rows: 1 << 10,
        columns_per_row: 4,
        burst_length: 8,
        bus_width_bits: 64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let rows: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let cols: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let geometry = figure_geometry();
    let n = 64;

    let print = |title: &str, mapping: &dyn DramMapping| {
        println!("{title}");
        println!("{}", render_grid(mapping, rows, cols));
    };

    if matches!(which, "a" | "all") {
        let mapping = BankRoundRobinMapping::new(geometry, n).expect("figure geometry fits");
        print("Fig. 1a — bank round-robin (diagonal) pattern:", &mapping);
    }
    if matches!(which, "b" | "all") {
        let mapping = TiledMapping::new(geometry, n).expect("figure geometry fits");
        print("Fig. 1b — page tiling (one page per rectangle):", &mapping);
    }
    if matches!(which, "c" | "all") {
        let mapping = OptimizedMapping::without_stagger(geometry, n).expect("figure geometry fits");
        print("Fig. 1c — banks, columns and rows combined:", &mapping);
    }
    if matches!(which, "d" | "all") {
        let mapping = OptimizedMapping::new(geometry, n).expect("figure geometry fits");
        print(
            "Fig. 1d — full optimized mapping with bank-dependent column offset:",
            &mapping,
        );
    }
    if !matches!(which, "a" | "b" | "c" | "d" | "all") {
        eprintln!("usage: fig1 [a|b|c|d|all] [rows cols]");
        std::process::exit(2);
    }
}
