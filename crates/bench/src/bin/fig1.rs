//! Regenerates **Figure 1** of the paper: the mapping schemes rendered as a
//! small text grid over the top-left corner of the index space, plus the
//! utilization each scheme achieves on the miniature device.
//!
//! ```text
//! cargo run -p tbi_bench --bin fig1 [-- a|b|c|d|all [rows cols]] [--workers <n>]
//!                                   [--json <p>] [--csv <p>]
//! ```
//!
//! * `a` — bank round-robin only (Fig. 1a)
//! * `b` — page tiling only (Fig. 1b)
//! * `c` — banks + columns + rows combined, no stagger (Fig. 1c)
//! * `d` — the full optimized mapping with the bank-dependent offset (Fig. 1d)
//!
//! The paper's figure uses a miniature device with two banks and four-column
//! pages; the same miniature geometry is used here so the printed pattern is
//! directly comparable.  Each selected scheme is a [`tbi_exp::Scenario`] on
//! that miniature device: the grids are rendered from the scenario's mapping
//! and the utilization footer comes from running the scenarios as one
//! [`tbi_exp::Experiment`].

use tbi_dram::{DramConfig, DramConfigBuilder, DramStandard};
use tbi_exp::{Experiment, Scenario};
use tbi_interleaver::mapping::render_grid;
use tbi_interleaver::{InterleaverSpec, MappingKind};

use tbi_bench::HarnessOptions;

/// The miniature configuration behind the paper's Figure 1: two banks (in
/// two bank groups) and four-burst pages on an otherwise DDR4-like device.
fn figure_config() -> DramConfig {
    DramConfigBuilder::from_preset(DramStandard::Ddr4, 1600)
        .expect("DDR4-1600 is a paper preset")
        .bank_groups(2)
        .banks_per_group(1)
        .rows(1 << 10)
        .columns_per_row(4)
        .bus_width_bits(64)
        .build()
        .expect("miniature figure geometry is valid")
}

/// The schemes of Fig. 1a–1d, with their panel letter and caption.
const PANELS: [(&str, MappingKind, &str); 4] = [
    (
        "a",
        MappingKind::BankRoundRobin,
        "Fig. 1a — bank round-robin (diagonal) pattern:",
    ),
    (
        "b",
        MappingKind::Tiled,
        "Fig. 1b — page tiling (one page per rectangle):",
    ),
    (
        "c",
        MappingKind::OptimizedNoStagger,
        "Fig. 1c — banks, columns and rows combined:",
    ),
    (
        "d",
        MappingKind::Optimized,
        "Fig. 1d — full optimized mapping with bank-dependent column offset:",
    ),
];

const SUPPORTED_FLAGS: [&str; 3] = ["--workers", "--json", "--csv"];

fn usage_exit() -> ! {
    eprintln!("usage: fig1 [a|b|c|d|all] [rows cols] [--workers <n>] [--json <p>] [--csv <p>]");
    std::process::exit(2);
}

/// Splits the raw arguments into positionals and flag arguments, keeping a
/// value-taking flag together with its value.
fn split_args<I: Iterator<Item = String>>(args: I) -> (Vec<String>, Vec<String>) {
    let mut positionals = Vec::new();
    let mut flags = Vec::new();
    let mut iter = args;
    while let Some(arg) = iter.next() {
        if arg.starts_with('-') {
            let takes_value = matches!(arg.as_str(), "--bursts" | "--workers" | "--json" | "--csv");
            flags.push(arg);
            if takes_value {
                if let Some(value) = iter.next() {
                    flags.push(value);
                }
            }
        } else {
            positionals.push(arg);
        }
    }
    (positionals, flags)
}

fn main() {
    let (positionals, flags) = split_args(std::env::args().skip(1));
    let options = match HarnessOptions::parse(flags) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            usage_exit();
        }
    };
    if options.help {
        println!("{}", HarnessOptions::usage_for("fig1", &SUPPORTED_FLAGS));
        println!("\npositional arguments: [a|b|c|d|all] [rows cols] (grid corner size)");
        return;
    }
    if options.bursts != tbi_bench::DEFAULT_BURSTS
        || options.no_refresh
        || options.channels != 1
        || options.ranks != 1
    {
        eprintln!(
            "error: fig1 always uses the paper's miniature single-channel device; \
             --full/--bursts/--no-refresh/--channels/--ranks are not supported"
        );
        usage_exit();
    }
    let which = positionals.first().map(String::as_str).unwrap_or("all");
    if !matches!(which, "a" | "b" | "c" | "d" | "all") {
        usage_exit();
    }
    let rows: u32 = positionals.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let cols: u32 = positionals.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    let config = figure_config();
    // A 64-dimension triangle (2080 bursts) — the largest size that keeps the
    // miniature device comfortably filled.
    let spec = InterleaverSpec::from_burst_count(2_080);

    let mut scenarios = Vec::new();
    for (letter, kind, caption) in PANELS
        .iter()
        .filter(|(letter, _, _)| which == "all" || which == *letter)
    {
        let scenario =
            Scenario::custom(config.clone(), *kind, spec).with_id(format!("fig1{letter}"));
        let mapping = match scenario.build_mapping() {
            Ok(mapping) => mapping,
            Err(error) => {
                eprintln!("error: {error}");
                std::process::exit(1);
            }
        };
        println!("{caption}");
        println!("{}", render_grid(mapping.as_ref(), rows, cols));
        scenarios.push(scenario);
    }

    let experiment = Experiment::new(scenarios);
    let experiment = if options.workers == 0 {
        experiment.with_auto_workers()
    } else {
        experiment.with_workers(options.workers)
    };
    let records = match experiment.run() {
        Ok(records) => records,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };

    println!(
        "Minimum-phase utilization on the miniature device ({} bursts):",
        spec.burst_count()
    );
    for record in &records {
        println!(
            "  {:<22} {:>6.2} %",
            record.mapping,
            record.min_utilization * 100.0
        );
    }

    if let Err(error) = options.write_outputs(&records) {
        eprintln!("error: {error}");
        std::process::exit(1);
    }
}
