//! Sweeps the multi-tenant scheduler axes — concurrent streams × scheduling
//! policy × channels — on two representative presets and reports per-tenant
//! tail latency, emitting a script-friendly `BENCH_tenants.json`.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin tenant_sweep [-- --bursts <n> |
//!                                                        --engine <e> |
//!                                                        --workers <n> |
//!                                                        --json <p>]
//! ```
//!
//! Every cell runs the same aggregate traffic: `--bursts` is divided across
//! the streams of the cell (floor 64 bursts per stream), each stream pushing
//! two triangular blocks through the optimized mapping with the default
//! 1:2:1 premium/standard/best-effort QoS mix of [`TenantStage`].  The
//! committed
//! `BENCH_tenants.json` pins the headline claim of the scheduler subsystem:
//! under heavy mixed traffic (the most-contended cell — maximum streams on
//! one channel), the premium-tenant p99 latency differs measurably between
//! scheduling policies (weight-aware policies protect premium tenants,
//! round-robin does not).

use std::path::PathBuf;

use tbi_bench::HarnessOptions;
use tbi_dram::{ChannelTopology, DramConfig, DramStandard};
use tbi_exp::serialize::{json_number, json_string, records_to_json};
use tbi_exp::{Experiment, Record, Scenario, TenantStage};
use tbi_interleaver::{InterleaverSpec, MappingKind};
use tbi_sched::SchedPolicyKind;

const DEFAULT_OUTPUT: &str = "BENCH_tenants.json";
const STREAM_AXIS: [u32; 2] = [8, 64];
const CHANNEL_AXIS: [u32; 2] = [1, 2];
const PRESETS: [(DramStandard, u32); 2] =
    [(DramStandard::Ddr4, 3200), (DramStandard::Lpddr4, 4266)];
/// Minimum per-stream interleaver size so every stream runs a non-trivial
/// triangular block even when `--bursts` is small.
const MIN_STREAM_BURSTS: u64 = 64;

fn usage() -> String {
    HarnessOptions::usage_for(
        "tenant_sweep",
        &["--bursts", "--engine", "--workers", "--json"],
    )
}

/// Per-policy tail-latency observation of one contended sweep cell.
struct PolicyCell {
    policy: String,
    premium_p99: u64,
    worst_p99: u64,
    fairness: f64,
}

/// Worst p99 over the premium-class tenants of a record.
fn premium_p99(record: &Record) -> u64 {
    record
        .tenants
        .as_ref()
        .expect("tenant sweep records carry a summary")
        .per_tenant
        .iter()
        .filter(|t| t.qos == "premium")
        .map(|t| t.p99_latency_cycles)
        .max()
        .unwrap_or(0)
}

fn find<'a>(
    records: &'a [Record],
    dram: &str,
    streams: u32,
    channels: u32,
    policy: &str,
) -> &'a Record {
    records
        .iter()
        .find(|r| {
            r.dram_label == dram
                && r.channels == channels
                && r.tenants
                    .as_ref()
                    .is_some_and(|t| t.streams == streams && t.policy == policy)
        })
        .expect("sweep covers every (dram, streams, channels, policy) cell")
}

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if options.help {
        println!("{}", usage());
        return;
    }
    if options.no_refresh || options.csv.is_some() || options.channels != 1 || options.ranks != 1 {
        eprintln!(
            "error: tenant_sweep owns the channel axis ({CHANNEL_AXIS:?}) and always runs the \
             default-refresh sweep; --channels/--ranks/--no-refresh/--csv are not supported"
        );
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    let output = options
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_OUTPUT));

    let mut scenarios = Vec::new();
    for (standard, rate) in PRESETS {
        let preset = match DramConfig::preset(standard, rate) {
            Ok(config) => config,
            Err(error) => {
                eprintln!("error: {error}");
                std::process::exit(1);
            }
        };
        for &channels in &CHANNEL_AXIS {
            let dram = preset
                .clone()
                .with_topology(ChannelTopology::new(channels, 1));
            for &streams in &STREAM_AXIS {
                let per_stream = (options.bursts / u64::from(streams)).max(MIN_STREAM_BURSTS);
                let spec = InterleaverSpec::from_burst_count(per_stream);
                for policy in SchedPolicyKind::ALL {
                    scenarios.push(
                        Scenario::custom(dram.clone(), MappingKind::Optimized, spec)
                            .with_engine(options.engine)
                            .with_tenants(TenantStage::new(streams, policy)),
                    );
                }
            }
        }
    }
    eprintln!(
        "tenant_sweep: {} scenarios, {} aggregate bursts per cell (streams {STREAM_AXIS:?}, \
         channels {CHANNEL_AXIS:?}, policies {:?})",
        scenarios.len(),
        options.bursts,
        SchedPolicyKind::ALL.map(|p| p.label()),
    );
    let experiment = Experiment::new(scenarios);
    let experiment = if options.workers == 0 {
        experiment.with_auto_workers()
    } else {
        experiment.with_workers(options.workers)
    };
    let records = match experiment.run() {
        Ok(records) => records,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };

    println!(
        "{:<14} {:>3} {:>8} {:>15} {:>13} {:>13} {:>9} {:>7}",
        "config", "ch", "streams", "policy", "premium p99", "worst p99", "fairness", "misses"
    );
    for record in &records {
        let tenants = record.tenants.as_ref().expect("tenant summary");
        println!(
            "{:<14} {:>3} {:>8} {:>15} {:>13} {:>13} {:>9.4} {:>7}",
            record.dram_label,
            record.channels,
            tenants.streams,
            tenants.policy,
            premium_p99(record),
            tenants.worst_p99_cycles,
            tenants.fairness_index,
            tenants.deadline_misses,
        );
    }

    // Headline: on each preset's most-contended cell (max streams, one
    // channel), the ratio between the worst and the best policy's premium
    // p99 — how much tail latency a premium tenant gains from the right
    // scheduling policy.
    let contended_streams = *STREAM_AXIS.iter().max().unwrap();
    let mut cell_json = Vec::new();
    let mut max_ratio: f64 = 0.0;
    for (standard, rate) in PRESETS {
        let dram = format!("{}-{rate}", standard.name());
        let cells: Vec<PolicyCell> = SchedPolicyKind::ALL
            .iter()
            .map(|policy| {
                let record = find(&records, &dram, contended_streams, 1, policy.label());
                let tenants = record.tenants.as_ref().unwrap();
                PolicyCell {
                    policy: policy.label().to_string(),
                    premium_p99: premium_p99(record),
                    worst_p99: tenants.worst_p99_cycles,
                    fairness: tenants.fairness_index,
                }
            })
            .collect();
        let best = cells.iter().map(|c| c.premium_p99).min().unwrap().max(1);
        let worst = cells.iter().map(|c| c.premium_p99).max().unwrap();
        let ratio = worst as f64 / best as f64;
        max_ratio = max_ratio.max(ratio);
        println!(
            "{dram}: premium p99 spread across policies at {contended_streams} streams / 1 \
             channel: x{ratio:.3}"
        );
        let per_policy: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"policy\":{},\"premium_p99_cycles\":{},\"worst_p99_cycles\":{},\
                     \"fairness_index\":{}}}",
                    json_string(&c.policy),
                    c.premium_p99,
                    c.worst_p99,
                    json_number(c.fairness),
                )
            })
            .collect();
        cell_json.push(format!(
            "{{\"dram\":{},\"streams\":{contended_streams},\"channels\":1,\
             \"premium_p99_ratio\":{},\"per_policy\":[{}]}}",
            json_string(&dram),
            json_number(ratio),
            per_policy.join(","),
        ));
    }
    println!("maximum premium-p99 policy spread: x{max_ratio:.3}");

    let json = format!(
        "{{\n  \"bench\": {},\n  \"bursts\": {},\n  \"stream_axis\": [8,64],\n  \
         \"channel_axis\": [1,2],\n  \"policies\": [{}],\n  \"scenarios\": {},\n  \
         \"max_premium_p99_ratio\": {},\n  \"contended_cells\": [\n    {}\n  ],\n  \
         \"records\": {}}}\n",
        json_string("tenant_sweep"),
        options.bursts,
        SchedPolicyKind::ALL
            .map(|p| json_string(p.label()))
            .join(","),
        records.len(),
        json_number(max_ratio),
        cell_json.join(",\n    "),
        records_to_json(&records),
    );
    if let Err(error) = std::fs::write(&output, json) {
        eprintln!("error: cannot write {}: {error}", output.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", output.display());
}
