//! Sweeps the channel axis (1 → 2 → 4 channels) for the Table I mapping
//! pair on two representative presets and reports how the aggregate
//! bandwidth scales, emitting a script-friendly `BENCH_channels.json`.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin channel_sweep [-- --full | --bursts <n> |
//!                                                         --ranks <n> | --workers <n> |
//!                                                         --json <p>]
//! ```
//!
//! The committed `BENCH_channels.json` pins the headline claim of the
//! multi-channel scale-out: the optimized mapping's aggregate bandwidth
//! scales ≥ 1.8× from one to two channels (channels are independent, so the
//! channel-interleaved stripe keeps per-channel utilization flat while the
//! peak doubles).

use std::path::PathBuf;

use tbi_bench::HarnessOptions;
use tbi_dram::{DramStandard, TimingEngine};
use tbi_exp::serialize::{json_number, json_string, records_to_json};
use tbi_exp::{Record, SweepGrid};
use tbi_interleaver::MappingKind;

const DEFAULT_OUTPUT: &str = "BENCH_channels.json";
const CHANNEL_AXIS: [u32; 3] = [1, 2, 4];
const PRESETS: [(DramStandard, u32); 2] =
    [(DramStandard::Ddr4, 3200), (DramStandard::Lpddr4, 4266)];

fn usage() -> String {
    HarnessOptions::usage_for(
        "channel_sweep",
        &["--full", "--bursts", "--ranks", "--workers", "--json"],
    )
}

/// One 1 → N scaling observation for the optimized mapping.
struct Scaling {
    dram: String,
    to_channels: u32,
    factor: f64,
}

fn find<'a>(records: &'a [Record], dram: &str, mapping: &str, channels: u32) -> &'a Record {
    records
        .iter()
        .find(|r| r.dram_label == dram && r.mapping == mapping && r.channels == channels)
        .expect("sweep covers every (dram, mapping, channels) cell")
}

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if options.help {
        println!("{}", usage());
        return;
    }
    if options.no_refresh
        || options.csv.is_some()
        || options.engine != TimingEngine::default()
        || options.channels != 1
    {
        eprintln!(
            "error: channel_sweep owns the channel axis ({CHANNEL_AXIS:?}) and always runs the \
             default-refresh event-engine sweep; --channels/--engine/--no-refresh/--csv are not \
             supported"
        );
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    let output = options
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_OUTPUT));

    let mut grid = SweepGrid::new()
        .channels(CHANNEL_AXIS)
        .rank_count(options.ranks)
        .size(options.bursts)
        .mappings(MappingKind::TABLE1)
        .controller(options.controller());
    for (standard, rate) in PRESETS {
        grid = match grid.preset(standard, rate) {
            Ok(grid) => grid,
            Err(error) => {
                eprintln!("error: {error}");
                std::process::exit(1);
            }
        };
    }
    eprintln!(
        "channel_sweep: {} scenarios at {} bursts each (channels {CHANNEL_AXIS:?}, {} rank(s))",
        grid.len(),
        options.bursts,
        options.ranks,
    );
    let records = match options.run_grid(grid) {
        Ok(records) => records,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };

    println!(
        "{:<14} {:>4} {:>12} {:>14} {:>12} {:>8}",
        "config", "ch", "mapping", "aggregate", "min util", "spread"
    );
    for record in &records {
        println!(
            "{:<14} {:>4} {:>12} {:>9.2} Gb/s {:>11.2} % {:>8.4}",
            record.dram_label,
            record.channels,
            record.mapping,
            record.aggregate_gbps,
            record.min_utilization * 100.0,
            record.channel_utilization_spread,
        );
    }

    let mut scalings: Vec<Scaling> = Vec::new();
    let mut min_scaling_1_to_2 = f64::INFINITY;
    for (standard, rate) in PRESETS {
        let dram = format!("{}-{rate}", standard.name());
        let base = find(&records, &dram, "optimized", 1);
        for &to in &CHANNEL_AXIS[1..] {
            let scaled = find(&records, &dram, "optimized", to);
            let factor = scaled.aggregate_gbps / base.aggregate_gbps;
            if to == 2 {
                min_scaling_1_to_2 = min_scaling_1_to_2.min(factor);
            }
            println!("{dram}: optimized aggregate bandwidth x{factor:.3} at {to} channels");
            scalings.push(Scaling {
                dram: dram.clone(),
                to_channels: to,
                factor,
            });
        }
    }
    println!("minimum 1->2 channel scaling (optimized): {min_scaling_1_to_2:.3}x");

    let scaling_json: Vec<String> = scalings
        .iter()
        .map(|s| {
            format!(
                "{{\"dram\":{},\"mapping\":\"optimized\",\"from_channels\":1,\
                 \"to_channels\":{},\"bandwidth_scaling\":{}}}",
                json_string(&s.dram),
                s.to_channels,
                json_number(s.factor),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": {},\n  \"bursts\": {},\n  \"ranks\": {},\n  \"scenarios\": {},\n  \
         \"channel_axis\": [1,2,4],\n  \"min_scaling_1_to_2_optimized\": {},\n  \
         \"scaling\": [\n    {}\n  ],\n  \"records\": {}}}\n",
        json_string("channel_sweep"),
        options.bursts,
        options.ranks,
        records.len(),
        json_number(min_scaling_1_to_2),
        scaling_json.join(",\n    "),
        records_to_json(&records),
    );
    if let Err(error) = std::fs::write(&output, json) {
        eprintln!("error: cannot write {}: {error}", output.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", output.display());
}
