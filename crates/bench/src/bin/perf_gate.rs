//! Performance-trajectory regression gate over the committed `BENCH_*.json`
//! artifacts.
//!
//! For every artifact on the command line (default: all six committed
//! benchmarks), re-runs a **scaled-down** version of the same workload and
//! compares the headline metrics against the committed baseline with
//! per-metric tolerances (see [`tbi_bench::gate`]).  Identity flags
//! (`records_identical`, `all_identical`) must hold at any scale; ratio
//! metrics get loose tolerances because the re-run is orders of magnitude
//! smaller than the committed measurement.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin perf_gate -- \
//!     [--bursts <n>] [--workers <n>] [artifact.json ...]
//! ```
//!
//! Exits non-zero if any check fails, so CI can gate merges on the
//! performance trajectory never silently regressing.

use std::path::PathBuf;
use std::time::Instant;

use tbi_bench::gate::{evaluate, Check, CheckKind, GateReport};
use tbi_bench::{build_campaign, run_table1, HarnessOptions};
use tbi_dram::standards::ALL_CONFIGS;
use tbi_dram::{
    AddressBatch, BitPermutation, ChannelTopology, DramConfig, DramStandard, TimingEngine,
};
use tbi_exp::campaign::DEFAULT_CODE_RATES;
use tbi_exp::json::{parse, JsonValue};
use tbi_exp::search::{MappingSearch, SearchSettings, SearchStrategy};
use tbi_exp::serialize::json_number;
use tbi_exp::{Experiment, Record, Scenario, SweepGrid, TenantStage};
use tbi_interleaver::mapping::PermutedMapping;
use tbi_interleaver::{InterleaverSpec, MappingKind};
use tbi_sched::SchedPolicyKind;

/// The committed artifacts gated when no paths are given.
const DEFAULT_ARTIFACTS: [&str; 6] = [
    "BENCH_engine.json",
    "BENCH_channels.json",
    "BENCH_dse.json",
    "BENCH_mapgen.json",
    "BENCH_tenants.json",
    "BENCH_campaign.json",
];

/// Re-runs use this many bursts unless `--bursts` overrides it — a small
/// fraction of the committed full-scale runs, sized so the whole gate stays
/// in CI-smoke territory.
const DEFAULT_GATE_BURSTS: u64 = 20_000;

/// Address-generation re-runs map at least this many positions per
/// measurement so the timed ratios stay stable.
const GATE_TARGET_POSITIONS: u64 = 200_000;

fn usage() -> String {
    "usage: perf_gate [--bursts <n>] [--workers <n>] [artifact.json ...]\n\n\
     Re-runs a scaled-down version of each committed BENCH_*.json workload and\n\
     fails (exit 1) if any headline metric regressed beyond its tolerance.\n\n\
     options:\n  \
     --bursts <n>   interleaver size per re-run scenario (default 20000)\n  \
     --workers <n>  worker threads for sweep re-runs, 0 = auto (default 0)\n  \
     --help         print this help\n\n\
     With no artifact paths, gates all six committed artifacts:\n  "
        .to_string()
        + &DEFAULT_ARTIFACTS.join(", ")
}

struct GateOptions {
    bursts: u64,
    workers: usize,
    artifacts: Vec<PathBuf>,
    help: bool,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<GateOptions, String> {
    let mut options = GateOptions {
        bursts: DEFAULT_GATE_BURSTS,
        workers: 0,
        artifacts: Vec::new(),
        help: false,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            let value = iter
                .next()
                .ok_or_else(|| format!("{name} requires a value"))?;
            value
                .parse::<u64>()
                .map_err(|e| format!("invalid {name} value `{value}`: {e}"))
        };
        match arg.as_str() {
            "--bursts" => {
                options.bursts = numeric("--bursts")?;
                if options.bursts == 0 {
                    return Err("--bursts must be at least 1".to_string());
                }
            }
            "--workers" => {
                options.workers = usize::try_from(numeric("--workers")?)
                    .map_err(|_| "--workers out of range".to_string())?;
            }
            "--help" | "-h" => options.help = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => options.artifacts.push(PathBuf::from(path)),
        }
    }
    if options.artifacts.is_empty() {
        options.artifacts = DEFAULT_ARTIFACTS.iter().map(PathBuf::from).collect();
    }
    Ok(options)
}

/// Shared harness options for the sweep-based re-runs.
fn harness(options: &GateOptions) -> HarnessOptions {
    HarnessOptions {
        bursts: options.bursts,
        workers: options.workers,
        ..HarnessOptions::new()
    }
}

/// Resolves a committed `dram_label` (e.g. `DDR4-3200`) back to its preset.
fn preset_for_label(label: &str) -> Result<DramConfig, String> {
    for (standard, rate) in ALL_CONFIGS {
        if format!("{}-{rate}", standard.name()) == label {
            return DramConfig::preset(*standard, *rate)
                .map_err(|e| format!("preset {label}: {e}"));
        }
    }
    Err(format!("committed artifact names unknown preset `{label}`"))
}

/// Builds the current-measurement document from hand-formatted JSON (the
/// same serializer discipline as the bench binaries) via the crate's own
/// validating parser.
fn current_doc(text: &str) -> JsonValue {
    parse(text).expect("gate re-run document is valid JSON")
}

/// `engine_speed`: times both timing engines on the reduced Table I sweep.
/// The event engine must stay no slower than the cycle-accurate reference
/// and the records must stay bit-identical.
fn rerun_engine_speed(options: &GateOptions) -> Result<(JsonValue, Vec<Check>), String> {
    let base = harness(options);
    let timed = |engine: TimingEngine| -> Result<(Vec<Record>, f64), String> {
        let options = HarnessOptions {
            engine,
            ..base.clone()
        };
        let started = Instant::now();
        let records = run_table1(&options).map_err(|e| e.to_string())?;
        Ok((records, started.elapsed().as_secs_f64()))
    };
    let (cycle_records, cycle_wall_s) = timed(TimingEngine::Cycle)?;
    let (event_records, event_wall_s) = timed(TimingEngine::Event)?;
    let identical = cycle_records == event_records;
    let speedup = cycle_wall_s / event_wall_s.max(f64::MIN_POSITIVE);
    let doc = current_doc(&format!(
        "{{\"speedup\":{},\"records_identical\":{identical}}}",
        json_number(speedup)
    ));
    Ok((
        doc,
        vec![
            Check::new("records_identical", CheckKind::MustBeTrue),
            Check::new("speedup", CheckKind::AbsFloor(1.0)),
        ],
    ))
}

/// `channel_sweep`: re-measures the optimized mapping's 1 → 2 channel
/// bandwidth scaling on both committed presets.
fn rerun_channel_sweep(options: &GateOptions) -> Result<(JsonValue, Vec<Check>), String> {
    const PRESETS: [(DramStandard, u32); 2] =
        [(DramStandard::Ddr4, 3200), (DramStandard::Lpddr4, 4266)];
    let mut grid = SweepGrid::new()
        .channels([1, 2])
        .size(options.bursts)
        .mappings([MappingKind::Optimized]);
    for (standard, rate) in PRESETS {
        grid = grid.preset(standard, rate).map_err(|e| e.to_string())?;
    }
    let records = harness(options).run_grid(grid).map_err(|e| e.to_string())?;
    let mut min_scaling = f64::INFINITY;
    for (standard, rate) in PRESETS {
        let dram = format!("{}-{rate}", standard.name());
        let at = |channels: u32| -> Result<f64, String> {
            records
                .iter()
                .find(|r| r.dram_label == dram && r.channels == channels)
                .map(|r| r.aggregate_gbps)
                .ok_or_else(|| format!("re-run missing cell {dram}/c{channels}"))
        };
        min_scaling = min_scaling.min(at(2)? / at(1)?.max(f64::MIN_POSITIVE));
    }
    let doc = current_doc(&format!(
        "{{\"min_scaling_1_to_2_optimized\":{}}}",
        json_number(min_scaling)
    ));
    Ok((
        doc,
        vec![Check::new(
            "min_scaling_1_to_2_optimized",
            CheckKind::MinRatio(0.75),
        )],
    ))
}

/// Reads an integer setting from the committed artifact.
fn committed_u64(committed: &JsonValue, key: &str) -> Result<u64, String> {
    let n = committed
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("committed artifact has no numeric `{key}`"))?;
    // The JSON layer carries numbers as f64, which is only exact for
    // integers up to 2^53 — reject anything that cannot have survived the
    // round-trip unchanged (a silently rounded seed would re-run the
    // workload with different channel realisations).
    if n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
        return Err(format!(
            "committed `{key}` ({n}) is not an exactly-representable integer"
        ));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(n as u64)
}

/// Replay budget cap for the mapping-search gate: the committed artifact
/// may spend hundreds of full-size evaluations per preset, but the gate
/// re-runs on a reduced index space where a slice of that budget already
/// rediscovers competitive mappings.
const GATE_SEARCH_BUDGET: u32 = 96;

/// `mapping_search`: replays the committed search — same seed, restart
/// count, neighbor count, strategy (greedy or portfolio, including the
/// surrogate/annealing knobs) and refresh condition — on a reduced index
/// space with a capped budget.  The committed permutations themselves are
/// tuned to the full-size triangle, so the scaled-down gate re-runs the
/// *search* and checks it still rediscovers mappings near the optimized
/// row-hit rate.  Cross-preset transfer seeding is not replayed: the gate
/// checks each preset's search in isolation.
fn rerun_mapping_search(
    options: &GateOptions,
    committed: &JsonValue,
) -> Result<(JsonValue, Vec<Check>), String> {
    let refresh_disabled = matches!(
        committed.get("refresh_disabled"),
        Some(JsonValue::Bool(true))
    );
    // Portfolio keys default to the greedy artifact's implied values so the
    // gate accepts both artifact generations.
    let committed_u64_or = |key: &str, default: u64| -> Result<u64, String> {
        match committed.get(key) {
            None => Ok(default),
            Some(value) => value
                .as_f64()
                .map(|n| n as u64)
                .ok_or_else(|| format!("committed `{key}` is not numeric")),
        }
    };
    let strategy = match committed.get("strategy") {
        None => SearchStrategy::Greedy,
        Some(JsonValue::String(s)) => s.parse::<SearchStrategy>()?,
        Some(_) => return Err("committed `strategy` is not a string".to_string()),
    };
    let settings = SearchSettings {
        seed: committed_u64(committed, "seed")?,
        restarts: u32::try_from(committed_u64(committed, "restarts")?)
            .map_err(|_| "committed `restarts` out of range".to_string())?,
        budget: u32::try_from(committed_u64(committed, "budget")?)
            .map_err(|_| "committed `budget` out of range".to_string())?
            .min(GATE_SEARCH_BUDGET),
        neighbors: u32::try_from(committed_u64(committed, "neighbors")?)
            .map_err(|_| "committed `neighbors` out of range".to_string())?,
        workers: options.workers,
        strategy,
        surrogate_divisor: u32::try_from(committed_u64_or("surrogate_divisor", 0)?)
            .map_err(|_| "committed `surrogate_divisor` out of range".to_string())?,
        promote: u32::try_from(committed_u64_or("promote", 2)?)
            .map_err(|_| "committed `promote` out of range".to_string())?,
        sa_temp_micro: u32::try_from(committed_u64_or("sa_temp_micro", 150)?)
            .map_err(|_| "committed `sa_temp_micro` out of range".to_string())?,
    };
    let spec = InterleaverSpec::from_burst_count(options.bursts);
    let controller = HarnessOptions {
        no_refresh: refresh_disabled,
        ..HarnessOptions::new()
    }
    .controller();
    let mut min_gain = f64::INFINITY;
    for (standard, rate) in ALL_CONFIGS {
        let dram = DramConfig::preset(*standard, *rate).map_err(|e| e.to_string())?;
        let label = dram.label();
        let record = MappingSearch::new(dram, spec, settings)
            .with_controller(controller)
            .run()
            .map_err(|e| e.to_string())?;
        let gain = record.row_hit_gain();
        eprintln!("  {label}: rediscovered row-hit gain {gain:.6}x");
        min_gain = min_gain.min(gain);
    }
    let doc = current_doc(&format!(
        "{{\"min_row_hit_gain\":{}}}",
        json_number(min_gain)
    ));
    Ok((
        doc,
        vec![Check::new("min_row_hit_gain", CheckKind::MinRatio(0.95))],
    ))
}

/// Largest index-space dimension whose triangle fits in `bursts` positions.
fn dimension_for(bursts: u64) -> u32 {
    let mut n = 2u64;
    while (n + 1) * (n + 2) / 2 <= bursts {
        n += 1;
    }
    u32::try_from(n).expect("dimension fits u32")
}

/// `mapgen_speed`: re-times the batched permutation kernels on the
/// worst-case gather permutation of every preset — the row family behind
/// the committed `min_permutation_gather_speedup` — and re-checks the
/// scalar/batch bit-identity.
fn rerun_mapgen_speed(options: &GateOptions) -> Result<(JsonValue, Vec<Check>), String> {
    let n = dimension_for(options.bursts);
    let positions = u64::from(n) * (u64::from(n) + 1) / 2;
    let mut coords = Vec::with_capacity(usize::try_from(positions).expect("positions fit usize"));
    for i in 0..n {
        for j in 0..(n - i) {
            coords.push((i, j));
        }
    }
    let reps = GATE_TARGET_POSITIONS.div_ceil(positions);

    let mut all_identical = true;
    let mut min_speedup = f64::INFINITY;
    for (standard, rate) in ALL_CONFIGS {
        let config = DramConfig::preset(*standard, *rate).map_err(|e| e.to_string())?;
        let scheme = BitPermutation::for_scheme(
            config.decode_scheme,
            &config.geometry,
            ChannelTopology::default(),
        )
        .map_err(|e| format!("scheme permutation for {}: {e}", config.label()))?;
        // The same deliberately non-contiguous permutation mapgen_speed
        // benches: bottom bits swapped against high bits so the scalar
        // decode takes the per-bit gather path.
        let top = scheme.fields().len() - 1;
        let gather = scheme.with_swap(0, top).with_swap(1, top / 2);
        let mapping = PermutedMapping::new(config.geometry, ChannelTopology::default(), gather, n)
            .map_err(|e| format!("gather mapping for {}: {e}", config.label()))?;

        let mut scalar_out = AddressBatch::with_capacity(coords.len());
        let mut batch_out = AddressBatch::with_capacity(coords.len());
        let scalar = |out: &mut AddressBatch| {
            out.clear();
            out.reserve(coords.len());
            for &(i, j) in &coords {
                let (channel, address) = mapping.route(i, j);
                out.push(channel, address);
            }
        };
        scalar(&mut scalar_out);
        mapping.route_batch(&coords, &mut batch_out);
        if scalar_out != batch_out {
            eprintln!("BATCH DIVERGENCE: {} gather permutation", config.label());
            all_identical = false;
        }

        let started = Instant::now();
        for _ in 0..reps {
            scalar(&mut scalar_out);
        }
        std::hint::black_box(&scalar_out);
        let scalar_s = started.elapsed().as_secs_f64();
        let started = Instant::now();
        for _ in 0..reps {
            batch_out.clear();
            mapping.route_batch(&coords, &mut batch_out);
        }
        std::hint::black_box(&batch_out);
        let batch_s = started.elapsed().as_secs_f64();
        min_speedup = min_speedup.min(scalar_s / batch_s.max(f64::MIN_POSITIVE));
    }
    let doc = current_doc(&format!(
        "{{\"all_identical\":{all_identical},\
         \"min_permutation_gather_speedup\":{}}}",
        json_number(min_speedup)
    ));
    Ok((
        doc,
        vec![
            Check::new("all_identical", CheckKind::MustBeTrue),
            // The committed minimum is > 5x; even on a loaded CI box the
            // batched kernel must never fall behind the scalar path.
            Check::new("min_permutation_gather_speedup", CheckKind::AbsFloor(1.0)),
        ],
    ))
}

/// `tenant_sweep`: re-runs only the committed most-contended cells (max
/// streams on one channel, all policies) and re-measures the premium-p99
/// policy spread.
fn rerun_tenant_sweep(
    options: &GateOptions,
    committed: &JsonValue,
) -> Result<(JsonValue, Vec<Check>), String> {
    let cells = committed
        .get("contended_cells")
        .and_then(JsonValue::as_array)
        .ok_or("committed artifact has no `contended_cells` array")?;
    let mut max_ratio: f64 = 0.0;
    for cell in cells {
        let label = cell
            .get("dram")
            .and_then(JsonValue::as_str)
            .ok_or("contended cell has no `dram` label")?;
        let streams = cell
            .get("streams")
            .and_then(JsonValue::as_f64)
            .ok_or("contended cell has no `streams` count")?;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let streams = streams as u32;
        let dram = preset_for_label(label)?.with_topology(ChannelTopology::new(1, 1));
        let per_stream = (options.bursts / u64::from(streams.max(1))).max(64);
        let spec = InterleaverSpec::from_burst_count(per_stream);
        let scenarios: Vec<Scenario> = SchedPolicyKind::ALL
            .iter()
            .map(|&policy| {
                Scenario::custom(dram.clone(), MappingKind::Optimized, spec)
                    .with_tenants(TenantStage::new(streams, policy))
            })
            .collect();
        let experiment = Experiment::new(scenarios);
        let experiment = if options.workers == 0 {
            experiment.with_auto_workers()
        } else {
            experiment.with_workers(options.workers)
        };
        let records = experiment.run().map_err(|e| e.to_string())?;
        let premium_p99 = |record: &Record| -> u64 {
            record
                .tenants
                .as_ref()
                .expect("tenant scenarios carry a summary")
                .per_tenant
                .iter()
                .filter(|t| t.qos == "premium")
                .map(|t| t.p99_latency_cycles)
                .max()
                .unwrap_or(0)
        };
        let p99s: Vec<u64> = records.iter().map(premium_p99).collect();
        let best = p99s.iter().copied().min().unwrap_or(1).max(1);
        let worst = p99s.iter().copied().max().unwrap_or(0);
        #[allow(clippy::cast_precision_loss)]
        let ratio = worst as f64 / best as f64;
        eprintln!("  {label}: premium-p99 policy spread x{ratio:.3} at {streams} streams");
        max_ratio = max_ratio.max(ratio);
    }
    let doc = current_doc(&format!(
        "{{\"max_premium_p99_ratio\":{}}}",
        json_number(max_ratio)
    ));
    Ok((
        doc,
        vec![Check::new(
            "max_premium_p99_ratio",
            CheckKind::AbsFloor(1.1),
        )],
    ))
}

/// `campaign_sweep`: replays the committed campaign — same seed and trial
/// budget — at the gate's burst count.  The link simulations are sized by
/// the campaign itself rather than the DRAM burst count, so the
/// interleaving-gain waterfall and the frontier shape must reproduce
/// exactly at any scale; only the DRAM-side bandwidth shrinks with
/// `--bursts`, which is why the mapping-shift check is an absolute floor
/// and the aggregate check a loose ratio.
fn rerun_campaign_sweep(
    options: &GateOptions,
    committed: &JsonValue,
) -> Result<(JsonValue, Vec<Check>), String> {
    let seed = committed_u64(committed, "seed")?;
    let trials = u32::try_from(committed_u64(committed, "trials")?)
        .map_err(|_| "committed `trials` out of range".to_string())?;
    let campaign =
        build_campaign(options.bursts, options.workers, seed, trials).map_err(|e| e.to_string())?;
    let report = campaign.run().map_err(|e| e.to_string())?;
    let monotone = report.ber_strictly_decreases_with_depth(&DEFAULT_CODE_RATES);
    let all_frontiers_nonempty = report.frontiers.iter().all(|f| !f.points.is_empty());
    let mut min_shift = f64::INFINITY;
    let mut max_aggregate: f64 = 0.0;
    for frontier in &report.frontiers {
        min_shift = min_shift.min(report.mapping_bandwidth_shift(&frontier.dram_label));
    }
    for record in &report.records {
        max_aggregate = max_aggregate.max(record.aggregate_gbps);
    }
    eprintln!(
        "  waterfall strict: {monotone}, min mapping shift x{:.3}, peak {max_aggregate:.2} Gb/s",
        1.0 + min_shift
    );
    let doc = current_doc(&format!(
        "{{\"ber_strictly_decreases_with_depth\":{monotone},\
         \"all_frontiers_nonempty\":{all_frontiers_nonempty},\
         \"min_mapping_bandwidth_shift\":{},\"max_aggregate_gbps\":{}}}",
        json_number(min_shift),
        json_number(max_aggregate)
    ));
    Ok((
        doc,
        vec![
            Check::new("ber_strictly_decreases_with_depth", CheckKind::MustBeTrue),
            Check::new("all_frontiers_nonempty", CheckKind::MustBeTrue),
            // The mappings are distinguishable even at gate scale, but the
            // absolute shift grows with burst count, so gate on a floor
            // rather than a ratio against the full-size committed value.
            Check::new("min_mapping_bandwidth_shift", CheckKind::AbsFloor(0.01)),
            Check::new("max_aggregate_gbps", CheckKind::MinRatio(0.5)),
        ],
    ))
}

fn gate_artifact(options: &GateOptions, path: &PathBuf) -> Result<GateReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let committed = parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    let bench = committed
        .get("bench")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{} has no `bench` tag", path.display()))?
        .to_string();
    eprintln!("gating {} ({bench}) ...", path.display());
    let (current, checks) = match bench.as_str() {
        "engine_speed" => rerun_engine_speed(options)?,
        "channel_sweep" => rerun_channel_sweep(options)?,
        "mapping_search" => rerun_mapping_search(options, &committed)?,
        "mapgen_speed" => rerun_mapgen_speed(options)?,
        "tenant_sweep" => rerun_tenant_sweep(options, &committed)?,
        "campaign_sweep" => rerun_campaign_sweep(options, &committed)?,
        other => return Err(format!("{}: unknown bench tag `{other}`", path.display())),
    };
    Ok(evaluate(&bench, &current, &committed, &checks))
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if options.help {
        println!("{}", usage());
        return;
    }
    eprintln!(
        "perf_gate: {} artifact(s) at {} bursts per re-run scenario",
        options.artifacts.len(),
        options.bursts
    );
    let mut all_passed = true;
    for path in &options.artifacts {
        match gate_artifact(&options, path) {
            Ok(report) => {
                print!("{}", report.render());
                all_passed &= report.passed();
            }
            Err(message) => {
                eprintln!("error: {message}");
                all_passed = false;
            }
        }
    }
    if all_passed {
        println!("perf_gate: all artifacts within tolerance");
    } else {
        println!("perf_gate: PERFORMANCE REGRESSION DETECTED");
        std::process::exit(1);
    }
}
