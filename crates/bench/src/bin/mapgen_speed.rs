//! Measures the address-generation rate of the batched mapping kernels
//! against the per-element scalar path on the **full Table I preset sweep**
//! (row-major, optimized, a decode-scheme permutation and a deliberately
//! non-contiguous "gather" permutation per preset, plus channel-routed rows
//! on a multi-channel topology), verifies that both paths produce
//! bit-identical address batches, and emits a script-friendly
//! `BENCH_mapgen.json` so the workspace's mapping-kernel performance
//! trajectory accumulates run over run.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin mapgen_speed [-- --bursts <n> |
//!                                                        --channels <n> | --ranks <n> |
//!                                                        --json <p>]
//! ```
//!
//! `--bursts` sizes the triangular index space (default 1 Mi positions);
//! small index spaces are repeated until every measurement maps at least
//! [`TARGET_POSITIONS`] positions, so rates stay comparable across sizes.
//! `--channels`/`--ranks` select the topology of the channel-routed rows
//! (a `2 × 2` subsystem when left at the single-channel default).  `--json`
//! overrides the output path (default `BENCH_mapgen.json` in the current
//! directory).  Exits non-zero if any batch diverges from its scalar
//! reference.

use std::path::PathBuf;
use std::time::Instant;

use tbi_bench::HarnessOptions;
use tbi_dram::{
    AddressBatch, BitPermutation, ChannelTopology, DramConfig, PermutationMapping, TimingEngine,
};
use tbi_exp::serialize::{json_number, json_string};
use tbi_interleaver::mapping::{ChannelMapping, DramMapping, PermutedMapping};
use tbi_interleaver::MappingKind;

const DEFAULT_OUTPUT: &str = "BENCH_mapgen.json";

/// Every measurement maps at least this many positions (small index spaces
/// are repeated), keeping rates stable independent of `--bursts`.
const TARGET_POSITIONS: u64 = 2_000_000;

const USAGE_FLAGS: &[&str] = &["--full", "--bursts", "--channels", "--ranks", "--json"];

/// Largest index-space dimension whose triangle fits in `bursts` positions
/// (at least 2).
fn dimension_for(bursts: u64) -> u32 {
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    let mut n = (((8.0 * bursts as f64 + 1.0).sqrt() - 1.0) / 2.0) as u64;
    while (n + 1) * (n + 2) / 2 <= bursts {
        n += 1;
    }
    while n > 2 && n * (n + 1) / 2 > bursts {
        n -= 1;
    }
    u32::try_from(n.max(2)).expect("dimension fits u32")
}

/// The triangle's positions in write-phase (row-wise) order.
fn triangle_coords(n: u32) -> Vec<(u32, u32)> {
    let positions = (n as usize) * (n as usize + 1) / 2;
    let mut coords = Vec::with_capacity(positions);
    for i in 0..n {
        for j in 0..(n - i) {
            coords.push((i, j));
        }
    }
    coords
}

/// FNV-1a over every lane value in element order — a deterministic
/// fingerprint of the produced addresses, identical for both paths when and
/// only when the batches agree bit for bit.
fn batch_checksum(batch: &AddressBatch) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for index in 0..batch.len() {
        let (channel, address) = batch.get(index);
        for value in [
            channel,
            address.rank,
            address.bank_group,
            address.bank,
            address.row,
            address.column,
        ] {
            hash = (hash ^ u64::from(value)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// One benched (preset, scheme) combination.
struct Row {
    config: String,
    scheme: String,
    positions: u64,
    reps: u64,
    scalar_addresses_per_s: f64,
    batch_addresses_per_s: f64,
    speedup: f64,
    identical: bool,
    checksum: u64,
    /// `Some` for permutation rows: whether the scalar decode takes the
    /// contiguous shift/mask fast path.
    shift_mask: Option<bool>,
    /// `Some` for permutation rows: contiguous runs in the batch scatter
    /// plan (6 = one per field = fully contiguous).
    scatter_segments: Option<u32>,
}

impl Row {
    fn to_json(&self) -> String {
        let plan = match (self.shift_mask, self.scatter_segments) {
            (Some(shift_mask), Some(segments)) => {
                format!(",\"shift_mask\":{shift_mask},\"scatter_segments\":{segments}")
            }
            _ => String::new(),
        };
        format!(
            "{{\"config\":{},\"scheme\":{},\"positions\":{},\"reps\":{},\
             \"scalar_addresses_per_s\":{},\"batch_addresses_per_s\":{},\
             \"speedup\":{},\"identical\":{},\"checksum\":\"{:016x}\"{}}}",
            json_string(&self.config),
            json_string(&self.scheme),
            self.positions,
            self.reps,
            json_number(self.scalar_addresses_per_s),
            json_number(self.batch_addresses_per_s),
            json_number(self.speedup),
            self.identical,
            self.checksum,
            plan,
        )
    }
}

/// Times `scalar` and `batch` (each filling an [`AddressBatch`] from
/// `coords`) over enough repetitions to map [`TARGET_POSITIONS`] positions,
/// and verifies the two outputs are bit-identical.
fn measure<S, B>(config: &str, scheme: &str, coords: &[(u32, u32)], scalar: S, batch: B) -> Row
where
    S: Fn(&[(u32, u32)], &mut AddressBatch),
    B: Fn(&[(u32, u32)], &mut AddressBatch),
{
    let positions = coords.len() as u64;
    let reps = TARGET_POSITIONS.div_ceil(positions);
    let mut scalar_out = AddressBatch::with_capacity(coords.len());
    let mut batch_out = AddressBatch::with_capacity(coords.len());

    // Untimed warm-up doubles as the bit-identity check.
    scalar(coords, &mut scalar_out);
    batch(coords, &mut batch_out);
    let identical = scalar_out == batch_out;
    let checksum = batch_checksum(&batch_out);

    let started = Instant::now();
    for _ in 0..reps {
        scalar_out.clear();
        scalar(coords, &mut scalar_out);
    }
    std::hint::black_box(&scalar_out);
    let scalar_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    for _ in 0..reps {
        batch_out.clear();
        batch(coords, &mut batch_out);
    }
    std::hint::black_box(&batch_out);
    let batch_s = started.elapsed().as_secs_f64();

    let mapped = (reps * positions) as f64;
    let scalar_rate = mapped / scalar_s.max(f64::MIN_POSITIVE);
    let batch_rate = mapped / batch_s.max(f64::MIN_POSITIVE);
    Row {
        config: config.to_string(),
        scheme: scheme.to_string(),
        positions,
        reps,
        scalar_addresses_per_s: scalar_rate,
        batch_addresses_per_s: batch_rate,
        speedup: batch_rate / scalar_rate.max(f64::MIN_POSITIVE),
        identical,
        checksum,
        shift_mask: None,
        scatter_segments: None,
    }
}

/// The scalar reference fill: the default per-element `map` loop every
/// mapping had before the batched kernels existed.
fn scalar_map_fill(mapping: &dyn DramMapping, coords: &[(u32, u32)], out: &mut AddressBatch) {
    out.reserve(coords.len());
    for &(i, j) in coords {
        out.push(0, mapping.map(i, j));
    }
}

/// A deliberately non-contiguous permutation: the decode-scheme layout with
/// its bottom bits swapped against high bits, so every scalar decode takes
/// the per-bit gather path while the batch kernel still runs a handful of
/// scatter segments.
fn gather_permutation(scheme: BitPermutation) -> BitPermutation {
    let top = scheme.fields().len() - 1;
    scheme.with_swap(0, top).with_swap(1, top / 2)
}

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", HarnessOptions::usage_for("mapgen_speed", USAGE_FLAGS));
            std::process::exit(2);
        }
    };
    if options.help {
        println!("{}", HarnessOptions::usage_for("mapgen_speed", USAGE_FLAGS));
        return;
    }
    if options.no_refresh
        || options.csv.is_some()
        || options.workers != 0
        || options.engine != TimingEngine::default()
    {
        eprintln!(
            "error: mapgen_speed times the mapping kernels only; \
             --engine/--no-refresh/--csv/--workers are not supported"
        );
        eprintln!("{}", HarnessOptions::usage_for("mapgen_speed", USAGE_FLAGS));
        std::process::exit(2);
    }

    let output = options
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_OUTPUT));
    let n = dimension_for(options.bursts);
    let coords = triangle_coords(n);
    // Channel-routed rows need a real multi-channel subsystem; default to
    // 2 × 2 when the options leave the paper's single-channel topology.
    let topology = if options.channels * options.ranks == 1 {
        ChannelTopology::new(2, 2)
    } else {
        ChannelTopology::new(options.channels, options.ranks)
    };

    eprintln!(
        "mapgen_speed: {} positions (n = {n}) per scheme, {} presets",
        coords.len(),
        tbi_dram::standards::ALL_CONFIGS.len()
    );

    let mut rows: Vec<Row> = Vec::new();
    for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
        let config = match DramConfig::preset(*standard, *rate) {
            Ok(config) => config,
            Err(error) => {
                eprintln!("error: preset {standard:?}-{rate}: {error}");
                std::process::exit(1);
            }
        };
        let label = config.label();
        eprintln!("  {label} ...");

        for kind in [MappingKind::RowMajor, MappingKind::Optimized] {
            let mapping = kind.build(&config, n).expect("preset mapping builds");
            rows.push(measure(
                &label,
                kind.name(),
                &coords,
                |coords, out| scalar_map_fill(mapping.as_ref(), coords, out),
                |coords, out| mapping.map_batch(coords, out),
            ));
        }

        let scheme_permutation = BitPermutation::for_scheme(
            config.decode_scheme,
            &config.geometry,
            ChannelTopology::default(),
        )
        .expect("scheme permutation exists for every preset");
        for (scheme, permutation) in [
            ("permutation-scheme", scheme_permutation),
            ("permutation-gather", gather_permutation(scheme_permutation)),
        ] {
            let decoder =
                PermutationMapping::new(config.geometry, ChannelTopology::default(), permutation)
                    .expect("permutation matches the preset geometry");
            let mapping =
                PermutedMapping::new(config.geometry, ChannelTopology::default(), permutation, n)
                    .expect("index space fits the padded square");
            let mut row = measure(
                &label,
                scheme,
                &coords,
                |coords, out| {
                    out.reserve(coords.len());
                    for &(i, j) in coords {
                        let (channel, address) = mapping.route(i, j);
                        out.push(channel, address);
                    }
                },
                |coords, out| mapping.route_batch(coords, out),
            );
            row.shift_mask = Some(decoder.is_shift_mask());
            row.scatter_segments = Some(decoder.scatter_segments());
            rows.push(row);
        }
    }

    // Channel-routed rows: one representative preset scaled out to the
    // selected topology.
    let chan_config = DramConfig::preset(tbi_dram::DramStandard::Ddr4, 3200)
        .expect("DDR4-3200 preset exists")
        .with_topology(topology);
    let chan_label = format!(
        "{}@{}x{}",
        chan_config.label(),
        topology.channels,
        topology.ranks
    );
    eprintln!("  {chan_label} (channel-routed) ...");
    let chan_permutation =
        BitPermutation::for_scheme(chan_config.decode_scheme, &chan_config.geometry, topology)
            .expect("channel permutation exists for pow2 topologies");
    for kind in [
        MappingKind::RowMajor,
        MappingKind::Optimized,
        MappingKind::Permutation(chan_permutation),
    ] {
        let scheme = format!("channel-routed:{}", kind.name());
        let mapping = ChannelMapping::new(kind, &chan_config, n).expect("channel mapping builds");
        rows.push(measure(
            &chan_label,
            &scheme,
            &coords,
            |coords, out| {
                out.reserve(coords.len());
                for &(i, j) in coords {
                    let (channel, address) = mapping.route(i, j);
                    out.push(channel, address);
                }
            },
            |coords, out| mapping.route_batch(coords, out),
        ));
    }

    let all_identical = rows.iter().all(|row| row.identical);
    for row in rows.iter().filter(|row| !row.identical) {
        eprintln!(
            "BATCH DIVERGENCE: {} / {} — batched addresses differ from scalar",
            row.config, row.scheme
        );
    }
    let min_gather_speedup = rows
        .iter()
        .filter(|row| row.scheme == "permutation-gather")
        .map(|row| row.speedup)
        .fold(f64::INFINITY, f64::min);

    println!(
        "mapping kernels ({} rows, {} positions each):",
        rows.len(),
        coords.len()
    );
    for row in &rows {
        println!(
            "  {:<14} {:<28} scalar {:>7.1} M/s  batch {:>7.1} M/s  {:>5.2}x{}",
            row.config,
            row.scheme,
            row.scalar_addresses_per_s / 1e6,
            row.batch_addresses_per_s / 1e6,
            row.speedup,
            if row.identical { "" } else { "  DIVERGED" },
        );
    }
    println!("  min permutation-gather speedup : {min_gather_speedup:.2}x");
    println!("  batches bit-identical          : {all_identical}");

    let rows_json: Vec<String> = rows
        .iter()
        .map(|row| format!("    {}", row.to_json()))
        .collect();
    let json = format!(
        "{{\n  \"bench\": {},\n  \"bursts\": {},\n  \"positions\": {},\n  \"dimension\": {},\n  \
         \"channel_topology\": {},\n  \"min_permutation_gather_speedup\": {},\n  \
         \"all_identical\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_string("mapgen_speed"),
        options.bursts,
        coords.len(),
        n,
        json_string(&format!("{}x{}", topology.channels, topology.ranks)),
        json_number(min_gather_speedup),
        all_identical,
        rows_json.join(",\n"),
    );
    if let Err(error) = std::fs::write(&output, json) {
        eprintln!("error: cannot write {}: {error}", output.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", output.display());

    if !all_identical {
        std::process::exit(1);
    }
}
