//! Regenerates **Table I** of the paper: DRAM bandwidth utilization of the
//! row-major and the optimized mapping, write and read phase, for all ten
//! DRAM configurations.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin table1 [-- --full | --bursts <n> | --no-refresh |
//!                                                  --workers <n> | --json <p> | --csv <p>]
//! ```
//!
//! The sweep is declared as a [`tbi_exp::SweepGrid`] (all presets × the
//! Table I mapping pair) and executed in parallel; `--json`/`--csv` emit the
//! records as machine-readable artifacts.

use tbi_bench::{format_table1_row, run_table1, HarnessOptions};

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", HarnessOptions::usage("table1"));
            std::process::exit(2);
        }
    };
    if options.help {
        println!("{}", HarnessOptions::usage("table1"));
        return;
    }

    let records = match run_table1(&options) {
        Ok(records) => records,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };

    println!("Table I: DRAM bandwidth utilizations");
    println!(
        "(triangular block interleaver, {} bursts{})",
        options.bursts,
        if options.no_refresh {
            ", refresh disabled"
        } else {
            ""
        }
    );
    println!();
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10}",
        "DRAM", "RowMaj Wr", "RowMaj Rd", "Optim Wr", "Optim Rd"
    );
    println!("{}", "-".repeat(62));

    for pair in records.chunks(2) {
        let [row_major, optimized] = pair else {
            unreachable!("run_table1 returns records in pairs");
        };
        println!(
            "{}",
            format_table1_row(&row_major.dram_label, row_major, optimized)
        );
    }

    println!();
    println!("Minimum (throughput-limiting) utilization per configuration:");
    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "DRAM", "Row-Major", "Optimized", "Speedup"
    );
    println!("{}", "-".repeat(48));
    for pair in records.chunks(2) {
        let [row_major, optimized] = pair else {
            unreachable!("run_table1 returns records in pairs");
        };
        println!(
            "{:<14} {:>8.2} % {:>8.2} % {:>7.2}x",
            row_major.dram_label,
            row_major.min_utilization * 100.0,
            optimized.min_utilization * 100.0,
            optimized.speedup_over(row_major)
        );
    }

    if let Err(error) = options.write_outputs(&records) {
        eprintln!("error: {error}");
        std::process::exit(1);
    }
}
