//! Regenerates **Table I** of the paper: DRAM bandwidth utilization of the
//! row-major and the optimized mapping, write and read phase, for all ten
//! DRAM configurations.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin table1 [-- --full | --bursts <n> | --no-refresh]
//! ```

use tbi_bench::{format_table1_row, run_table1, HarnessOptions};

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: table1 [--full] [--bursts <n>] [--no-refresh]");
            std::process::exit(2);
        }
    };

    println!("Table I: DRAM bandwidth utilizations");
    println!(
        "(triangular block interleaver, {} bursts{})",
        options.bursts,
        if options.no_refresh {
            ", refresh disabled"
        } else {
            ""
        }
    );
    println!();
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10}",
        "DRAM", "RowMaj Wr", "RowMaj Rd", "Optim Wr", "Optim Rd"
    );
    println!("{}", "-".repeat(62));

    let mut improvements = Vec::new();
    for (label, row_major, optimized) in run_table1(&options) {
        println!("{}", format_table1_row(&label, &row_major, &optimized));
        improvements.push((
            label,
            row_major.min_utilization(),
            optimized.min_utilization(),
        ));
    }

    println!();
    println!("Minimum (throughput-limiting) utilization per configuration:");
    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "DRAM", "Row-Major", "Optimized", "Speedup"
    );
    println!("{}", "-".repeat(48));
    for (label, base, opt) in improvements {
        println!(
            "{label:<14} {:>8.2} % {:>8.2} % {:>7.2}x",
            base * 100.0,
            opt * 100.0,
            opt / base.max(1e-9)
        );
    }
}
