//! End-to-end optical downlink campaign: interleaver depth × code rate ×
//! mapping × device preset under a time-varying clear-sky LEO pass, reduced
//! to one post-FEC BER vs aggregate-bandwidth frontier per preset
//! (`BENCH_campaign.json`).
//!
//! ```text
//! cargo run --release -p tbi_bench --bin campaign_sweep [-- --full | --bursts <n> |
//!                                                          --workers <n> | --json <p>]
//! ```
//!
//! The committed `BENCH_campaign.json` pins the campaign's two headline
//! claims: at every code rate, increasing the interleaver depth strictly
//! reduces the post-FEC BER (the interleaving-gain waterfall), and the
//! mapping choice shifts the achievable aggregate bandwidth on every
//! preset.  The link simulations are independent of the DRAM burst count,
//! so the committed error rates reproduce exactly at any `--bursts`.

use std::path::PathBuf;

use tbi_bench::{
    build_campaign, HarnessOptions, CAMPAIGN_PEAK_ELEVATION_DEG, CAMPAIGN_PRESETS, CAMPAIGN_WEATHER,
};
use tbi_dram::TimingEngine;
use tbi_exp::campaign::{DEFAULT_CAMPAIGN_SEED, DEFAULT_CODE_RATES, DEFAULT_DEPTHS};
use tbi_exp::serialize::{json_number, json_string, records_to_json};

const DEFAULT_OUTPUT: &str = "BENCH_campaign.json";

/// Independent link trials per cell: smooths the error-rate estimates so
/// the depth waterfall is strict at every code rate.
const CAMPAIGN_TRIALS: u32 = 8;

fn usage() -> String {
    HarnessOptions::usage_for(
        "campaign_sweep",
        &["--full", "--bursts", "--workers", "--json"],
    )
}

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if options.help {
        println!("{}", usage());
        return;
    }
    if options.no_refresh
        || options.csv.is_some()
        || options.engine != TimingEngine::default()
        || options.channels != 1
        || options.ranks != 1
    {
        eprintln!(
            "error: campaign_sweep owns its axes (presets keep their baked topologies, the \
             event engine and default refresh are fixed); \
             --channels/--ranks/--engine/--no-refresh/--csv are not supported"
        );
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    let output = options
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_OUTPUT));

    let campaign = match build_campaign(
        options.bursts,
        options.workers,
        DEFAULT_CAMPAIGN_SEED,
        CAMPAIGN_TRIALS,
    ) {
        Ok(campaign) => campaign,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "campaign_sweep: {} cells at {} bursts each ({} presets, depths {DEFAULT_DEPTHS:?}, \
         pass peak {CAMPAIGN_PEAK_ELEVATION_DEG} deg in {CAMPAIGN_WEATHER})",
        campaign.scenarios().len(),
        options.bursts,
        CAMPAIGN_PRESETS.len(),
    );
    let report = match campaign.run() {
        Ok(report) => report,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };

    println!(
        "{:<16} {:>12} {:>6} {:>7} {:>12} {:>14}",
        "config", "mapping", "depth", "rate", "post-FEC BER", "goodput"
    );
    for frontier in &report.frontiers {
        for point in &frontier.points {
            println!(
                "{:<16} {:>12} {:>6} {:>7.3} {:>12.3e} {:>9.2} Gb/s",
                frontier.dram_label,
                point.mapping,
                point.interleaver_depth,
                point.code_rate,
                point.post_fec_ber,
                point.goodput_gbps,
            );
        }
    }
    let monotone = report.ber_strictly_decreases_with_depth(&DEFAULT_CODE_RATES);
    let mut min_shift = f64::INFINITY;
    let mut max_aggregate: f64 = 0.0;
    for frontier in &report.frontiers {
        min_shift = min_shift.min(report.mapping_bandwidth_shift(&frontier.dram_label));
        for record in report
            .records
            .iter()
            .filter(|r| r.dram_label == frontier.dram_label)
        {
            max_aggregate = max_aggregate.max(record.aggregate_gbps);
        }
    }
    let all_frontiers_nonempty = report.frontiers.iter().all(|f| !f.points.is_empty());
    println!("BER strictly decreases with depth at every rate: {monotone}");
    println!(
        "minimum mapping bandwidth shift across presets: {:.3}x",
        1.0 + min_shift
    );
    for (k, n) in DEFAULT_CODE_RATES {
        let curve: Vec<String> = report
            .ber_by_depth(k, n)
            .iter()
            .map(|(depth, ber)| format!("d{depth}={ber:.3e}"))
            .collect();
        println!("rate {k}/{n}: {}", curve.join(" -> "));
    }

    let curve_json: Vec<String> = DEFAULT_CODE_RATES
        .iter()
        .map(|&(k, n)| {
            let points: Vec<String> = report
                .ber_by_depth(k, n)
                .iter()
                .map(|&(depth, ber)| format!("[{depth},{}]", json_number(ber)))
                .collect();
            format!("{{\"k\":{k},\"n\":{n},\"curve\":[{}]}}", points.join(","))
        })
        .collect();
    let frontier_json: Vec<String> = report
        .frontiers
        .iter()
        .map(|frontier| {
            let dominant = report
                .dominant_mapping(&frontier.dram_label)
                .expect("every campaign preset has cells");
            let points: Vec<String> = frontier
                .points
                .iter()
                .map(|point| {
                    format!(
                        "{{\"mapping\":{},\"interleaver_depth\":{},\"code_rate\":{},\
                         \"post_fec_ber\":{},\"frame_error_rate\":{},\"aggregate_gbps\":{},\
                         \"goodput_gbps\":{}}}",
                        json_string(&point.mapping),
                        point.interleaver_depth,
                        json_number(point.code_rate),
                        json_number(point.post_fec_ber),
                        json_number(point.frame_error_rate),
                        json_number(point.aggregate_gbps),
                        json_number(point.goodput_gbps),
                    )
                })
                .collect();
            format!(
                "{{\"dram\":{},\"dominant_mapping\":{},\"points\":[\n      {}\n    ]}}",
                json_string(&frontier.dram_label),
                json_string(&dominant),
                points.join(",\n      "),
            )
        })
        .collect();
    let rates_json: Vec<String> = DEFAULT_CODE_RATES
        .iter()
        .map(|(k, n)| format!("[{k},{n}]"))
        .collect();
    let depths_json: Vec<String> = DEFAULT_DEPTHS.iter().map(|d| format!("{d}")).collect();
    let json = format!(
        "{{\n  \"bench\": {},\n  \"bursts\": {},\n  \"trials\": {},\n  \"seed\": {},\n  \
         \"peak_elevation_deg\": {},\n  \"weather\": {},\n  \"depths\": [{}],\n  \
         \"code_rates\": [{}],\n  \"scenarios\": {},\n  \
         \"ber_strictly_decreases_with_depth\": {},\n  \"all_frontiers_nonempty\": {},\n  \
         \"min_mapping_bandwidth_shift\": {},\n  \"max_aggregate_gbps\": {},\n  \
         \"ber_curves\": [\n    {}\n  ],\n  \"frontiers\": [\n    {}\n  ],\n  \"records\": {}}}\n",
        json_string("campaign_sweep"),
        options.bursts,
        CAMPAIGN_TRIALS,
        DEFAULT_CAMPAIGN_SEED,
        json_number(CAMPAIGN_PEAK_ELEVATION_DEG),
        json_string(CAMPAIGN_WEATHER.name()),
        depths_json.join(","),
        rates_json.join(","),
        report.records.len(),
        monotone,
        all_frontiers_nonempty,
        json_number(min_shift),
        json_number(max_aggregate),
        curve_json.join(",\n    "),
        frontier_json.join(",\n    "),
        records_to_json(&report.records),
    );
    if let Err(error) = std::fs::write(&output, json) {
        eprintln!("error: cannot write {}: {error}", output.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", output.display());
}
