//! Measures the wall-clock speed of the event-driven timing engine against
//! the cycle-accurate reference on the **full Table I sweep** (all ten DRAM
//! presets × the row-major/optimized mapping pair), verifies that both
//! engines produce bit-identical records, and emits a script-friendly
//! `BENCH_engine.json` so the workspace's performance trajectory accumulates
//! run over run.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin engine_speed [-- --full | --bursts <n> |
//!                                                        --workers <n> | --json <p>]
//! ```
//!
//! `--json` overrides the output path (default `BENCH_engine.json` in the
//! current directory).

use std::path::PathBuf;
use std::time::Instant;

use tbi_bench::{run_table1, HarnessOptions};
use tbi_dram::TimingEngine;
use tbi_exp::serialize::{json_number, json_string};
use tbi_exp::Record;

const DEFAULT_OUTPUT: &str = "BENCH_engine.json";

fn timed_sweep(base: &HarnessOptions, engine: TimingEngine) -> (Vec<Record>, f64) {
    let options = HarnessOptions {
        engine,
        json: None,
        csv: None,
        ..base.clone()
    };
    let started = Instant::now();
    let records = match run_table1(&options) {
        Ok(records) => records,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };
    (records, started.elapsed().as_secs_f64())
}

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "{}",
                HarnessOptions::usage_for(
                    "engine_speed",
                    &[
                        "--full",
                        "--bursts",
                        "--channels",
                        "--ranks",
                        "--workers",
                        "--json"
                    ]
                )
            );
            std::process::exit(2);
        }
    };
    if options.help {
        println!(
            "{}",
            HarnessOptions::usage_for(
                "engine_speed",
                &[
                    "--full",
                    "--bursts",
                    "--channels",
                    "--ranks",
                    "--workers",
                    "--json"
                ]
            )
        );
        return;
    }
    if options.no_refresh || options.csv.is_some() || options.engine != TimingEngine::default() {
        eprintln!(
            "error: engine_speed always times both engines on the default-refresh sweep; \
             --engine/--no-refresh/--csv are not supported"
        );
        eprintln!(
            "{}",
            HarnessOptions::usage_for(
                "engine_speed",
                &[
                    "--full",
                    "--bursts",
                    "--channels",
                    "--ranks",
                    "--workers",
                    "--json"
                ]
            )
        );
        std::process::exit(2);
    }

    let output = options
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_OUTPUT));

    eprintln!(
        "engine_speed: full Table I sweep at {} bursts per scenario",
        options.bursts
    );
    eprintln!("running cycle-accurate reference engine ...");
    let (cycle_records, cycle_wall_s) = timed_sweep(&options, TimingEngine::Cycle);
    eprintln!("  cycle engine: {cycle_wall_s:.3} s");
    eprintln!("running event-driven engine ...");
    let (event_records, event_wall_s) = timed_sweep(&options, TimingEngine::Event);
    eprintln!("  event engine: {event_wall_s:.3} s");

    // `Record`'s PartialEq deliberately ignores the wall-clock fields, so
    // this compares exactly the deterministic simulation outputs.
    let identical = cycle_records == event_records;
    if !identical {
        for (c, e) in cycle_records.iter().zip(&event_records) {
            if c != e {
                eprintln!(
                    "RECORD DIVERGENCE in {}:\n  cycle: {c:?}\n  event: {e:?}",
                    c.scenario_id
                );
            }
        }
    }

    let simulated_cycles: u64 = event_records.iter().map(|r| r.simulated_cycles).sum();
    let speedup = if event_wall_s > 0.0 {
        cycle_wall_s / event_wall_s
    } else {
        f64::INFINITY
    };

    println!(
        "Table I sweep ({} scenarios, {} bursts each):",
        event_records.len(),
        options.bursts
    );
    println!("  simulated cycles (total) : {simulated_cycles}");
    println!("  cycle engine wall time   : {cycle_wall_s:.3} s");
    println!("  event engine wall time   : {event_wall_s:.3} s");
    println!("  speedup (cycle / event)  : {speedup:.2}x");
    println!("  records bit-identical    : {identical}");

    let json = format!(
        "{{\n  \"bench\": {},\n  \"bursts\": {},\n  \"scenarios\": {},\n  \"workers\": {},\n  \
         \"simulated_cycles_total\": {},\n  \"cycle_wall_s\": {},\n  \"event_wall_s\": {},\n  \
         \"speedup\": {},\n  \"cycle_sim_cycles_per_second\": {},\n  \
         \"event_sim_cycles_per_second\": {},\n  \"records_identical\": {}\n}}\n",
        json_string("engine_speed"),
        options.bursts,
        event_records.len(),
        options.workers,
        simulated_cycles,
        json_number(cycle_wall_s),
        json_number(event_wall_s),
        json_number(speedup),
        json_number(simulated_cycles as f64 / cycle_wall_s.max(f64::MIN_POSITIVE)),
        json_number(simulated_cycles as f64 / event_wall_s.max(f64::MIN_POSITIVE)),
        identical,
    );
    if let Err(error) = std::fs::write(&output, json) {
        eprintln!("error: cannot write {}: {error}", output.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", output.display());

    if !identical {
        std::process::exit(1);
    }
}
