//! Reproduces the paper's in-text claim that results for other interleaver
//! dimensions "differ only slightly": sweeps the interleaver size and prints
//! the minimum-phase utilization of both Table I mappings.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin size_sweep [-- --no-refresh]
//! ```

use tbi_bench::HarnessOptions;
use tbi_dram::{DramConfig, DramStandard};
use tbi_interleaver::{InterleaverSpec, MappingKind, ThroughputEvaluator};

const SIZES: &[u64] = &[100_000, 400_000, 1_600_000, 6_400_000];

fn main() {
    let mut options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: size_sweep [--no-refresh]");
            std::process::exit(2);
        }
    };

    // The sweep focuses on the most bandwidth-sensitive configurations.
    let configs = [
        (DramStandard::Ddr4, 3200),
        (DramStandard::Lpddr4, 4266),
        (DramStandard::Lpddr5, 8533),
    ];

    println!("Interleaver-size sweep: minimum-phase utilization");
    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "DRAM", "bursts", "row-major", "optimized"
    );
    println!("{}", "-".repeat(54));
    for (standard, rate) in configs {
        let dram = DramConfig::preset(standard, rate).expect("preset exists");
        for &size in SIZES {
            options.bursts = size;
            let evaluator = ThroughputEvaluator::with_controller(
                dram.clone(),
                InterleaverSpec::from_burst_count(size),
                options.controller(),
            );
            let row_major = evaluator
                .evaluate(MappingKind::RowMajor)
                .expect("row-major evaluation");
            let optimized = evaluator
                .evaluate(MappingKind::Optimized)
                .expect("optimized evaluation");
            println!(
                "{:<14} {:>12} {:>10.2} % {:>10.2} %",
                dram.label(),
                size,
                row_major.min_utilization() * 100.0,
                optimized.min_utilization() * 100.0
            );
        }
    }
}
