//! Reproduces the paper's in-text claim that results for other interleaver
//! dimensions "differ only slightly": sweeps the interleaver size and prints
//! the minimum-phase utilization of both Table I mappings.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin size_sweep [-- --no-refresh | --workers <n> |
//!                                                      --json <p> | --csv <p>]
//! ```
//!
//! Declared as one three-axis [`tbi_exp::SweepGrid`]: the bandwidth-sensitive
//! presets × four interleaver sizes × the Table I mapping pair.

use tbi_dram::DramStandard;
use tbi_exp::SweepGrid;
use tbi_interleaver::MappingKind;

use tbi_bench::HarnessOptions;

const SIZES: [u64; 4] = [100_000, 400_000, 1_600_000, 6_400_000];

const SUPPORTED_FLAGS: [&str; 4] = ["--no-refresh", "--workers", "--json", "--csv"];

fn main() {
    let options = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "{}",
                HarnessOptions::usage_for("size_sweep", &SUPPORTED_FLAGS)
            );
            std::process::exit(2);
        }
    };
    if options.help {
        println!(
            "{}",
            HarnessOptions::usage_for("size_sweep", &SUPPORTED_FLAGS)
        );
        return;
    }
    if options.bursts != tbi_bench::DEFAULT_BURSTS || options.channels != 1 || options.ranks != 1 {
        eprintln!(
            "error: size_sweep sweeps a fixed list of interleaver sizes on the \
             single-channel device; --full/--bursts/--channels/--ranks are not supported"
        );
        eprintln!(
            "{}",
            HarnessOptions::usage_for("size_sweep", &SUPPORTED_FLAGS)
        );
        std::process::exit(2);
    }

    // The sweep focuses on the most bandwidth-sensitive configurations.
    let configs = [
        (DramStandard::Ddr4, 3200),
        (DramStandard::Lpddr4, 4266),
        (DramStandard::Lpddr5, 8533),
    ];
    let mut grid = SweepGrid::new()
        .sizes(SIZES)
        .mappings(MappingKind::TABLE1)
        .refresh(options.refresh_setting());
    for (standard, rate) in configs {
        grid = match grid.preset(standard, rate) {
            Ok(grid) => grid,
            Err(error) => {
                eprintln!("error: {error}");
                std::process::exit(1);
            }
        };
    }

    let records = match options.run_grid(grid) {
        Ok(records) => records,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };

    println!("Interleaver-size sweep: minimum-phase utilization");
    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "DRAM", "bursts", "row-major", "optimized"
    );
    println!("{}", "-".repeat(54));
    // Grid nesting is DRAM → size → mapping, so the pair for one
    // (configuration, size) cell is adjacent.
    for pair in records.chunks(2) {
        let [row_major, optimized] = pair else {
            unreachable!("TABLE1 sweeps produce records in pairs");
        };
        println!(
            "{:<14} {:>12} {:>10.2} % {:>10.2} %",
            row_major.dram_label,
            row_major.bursts,
            row_major.min_utilization * 100.0,
            optimized.min_utilization * 100.0
        );
    }

    if let Err(error) = options.write_outputs(&records) {
        eprintln!("error: {error}");
        std::process::exit(1);
    }
}
