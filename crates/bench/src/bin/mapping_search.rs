//! Address-mapping design-space exploration on the Table I presets.
//!
//! For every preset DRAM configuration, runs `tbi_exp`'s [`MappingSearch`]
//! — the seeded greedy bit-swap hill-climb, or with `--strategy portfolio`
//! the hybrid `(permutation, fold)` portfolio search (simulated annealing,
//! evolutionary restarts, diagonal-fold starts, optional surrogate
//! pre-screens and cross-preset `--transfer` seeds) — and compares the best
//! discovered mapping against the paper's hand-optimized scheme, emitting a
//! script-friendly `BENCH_dse.json`.
//!
//! ```text
//! cargo run --release -p tbi_bench --bin mapping_search -- \
//!     [--seed <n>] [--restarts <n>] [--budget <n>] [--neighbors <n>]
//!     [--strategy greedy|portfolio] [--surrogate <divisor>] [--promote <k>]
//!     [--sa-temp <micro>] [--transfer]
//!     [--full | --bursts <n>] [--no-refresh] [--workers <n>] [--json <p>] [--csv <p>]
//! ```
//!
//! The committed `BENCH_dse.json` pins the headline DSE claim: on every
//! Table I preset the portfolio search discovers a hybrid mapping whose
//! round-trip row-hit rate **strictly beats** the paper's optimized scheme
//! (`all_beat_optimized`; the tolerance-based
//! [`MATCH_TOLERANCE`] flag is kept alongside —
//! exact gains are embedded next to both), under the paper's in-text
//! no-refresh condition, and the run is bit-reproducible for a fixed
//! `--seed` at any worker count.

use std::path::PathBuf;

use tbi_bench::HarnessOptions;
use tbi_dram::standards::ALL_CONFIGS;
use tbi_dram::{BitPermutation, DramConfig, TimingEngine, XorFold};
use tbi_exp::search::{MappingSearch, SearchRecord, SearchSettings, MATCH_TOLERANCE};
use tbi_exp::serialize::{json_number, json_string, search_records_to_json, write_search_csv};
use tbi_interleaver::InterleaverSpec;

const DEFAULT_OUTPUT: &str = "BENCH_dse.json";

fn usage() -> String {
    let shared = HarnessOptions::usage_for(
        "mapping_search",
        &[
            "--full",
            "--bursts",
            "--no-refresh",
            "--workers",
            "--json",
            "--csv",
        ],
    );
    format!(
        "{shared}\n\nsearch options:\n  \
         --seed <n>       RNG seed; fixed seeds reproduce bit-identical searches (default 0)\n  \
         --restarts <n>   hill-climb starting points per preset (default 4)\n  \
         --budget <n>     full-size candidate evaluations per preset (default 400)\n  \
         --neighbors <n>  candidates per climb step (default 8)\n  \
         --strategy <s>   greedy | portfolio (default greedy)\n  \
         --surrogate <n>  portfolio: pre-screen at bursts/n; 0 disables (default 0)\n  \
         --promote <k>    portfolio: candidates promoted per surrogate batch (default 2)\n  \
         --sa-temp <n>    portfolio: initial annealing temperature in 1e-6 units (default 150)\n  \
         --transfer       portfolio: seed each preset with earlier presets' winners"
    )
}

/// Splits the search-specific flags off the command line, leaving the
/// shared harness flags for [`HarnessOptions::parse`].
fn parse_search_flags(
    args: Vec<String>,
    settings: &mut SearchSettings,
    transfer: &mut bool,
) -> Result<Vec<String>, String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            let value = iter
                .next()
                .ok_or_else(|| format!("{name} requires a value"))?;
            value
                .parse::<u64>()
                .map_err(|e| format!("invalid {name} value `{value}`: {e}"))
        };
        match arg.as_str() {
            "--seed" => settings.seed = numeric("--seed")?,
            "--restarts" => {
                settings.restarts = numeric("--restarts")?
                    .try_into()
                    .map_err(|_| "--restarts out of range".to_string())?;
                if settings.restarts == 0 {
                    return Err("--restarts must be at least 1".to_string());
                }
            }
            "--budget" => {
                settings.budget = numeric("--budget")?
                    .try_into()
                    .map_err(|_| "--budget out of range".to_string())?;
                if settings.budget == 0 {
                    return Err("--budget must be at least 1".to_string());
                }
            }
            "--neighbors" => {
                settings.neighbors = numeric("--neighbors")?
                    .try_into()
                    .map_err(|_| "--neighbors out of range".to_string())?;
                if settings.neighbors == 0 {
                    return Err("--neighbors must be at least 1".to_string());
                }
            }
            "--strategy" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--strategy requires a value".to_string())?;
                settings.strategy = value.parse()?;
            }
            "--surrogate" => {
                settings.surrogate_divisor = numeric("--surrogate")?
                    .try_into()
                    .map_err(|_| "--surrogate out of range".to_string())?;
            }
            "--promote" => {
                settings.promote = numeric("--promote")?
                    .try_into()
                    .map_err(|_| "--promote out of range".to_string())?;
                if settings.promote == 0 {
                    return Err("--promote must be at least 1".to_string());
                }
            }
            "--sa-temp" => {
                settings.sa_temp_micro = numeric("--sa-temp")?
                    .try_into()
                    .map_err(|_| "--sa-temp out of range".to_string())?;
            }
            "--transfer" => *transfer = true,
            _ => rest.push(arg),
        }
    }
    Ok(rest)
}

fn main() {
    let mut settings = SearchSettings {
        seed: 0,
        ..SearchSettings::default()
    };
    let mut transfer = false;
    let rest = match parse_search_flags(
        std::env::args().skip(1).collect(),
        &mut settings,
        &mut transfer,
    ) {
        Ok(rest) => rest,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    let options = match HarnessOptions::parse(rest) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if options.help {
        println!("{}", usage());
        return;
    }
    if options.channels != 1 || options.ranks != 1 || options.engine != TimingEngine::default() {
        eprintln!(
            "error: mapping_search explores the paper's single-channel, single-rank Table I \
             device on the default engine; --channels/--ranks/--engine are not supported"
        );
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    settings.workers = options.workers;
    let output = options
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_OUTPUT));
    let spec = InterleaverSpec::from_burst_count(options.bursts);

    eprintln!(
        "mapping_search: {} presets x {} evaluations at {} bursts \
         (seed {}, {} restarts, {} neighbors/step, {} strategy{})",
        ALL_CONFIGS.len(),
        settings.budget,
        options.bursts,
        settings.seed,
        settings.restarts,
        settings.neighbors,
        settings.strategy,
        if transfer { ", transfer on" } else { "" },
    );

    println!(
        "{:<14} {:>6} {:>6} {:>10} {:>10} {:>7} {:>10} {:>10}  fold",
        "config", "evals", "moves", "dse hit", "paper hit", "gain", "dse util", "paper util",
    );
    let mut records: Vec<SearchRecord> = Vec::with_capacity(ALL_CONFIGS.len());
    let mut seeds: Vec<(BitPermutation, XorFold)> = Vec::new();
    for (standard, rate) in ALL_CONFIGS {
        let dram = match DramConfig::preset(*standard, *rate) {
            Ok(dram) => dram,
            Err(error) => {
                eprintln!("error: {error}");
                std::process::exit(1);
            }
        };
        let mut search =
            MappingSearch::new(dram, spec, settings).with_controller(options.controller());
        if transfer {
            search = search.with_transfer_seeds(&seeds);
        }
        let record = match search.run() {
            Ok(record) => record,
            Err(error) => {
                eprintln!("error: {error}");
                std::process::exit(1);
            }
        };
        println!(
            "{:<14} {:>6} {:>6} {:>9.2} % {:>9.2} % {:>6.3}x {:>9.2} % {:>9.2} %  {}",
            record.dram_label,
            record.evaluations,
            record.accepted_moves,
            record.discovered_row_hit_rate() * 100.0,
            record.optimized_row_hit_rate() * 100.0,
            record.row_hit_gain(),
            record.best.min_utilization * 100.0,
            record.optimized.min_utilization * 100.0,
            if record.fold.is_empty() {
                "-"
            } else {
                &record.fold
            },
        );
        if transfer {
            // Carry this preset's winner forward; incompatible geometries
            // are filtered at the receiving search's start time.
            if let (Ok(permutation), Ok(fold)) = (
                record.permutation.parse::<BitPermutation>(),
                record.fold.parse::<XorFold>(),
            ) {
                if !seeds.contains(&(permutation, fold)) {
                    seeds.push((permutation, fold));
                }
            }
        }
        records.push(record);
    }

    let all_match = records.iter().all(SearchRecord::matches_or_beats_optimized);
    let all_beat = records.iter().all(SearchRecord::beats_optimized);
    let min_gain = records
        .iter()
        .map(SearchRecord::row_hit_gain)
        .fold(f64::INFINITY, f64::min);
    println!(
        "discovered mappings strictly beat the paper's optimized row-hit rate on {}/{} presets, \
         match-or-beat on {}/{} (min gain {min_gain:.6}x; matches = within \
         {MATCH_TOLERANCE:e} relative)",
        records.iter().filter(|r| r.beats_optimized()).count(),
        records.len(),
        records
            .iter()
            .filter(|r| r.matches_or_beats_optimized())
            .count(),
        records.len(),
    );

    let json = format!(
        "{{\n  \"bench\": {},\n  \"bursts\": {},\n  \"seed\": {},\n  \"restarts\": {},\n  \
         \"budget\": {},\n  \"neighbors\": {},\n  \"strategy\": {},\n  \
         \"surrogate_divisor\": {},\n  \"promote\": {},\n  \"sa_temp_micro\": {},\n  \
         \"transfer\": {},\n  \"presets\": {},\n  \
         \"refresh_disabled\": {},\n  \"match_tolerance\": {},\n  \
         \"all_match_or_beat_optimized\": {},\n  \"all_beat_optimized\": {},\n  \
         \"min_row_hit_gain\": {},\n  \
         \"search\": {}}}\n",
        json_string("mapping_search"),
        options.bursts,
        settings.seed,
        settings.restarts,
        settings.budget,
        settings.neighbors,
        json_string(&settings.strategy.to_string()),
        settings.surrogate_divisor,
        settings.promote,
        settings.sa_temp_micro,
        transfer,
        records.len(),
        options.no_refresh,
        json_number(MATCH_TOLERANCE),
        all_match,
        all_beat,
        json_number(min_gain),
        search_records_to_json(&records),
    );
    if let Err(error) = std::fs::write(&output, json) {
        eprintln!("error: cannot write {}: {error}", output.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", output.display());
    if let Some(path) = &options.csv {
        if let Err(error) = write_search_csv(path, &records) {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}
