//! Performance-trajectory gate: compares a freshly measured benchmark
//! artifact against the committed `BENCH_*.json` baseline with per-metric
//! tolerances.
//!
//! The committed artifacts record the performance wins of past PRs (engine
//! speedup, channel scaling, mapping-search gains, tenant QoS separation).
//! The `perf_gate` binary re-runs a scaled-down version of each workload and
//! calls [`evaluate`] to check that no metric has regressed beyond its
//! tolerance; CI fails on any `FAIL` line.  The pass/fail logic lives here —
//! in the library, not the binary — so the regression and tolerance-boundary
//! fixtures can pin it byte-for-byte (see `tests/perf_gate_golden.rs`).

use tbi_exp::json::JsonValue;

/// How one metric of the current run is judged against the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckKind {
    /// The current value must be at least `tolerance × committed` (e.g.
    /// `MinRatio(0.5)`: a scaled-down re-run may lose up to half the
    /// committed metric before the gate fails).  Committed values ≤ 0 fail
    /// the check outright — a non-positive baseline means the committed
    /// artifact itself is broken.
    MinRatio(f64),
    /// The current value must be the boolean `true` (identity/correctness
    /// flags like `records_identical` or `all_identical`, which must hold at
    /// any scale).
    MustBeTrue,
    /// The current value must be at least this absolute floor, independent
    /// of the committed value.
    AbsFloor(f64),
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckKind::MinRatio(tolerance) => write!(f, ">= {tolerance} x committed"),
            CheckKind::MustBeTrue => write!(f, "must be true"),
            CheckKind::AbsFloor(floor) => write!(f, ">= {floor}"),
        }
    }
}

/// One metric to gate: the top-level JSON key and how to judge it.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Top-level key of the artifact object holding the metric.
    pub metric: String,
    /// Pass criterion.
    pub kind: CheckKind,
}

impl Check {
    /// Convenience constructor.
    #[must_use]
    pub fn new(metric: impl Into<String>, kind: CheckKind) -> Self {
        Self {
            metric: metric.into(),
            kind,
        }
    }
}

/// Outcome of one [`Check`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// The gated metric key.
    pub metric: String,
    /// The criterion that was applied.
    pub kind: CheckKind,
    /// Whether the metric passed.
    pub passed: bool,
    /// Human-readable evidence (values involved, or the missing key).
    pub detail: String,
}

/// Outcome of gating one benchmark artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// The artifact's `bench` tag (e.g. `engine_speed`).
    pub bench: String,
    /// Per-check outcomes, in check order.
    pub results: Vec<CheckResult>,
}

impl GateReport {
    /// Whether every check passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }

    /// Renders the report as one `PASS`/`FAIL` line per check plus a final
    /// verdict line.  The output is deterministic for fixed inputs (floats
    /// print via `Display`, the shortest round-trip form), so golden tests
    /// can pin it byte-for-byte.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for result in &self.results {
            let status = if result.passed { "PASS" } else { "FAIL" };
            out.push_str(&format!(
                "{status} {}/{} ({}): {}\n",
                self.bench, result.metric, result.kind, result.detail
            ));
        }
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        out.push_str(&format!("{verdict} {}\n", self.bench));
        out
    }
}

/// Extracts a finite f64 from a top-level key.
fn number(doc: &JsonValue, key: &str) -> Result<f64, String> {
    match doc.get(key) {
        None => Err(format!("missing key `{key}`")),
        Some(value) => match value.as_f64() {
            Some(n) if n.is_finite() => Ok(n),
            Some(n) => Err(format!("`{key}` is not finite ({n})")),
            None => Err(format!("`{key}` is not a number")),
        },
    }
}

/// Judges every check of `checks` for the `bench` artifact, comparing the
/// freshly measured `current` document against the `committed` baseline.
///
/// A key missing from either document — or holding the wrong type — fails
/// its check rather than being skipped: a silently missing metric is
/// indistinguishable from a regression.
#[must_use]
pub fn evaluate(
    bench: &str,
    current: &JsonValue,
    committed: &JsonValue,
    checks: &[Check],
) -> GateReport {
    let results = checks
        .iter()
        .map(|check| {
            let (passed, detail) = match check.kind {
                CheckKind::MustBeTrue => match current.get(&check.metric) {
                    Some(JsonValue::Bool(true)) => (true, "true".to_string()),
                    Some(JsonValue::Bool(false)) => (false, "false".to_string()),
                    Some(_) => (false, format!("`{}` is not a boolean", check.metric)),
                    None => (false, format!("missing key `{}`", check.metric)),
                },
                CheckKind::AbsFloor(floor) => match number(current, &check.metric) {
                    Ok(value) => (value >= floor, format!("current {value}, floor {floor}")),
                    Err(message) => (false, message),
                },
                CheckKind::MinRatio(tolerance) => {
                    match (
                        number(current, &check.metric),
                        number(committed, &check.metric),
                    ) {
                        (Ok(value), Ok(baseline)) => {
                            if baseline <= 0.0 {
                                (
                                    false,
                                    format!("committed baseline {baseline} is not positive"),
                                )
                            } else {
                                (
                                    value >= baseline * tolerance,
                                    format!(
                                        "current {value}, committed {baseline}, \
                                         required {}",
                                        baseline * tolerance
                                    ),
                                )
                            }
                        }
                        (Err(message), _) => (false, format!("current: {message}")),
                        (_, Err(message)) => (false, format!("committed: {message}")),
                    }
                }
            };
            CheckResult {
                metric: check.metric.clone(),
                kind: check.kind,
                passed,
                detail,
            }
        })
        .collect();
    GateReport {
        bench: bench.to_string(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbi_exp::json::parse;

    fn doc(text: &str) -> JsonValue {
        parse(text).unwrap()
    }

    #[test]
    fn min_ratio_passes_at_and_above_the_boundary() {
        let committed = doc(r#"{"speedup": 10.0}"#);
        for (current_value, expect) in [(5.0, true), (4.999, false), (10.0, true)] {
            let current = doc(&format!(r#"{{"speedup": {current_value}}}"#));
            let report = evaluate(
                "engine_speed",
                &current,
                &committed,
                &[Check::new("speedup", CheckKind::MinRatio(0.5))],
            );
            assert_eq!(report.passed(), expect, "current {current_value}");
        }
    }

    #[test]
    fn must_be_true_rejects_false_and_non_booleans() {
        let committed = doc(r#"{}"#);
        for (text, expect) in [
            (r#"{"ok": true}"#, true),
            (r#"{"ok": false}"#, false),
            (r#"{"ok": 1}"#, false),
            (r#"{}"#, false),
        ] {
            let report = evaluate(
                "b",
                &doc(text),
                &committed,
                &[Check::new("ok", CheckKind::MustBeTrue)],
            );
            assert_eq!(report.passed(), expect, "doc {text}");
        }
    }

    #[test]
    fn abs_floor_ignores_the_committed_value() {
        let report = evaluate(
            "b",
            &doc(r#"{"x": 1.5}"#),
            &doc(r#"{"x": 100.0}"#),
            &[Check::new("x", CheckKind::AbsFloor(1.0))],
        );
        assert!(report.passed());
    }

    #[test]
    fn missing_keys_fail_instead_of_skipping() {
        let report = evaluate(
            "b",
            &doc(r#"{}"#),
            &doc(r#"{"x": 1.0}"#),
            &[Check::new("x", CheckKind::MinRatio(0.5))],
        );
        assert!(!report.passed());
        assert!(report.results[0].detail.contains("missing key `x`"));
        let report = evaluate(
            "b",
            &doc(r#"{"x": 1.0}"#),
            &doc(r#"{}"#),
            &[Check::new("x", CheckKind::MinRatio(0.5))],
        );
        assert!(!report.passed());
        assert!(report.results[0].detail.starts_with("committed:"));
    }

    #[test]
    fn non_positive_baseline_fails_min_ratio() {
        let report = evaluate(
            "b",
            &doc(r#"{"x": 1.0}"#),
            &doc(r#"{"x": 0.0}"#),
            &[Check::new("x", CheckKind::MinRatio(0.5))],
        );
        assert!(!report.passed());
        assert!(report.results[0].detail.contains("not positive"));
    }

    #[test]
    fn render_emits_one_line_per_check_plus_verdict() {
        let report = evaluate(
            "engine_speed",
            &doc(r#"{"speedup": 8.0, "records_identical": true}"#),
            &doc(r#"{"speedup": 10.0}"#),
            &[
                Check::new("speedup", CheckKind::MinRatio(0.5)),
                Check::new("records_identical", CheckKind::MustBeTrue),
            ],
        );
        let text = report.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("PASS engine_speed/speedup"));
        assert!(lines[1].starts_with("PASS engine_speed/records_identical"));
        assert_eq!(lines[2], "PASS engine_speed");
        assert!(report.passed());
    }
}
