//! Shared helpers for the `tbi-bench` table/figure regeneration binaries and
//! Criterion benchmarks.

use tbi_dram::{ControllerConfig, DramConfig, RefreshMode};
use tbi_interleaver::{InterleaverSpec, MappingKind, ThroughputEvaluator, UtilizationReport};

/// Default interleaver size (in DRAM bursts) used by the harness binaries.
///
/// The paper uses 12.5 M elements; the default here is smaller so that the
/// full table regenerates in seconds.  Utilization converges quickly with
/// size (see the `size_sweep` binary), and `--full` switches to the paper's
/// exact size.
pub const DEFAULT_BURSTS: u64 = 1 << 20;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessOptions {
    /// Interleaver size in bursts.
    pub bursts: u64,
    /// Disable refresh (the paper's in-text experiment).
    pub no_refresh: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self {
            bursts: DEFAULT_BURSTS,
            no_refresh: false,
        }
    }
}

impl HarnessOptions {
    /// Parses options from command-line arguments.
    ///
    /// Supported flags: `--full` (12.5 M bursts as in the paper),
    /// `--bursts <n>`, `--no-refresh`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable error message for unknown flags or malformed
    /// numbers.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut options = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => options.bursts = 12_500_000,
                "--no-refresh" => options.no_refresh = true,
                "--bursts" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--bursts requires a value".to_string())?;
                    options.bursts = value
                        .parse()
                        .map_err(|e| format!("invalid burst count `{value}`: {e}"))?;
                    if options.bursts == 0 {
                        return Err("burst count must be non-zero".to_string());
                    }
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(options)
    }

    /// The controller configuration implied by the options.
    #[must_use]
    pub fn controller(&self) -> ControllerConfig {
        ControllerConfig {
            refresh_mode: self.no_refresh.then_some(RefreshMode::Disabled),
            ..ControllerConfig::default()
        }
    }

    /// Builds a [`ThroughputEvaluator`] for one DRAM configuration.
    #[must_use]
    pub fn evaluator(&self, dram: DramConfig) -> ThroughputEvaluator {
        ThroughputEvaluator::with_controller(
            dram,
            InterleaverSpec::from_burst_count(self.bursts),
            self.controller(),
        )
    }
}

/// Formats one Table-I-style row: configuration, write/read utilization for
/// the row-major and the optimized mapping.
#[must_use]
pub fn format_table1_row(
    label: &str,
    row_major: &UtilizationReport,
    optimized: &UtilizationReport,
) -> String {
    format!(
        "{label:<14} {:>8.2} % {:>8.2} % {:>10.2} % {:>8.2} %",
        row_major.write_utilization() * 100.0,
        row_major.read_utilization() * 100.0,
        optimized.write_utilization() * 100.0,
        optimized.read_utilization() * 100.0,
    )
}

/// Runs the Table I pair for every preset configuration and returns the
/// reports in the paper's row order.
///
/// # Panics
///
/// Panics if a preset cannot be evaluated (all presets are sized to fit).
#[must_use]
pub fn run_table1(options: &HarnessOptions) -> Vec<(String, UtilizationReport, UtilizationReport)> {
    tbi_dram::standards::ALL_CONFIGS
        .iter()
        .map(|(standard, rate)| {
            let dram = DramConfig::preset(*standard, *rate).expect("preset exists");
            let label = dram.label();
            let evaluator = options.evaluator(dram);
            let row_major = evaluator
                .evaluate(MappingKind::RowMajor)
                .expect("row-major evaluation");
            let optimized = evaluator
                .evaluate(MappingKind::Optimized)
                .expect("optimized evaluation");
            (label, row_major, optimized)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let options = HarnessOptions::parse(Vec::<String>::new()).unwrap();
        assert_eq!(options.bursts, DEFAULT_BURSTS);
        assert!(!options.no_refresh);
    }

    #[test]
    fn parse_flags() {
        let options =
            HarnessOptions::parse(["--no-refresh", "--bursts", "4096"].map(String::from)).unwrap();
        assert!(options.no_refresh);
        assert_eq!(options.bursts, 4096);
        let full = HarnessOptions::parse(["--full"].map(String::from)).unwrap();
        assert_eq!(full.bursts, 12_500_000);
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        assert!(HarnessOptions::parse(["--nope"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--bursts"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--bursts", "abc"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--bursts", "0"].map(String::from)).is_err());
    }

    #[test]
    fn controller_reflects_refresh_flag() {
        let mut options = HarnessOptions::default();
        assert_eq!(options.controller().refresh_mode, None);
        options.no_refresh = true;
        assert_eq!(
            options.controller().refresh_mode,
            Some(tbi_dram::RefreshMode::Disabled)
        );
    }

    #[test]
    fn format_row_contains_all_four_numbers() {
        let options = HarnessOptions {
            bursts: 5_000,
            no_refresh: true,
        };
        let dram = DramConfig::preset(tbi_dram::DramStandard::Ddr3, 800).unwrap();
        let evaluator = options.evaluator(dram);
        let a = evaluator.evaluate(MappingKind::RowMajor).unwrap();
        let b = evaluator.evaluate(MappingKind::Optimized).unwrap();
        let row = format_table1_row("DDR3-800", &a, &b);
        assert!(row.starts_with("DDR3-800"));
        assert_eq!(row.matches('%').count(), 4);
    }
}
