//! Shared helpers for the `tbi-bench` table/figure regeneration binaries and
//! Criterion benchmarks.
//!
//! The heavy lifting lives in [`tbi_exp`]: the binaries declare a
//! [`SweepGrid`], run it through an [`Experiment`](tbi_exp::Experiment) and
//! format/serialize the resulting [`Record`]s.  This crate only hosts the
//! common command-line surface ([`HarnessOptions`]) and the Table-I-style
//! text formatting.

pub mod gate;

use std::path::PathBuf;

use tbi_dram::{ControllerConfig, DramStandard, RefreshMode, TimingEngine};
use tbi_exp::{serialize, Campaign, CampaignConfig, ExpError, Record, RefreshSetting, SweepGrid};
use tbi_interleaver::MappingKind;
use tbi_satcom::{LinkProfile, Weather};

/// Default interleaver size (in DRAM bursts) used by the harness binaries.
///
/// The paper uses 12.5 M elements; the default here is smaller so that the
/// full table regenerates in seconds.  Utilization converges quickly with
/// size (see the `size_sweep` binary), and `--full` switches to the paper's
/// exact size.
pub const DEFAULT_BURSTS: u64 = 1 << 20;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HarnessOptions {
    /// Interleaver size in bursts.
    pub bursts: u64,
    /// Disable refresh (the paper's in-text experiment).
    pub no_refresh: bool,
    /// Worker threads for the experiment run (0 = automatic).
    pub workers: usize,
    /// Worker threads *inside* each scenario, driving the per-channel
    /// controllers (results are bit-identical for any value; default 1).
    pub threads: usize,
    /// Write the records as JSON to this path.
    pub json: Option<PathBuf>,
    /// Write the records as CSV to this path.
    pub csv: Option<PathBuf>,
    /// Timing engine advancing the DRAM clock (event-driven by default; the
    /// cycle-accurate engine remains selectable during the transition).
    pub engine: TimingEngine,
    /// Independent DRAM channels per configuration (1 = the paper's device).
    pub channels: u32,
    /// Ranks per channel (1 = the paper's device).
    pub ranks: u32,
    /// `--help`/`-h` was requested; the binary should print usage and exit.
    pub help: bool,
}

impl HarnessOptions {
    /// The defaults used when no flags are given.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bursts: DEFAULT_BURSTS,
            no_refresh: false,
            workers: 0,
            threads: 1,
            json: None,
            csv: None,
            engine: TimingEngine::default(),
            channels: 1,
            ranks: 1,
            help: false,
        }
    }

    /// Parses options from command-line arguments.
    ///
    /// Supported flags: `--full` (12.5 M bursts as in the paper),
    /// `--bursts <n>`, `--no-refresh`, `--workers <n>`, `--threads <n>`,
    /// `--json <path>`, `--csv <path>`, `--engine <cycle|event>`,
    /// `--channels <n>`, `--ranks <n>` and `--help`/`-h` (which sets
    /// [`HarnessOptions::help`] and stops parsing).
    ///
    /// # Errors
    ///
    /// Returns a human-readable error message for unknown flags, malformed
    /// or out-of-range numbers and missing flag values.  Parsing never
    /// panics.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut options = Self::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--help" | "-h" => {
                    options.help = true;
                    return Ok(options);
                }
                "--full" => options.bursts = 12_500_000,
                "--no-refresh" => options.no_refresh = true,
                "--bursts" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--bursts requires a value".to_string())?;
                    options.bursts = value
                        .parse()
                        .map_err(|e| format!("invalid burst count `{value}`: {e}"))?;
                    if options.bursts == 0 {
                        return Err("burst count must be non-zero".to_string());
                    }
                }
                "--workers" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--workers requires a value".to_string())?;
                    options.workers = value
                        .parse()
                        .map_err(|e| format!("invalid worker count `{value}`: {e}"))?;
                    if options.workers == 0 {
                        return Err(
                            "worker count must be at least 1 (omit --workers for all cores)"
                                .to_string(),
                        );
                    }
                }
                "--threads" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--threads requires a value".to_string())?;
                    options.threads = value
                        .parse()
                        .map_err(|e| format!("invalid thread count `{value}`: {e}"))?;
                    if options.threads == 0 {
                        return Err("thread count must be at least 1".to_string());
                    }
                }
                "--channels" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--channels requires a value".to_string())?;
                    options.channels = value
                        .parse()
                        .map_err(|e| format!("invalid channel count `{value}`: {e}"))?;
                    if options.channels == 0 || !options.channels.is_power_of_two() {
                        return Err(format!(
                            "channel count must be a non-zero power of two, got `{value}`"
                        ));
                    }
                }
                "--ranks" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--ranks requires a value".to_string())?;
                    options.ranks = value
                        .parse()
                        .map_err(|e| format!("invalid rank count `{value}`: {e}"))?;
                    if options.ranks == 0 || !options.ranks.is_power_of_two() {
                        return Err(format!(
                            "rank count must be a non-zero power of two, got `{value}`"
                        ));
                    }
                }
                "--json" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--json requires a path".to_string())?;
                    options.json = Some(PathBuf::from(value));
                }
                "--csv" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--csv requires a path".to_string())?;
                    options.csv = Some(PathBuf::from(value));
                }
                "--engine" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--engine requires `cycle` or `event`".to_string())?;
                    options.engine = match value.as_str() {
                        "cycle" => TimingEngine::Cycle,
                        "event" => TimingEngine::Event,
                        other => {
                            return Err(format!(
                                "invalid engine `{other}` (expected `cycle` or `event`)"
                            ))
                        }
                    };
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(options)
    }

    /// Usage text for a harness binary accepting the full shared flag set.
    #[must_use]
    pub fn usage(binary: &str) -> String {
        Self::usage_for(
            binary,
            &[
                "--full",
                "--bursts",
                "--no-refresh",
                "--engine",
                "--channels",
                "--ranks",
                "--workers",
                "--threads",
                "--json",
                "--csv",
            ],
        )
    }

    /// Usage text for a harness binary accepting only a subset of the shared
    /// flags (`flags` lists them by name, e.g. `"--workers"`); `--help` is
    /// always included.
    #[must_use]
    pub fn usage_for(binary: &str, flags: &[&str]) -> String {
        let known: [(&str, &str, String); 10] = [
            (
                "--full",
                "--full",
                "evaluate the paper's exact 12.5 M-burst interleaver".to_string(),
            ),
            (
                "--bursts",
                "--bursts <n>",
                format!("interleaver size in DRAM bursts (default {DEFAULT_BURSTS})"),
            ),
            (
                "--no-refresh",
                "--no-refresh",
                "disable DRAM refresh (the paper's in-text experiment)".to_string(),
            ),
            (
                "--engine",
                "--engine <e>",
                "timing engine: `event` (default) or `cycle` (reference)".to_string(),
            ),
            (
                "--channels",
                "--channels <n>",
                "independent DRAM channels per configuration (default 1)".to_string(),
            ),
            (
                "--ranks",
                "--ranks <n>",
                "ranks per channel (default 1)".to_string(),
            ),
            (
                "--workers",
                "--workers <n>",
                "worker threads for the sweep (default: all cores)".to_string(),
            ),
            (
                "--threads",
                "--threads <n>",
                "worker threads per scenario, driving its channels (default 1)".to_string(),
            ),
            (
                "--json",
                "--json <path>",
                "write the records as JSON to <path>".to_string(),
            ),
            (
                "--csv",
                "--csv <path>",
                "write the records as CSV to <path>".to_string(),
            ),
        ];
        let selected: Vec<_> = known
            .iter()
            .filter(|(name, _, _)| flags.contains(name))
            .collect();
        let mut out = format!("usage: {binary}");
        for (_, form, _) in &selected {
            out.push_str(&format!(" [{form}]"));
        }
        out.push_str(" [--help]\n\noptions:\n");
        for (_, form, help) in &selected {
            out.push_str(&format!("  {form:<16} {help}\n"));
        }
        out.push_str("  -h, --help       print this help");
        out
    }

    /// The controller configuration implied by the options.
    #[must_use]
    pub fn controller(&self) -> ControllerConfig {
        ControllerConfig {
            refresh_mode: self.no_refresh.then_some(RefreshMode::Disabled),
            engine: self.engine,
            ..ControllerConfig::default()
        }
    }

    /// The refresh-axis setting implied by `--no-refresh`.
    #[must_use]
    pub fn refresh_setting(&self) -> RefreshSetting {
        if self.no_refresh {
            RefreshSetting::Disabled
        } else {
            RefreshSetting::Standard
        }
    }

    /// Runs a grid through an [`Experiment`](tbi_exp::Experiment) with the
    /// configured worker count.
    ///
    /// # Errors
    ///
    /// Propagates [`ExpError`] from the first failing scenario.
    pub fn run_grid(&self, grid: SweepGrid) -> Result<Vec<Record>, ExpError> {
        let experiment = grid.threads(self.threads).into_experiment();
        let experiment = if self.workers == 0 {
            experiment.with_auto_workers()
        } else {
            experiment.with_workers(self.workers)
        };
        experiment.run()
    }

    /// Writes the requested JSON/CSV artifacts, reporting each written path
    /// on standard error.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Io`] if a file cannot be written.
    pub fn write_outputs(&self, records: &[Record]) -> Result<(), ExpError> {
        if let Some(path) = &self.json {
            serialize::write_json(path, records)?;
            eprintln!("wrote {} records to {}", records.len(), path.display());
        }
        if let Some(path) = &self.csv {
            serialize::write_csv(path, records)?;
            eprintln!("wrote {} records to {}", records.len(), path.display());
        }
        Ok(())
    }
}

/// Formats one Table-I-style row: configuration, write/read utilization for
/// the row-major and the optimized mapping records.
#[must_use]
pub fn format_table1_row(label: &str, row_major: &Record, optimized: &Record) -> String {
    format!(
        "{label:<14} {:>8.2} % {:>8.2} % {:>10.2} % {:>8.2} %",
        row_major.write_utilization * 100.0,
        row_major.read_utilization * 100.0,
        optimized.write_utilization * 100.0,
        optimized.read_utilization * 100.0,
    )
}

/// Runs the Table I pair for every preset configuration through a
/// [`SweepGrid`] and returns the records in the paper's row order:
/// `(row-major, optimized)` adjacent per configuration.
///
/// # Errors
///
/// Returns [`ExpError`] naming the failing scenario, e.g. when a custom
/// `--bursts` size does not fit one of the presets.
pub fn run_table1(options: &HarnessOptions) -> Result<Vec<Record>, ExpError> {
    let grid = SweepGrid::new()
        .all_presets()?
        .channel_count(options.channels)
        .rank_count(options.ranks)
        .size(options.bursts)
        .mappings(MappingKind::TABLE1)
        .refresh(options.refresh_setting())
        .controller(options.controller());
    options.run_grid(grid)
}

/// Device axis of the downlink campaign bench: the paper's DDR4 baseline
/// plus the three modern presets with their baked native topologies.
pub const CAMPAIGN_PRESETS: [(DramStandard, u32); 4] = [
    (DramStandard::Ddr4, 3200),
    (DramStandard::Hbm2, 2400),
    (DramStandard::Gddr6, 16000),
    (DramStandard::Ddr5Stacked, 6400),
];

/// Peak pass elevation of the campaign's link profile (degrees).  High
/// enough that the fade rate varies meaningfully over the pass, while the
/// low-elevation edges keep every depth's post-FEC BER nonzero.
pub const CAMPAIGN_PEAK_ELEVATION_DEG: f64 = 45.0;

/// Weather of the campaign's link profile.
pub const CAMPAIGN_WEATHER: Weather = Weather::Clear;

/// The campaign bench's shared pass profile: a clear-sky LEO pass whose
/// edge segments dominate the error budget.
#[must_use]
pub fn campaign_profile() -> LinkProfile {
    LinkProfile::leo_pass(CAMPAIGN_PEAK_ELEVATION_DEG, CAMPAIGN_WEATHER)
}

/// Builds the campaign gated by `perf_gate` and emitted by the
/// `campaign_sweep` binary: [`CAMPAIGN_PRESETS`] × the Table I mapping
/// pair × the default depth and code-rate axes under [`campaign_profile`].
/// The seed and trial count are parameters so the gate can replay the
/// committed artifact's exact link simulations.
///
/// # Errors
///
/// Returns [`ExpError::Dram`] if a campaign preset is unknown (which would
/// mean the preset tables and this list drifted apart).
pub fn build_campaign(
    bursts: u64,
    workers: usize,
    seed: u64,
    trials: u32,
) -> Result<Campaign, ExpError> {
    let mut config = CampaignConfig::new(campaign_profile())
        .size(bursts)
        .workers(workers)
        .seed(seed)
        .trials(trials);
    for (standard, rate) in CAMPAIGN_PRESETS {
        config = config.preset(standard, rate)?;
    }
    Ok(config.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let options = HarnessOptions::parse(Vec::<String>::new()).unwrap();
        assert_eq!(options.bursts, DEFAULT_BURSTS);
        assert!(!options.no_refresh);
        assert_eq!(options.workers, 0);
        assert!(options.json.is_none() && options.csv.is_none());
        assert!(!options.help);
    }

    #[test]
    fn parse_flags() {
        let options =
            HarnessOptions::parse(["--no-refresh", "--bursts", "4096"].map(String::from)).unwrap();
        assert!(options.no_refresh);
        assert_eq!(options.bursts, 4096);
        let full = HarnessOptions::parse(["--full"].map(String::from)).unwrap();
        assert_eq!(full.bursts, 12_500_000);
    }

    #[test]
    fn parse_output_and_worker_flags() {
        let options = HarnessOptions::parse(
            ["--json", "out.json", "--csv", "out.csv", "--workers", "3"].map(String::from),
        )
        .unwrap();
        assert_eq!(
            options.json.as_deref(),
            Some(std::path::Path::new("out.json"))
        );
        assert_eq!(
            options.csv.as_deref(),
            Some(std::path::Path::new("out.csv"))
        );
        assert_eq!(options.workers, 3);
    }

    #[test]
    fn parse_threads_flag() {
        assert_eq!(HarnessOptions::new().threads, 1);
        let options = HarnessOptions::parse(["--threads", "4"].map(String::from)).unwrap();
        assert_eq!(options.threads, 4);
        assert!(HarnessOptions::parse(["--threads"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--threads", "0"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--threads", "many"].map(String::from)).is_err());
    }

    #[test]
    fn parse_engine_flag() {
        assert_eq!(HarnessOptions::new().engine, TimingEngine::Event);
        let cycle = HarnessOptions::parse(["--engine", "cycle"].map(String::from)).unwrap();
        assert_eq!(cycle.engine, TimingEngine::Cycle);
        assert_eq!(cycle.controller().engine, TimingEngine::Cycle);
        let event = HarnessOptions::parse(["--engine", "event"].map(String::from)).unwrap();
        assert_eq!(event.engine, TimingEngine::Event);
        assert!(HarnessOptions::parse(["--engine"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--engine", "warp"].map(String::from)).is_err());
    }

    #[test]
    fn engine_flag_flows_into_table1_scenarios() {
        let options = HarnessOptions {
            bursts: 2_000,
            engine: TimingEngine::Cycle,
            ..HarnessOptions::new()
        };
        let cycle_records = run_table1(&options).unwrap();
        let event_records = run_table1(&HarnessOptions {
            engine: TimingEngine::Event,
            ..options.clone()
        })
        .unwrap();
        // Different engines, bit-identical records — the transition-safety
        // invariant, visible end to end through the CLI surface.
        assert_eq!(cycle_records, event_records);
    }

    #[test]
    fn parse_help_short_circuits() {
        for flag in ["--help", "-h"] {
            let options = HarnessOptions::parse([flag.to_string(), "--nope".to_string()]).unwrap();
            assert!(options.help, "{flag} should set help");
        }
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        assert!(HarnessOptions::parse(["--nope"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--bursts"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--bursts", "abc"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--bursts", "0"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--workers", "x"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--json"].map(String::from)).is_err());
        assert!(HarnessOptions::parse(["--csv"].map(String::from)).is_err());
    }

    /// Every malformed command line must produce a clean `Err` with a
    /// human-readable message — parsing never panics, whatever the input.
    #[test]
    fn parse_errors_cleanly_never_panics() {
        let cases: &[&[&str]] = &[
            // Explicit zero workers: ambiguous (0 used to mean "auto"), now
            // rejected with a hint.
            &["--workers", "0"],
            // Missing values for every value-taking flag.
            &["--bursts"],
            &["--workers"],
            &["--threads"],
            &["--json"],
            &["--csv"],
            &["--engine"],
            &["--channels"],
            &["--ranks"],
            // Unknown flags, including near-misses.
            &["--nope"],
            &["--burst", "100"],
            &["-x"],
            &["bursts"],
            // Engine typos.
            &["--engine", "warp"],
            &["--engine", "Event"],
            &["--engine", ""],
            // Malformed and out-of-range numbers.
            &["--bursts", "-5"],
            &["--bursts", "1e6"],
            &["--workers", "many"],
            &["--threads", "0"],
            &["--threads", "-1"],
            &["--channels", "0"],
            &["--channels", "3"],
            &["--ranks", "0"],
            &["--ranks", "6"],
            &["--channels", "x"],
        ];
        for case in cases {
            let args: Vec<String> = case.iter().map(|s| (*s).to_string()).collect();
            let result = std::panic::catch_unwind(|| HarnessOptions::parse(args.clone()));
            let outcome = result.unwrap_or_else(|_| panic!("{case:?} panicked"));
            let err = outcome.expect_err(&format!("{case:?} should be rejected"));
            assert!(!err.is_empty(), "{case:?} produced an empty error message");
        }
    }

    #[test]
    fn parse_workers_zero_error_names_the_remedy() {
        let err = HarnessOptions::parse(["--workers", "0"].map(String::from)).unwrap_err();
        assert!(err.contains("omit --workers"), "unhelpful message: {err}");
    }

    #[test]
    fn parse_channel_and_rank_flags() {
        let options =
            HarnessOptions::parse(["--channels", "4", "--ranks", "2"].map(String::from)).unwrap();
        assert_eq!(options.channels, 4);
        assert_eq!(options.ranks, 2);
        let defaults = HarnessOptions::new();
        assert_eq!(defaults.channels, 1);
        assert_eq!(defaults.ranks, 1);
    }

    #[test]
    fn usage_mentions_every_flag() {
        let usage = HarnessOptions::usage("table1");
        for flag in [
            "--full",
            "--bursts",
            "--no-refresh",
            "--engine",
            "--channels",
            "--ranks",
            "--workers",
            "--threads",
            "--json",
            "--csv",
            "--help",
        ] {
            assert!(usage.contains(flag), "usage missing {flag}");
        }
        assert!(usage.starts_with("usage: table1"));
    }

    #[test]
    fn channel_flags_flow_into_table1_records() {
        let options = HarnessOptions {
            bursts: 2_000,
            channels: 2,
            ..HarnessOptions::new()
        };
        let records = run_table1(&options).unwrap();
        assert_eq!(records.len(), 20);
        assert!(records.iter().all(|r| r.channels == 2 && r.ranks == 1));
        assert!(records.iter().all(|r| r.scenario_id.ends_with("/c2r1")));
    }

    #[test]
    fn usage_for_lists_only_the_supported_flags() {
        let usage = HarnessOptions::usage_for("fig1", &["--workers", "--json", "--csv"]);
        for flag in ["--workers", "--json", "--csv", "--help"] {
            assert!(usage.contains(flag), "usage missing {flag}");
        }
        for flag in ["--full", "--bursts", "--no-refresh"] {
            assert!(!usage.contains(flag), "usage wrongly lists {flag}");
        }
    }

    #[test]
    fn controller_reflects_refresh_flag() {
        let mut options = HarnessOptions::new();
        assert_eq!(options.controller().refresh_mode, None);
        assert_eq!(options.refresh_setting(), RefreshSetting::Standard);
        options.no_refresh = true;
        assert_eq!(
            options.controller().refresh_mode,
            Some(tbi_dram::RefreshMode::Disabled)
        );
        assert_eq!(options.refresh_setting(), RefreshSetting::Disabled);
    }

    #[test]
    fn run_table1_returns_adjacent_pairs_in_paper_order() {
        let options = HarnessOptions {
            bursts: 2_000,
            ..HarnessOptions::new()
        };
        let records = run_table1(&options).unwrap();
        assert_eq!(records.len(), 2 * tbi_dram::standards::ALL_CONFIGS.len());
        for (pair, (standard, rate)) in records
            .chunks(2)
            .zip(tbi_dram::standards::ALL_CONFIGS.iter())
        {
            let label = format!("{}-{rate}", standard.name());
            assert_eq!(pair[0].dram_label, label);
            assert_eq!(pair[0].mapping, "row-major");
            assert_eq!(pair[1].dram_label, label);
            assert_eq!(pair[1].mapping, "optimized");
        }
    }

    #[test]
    fn run_table1_propagates_oversize_errors() {
        let options = HarnessOptions {
            bursts: 100_000_000_000,
            ..HarnessOptions::new()
        };
        let err = run_table1(&options).unwrap_err();
        let message = err.to_string();
        assert!(matches!(err, ExpError::Scenario { .. }));
        assert!(message.contains("scenario"), "got: {message}");
        assert!(message.contains("bursts"), "got: {message}");
    }

    #[test]
    fn format_row_contains_all_four_numbers() {
        let options = HarnessOptions {
            bursts: 5_000,
            no_refresh: true,
            ..HarnessOptions::new()
        };
        let grid = SweepGrid::new()
            .preset(tbi_dram::DramStandard::Ddr3, 800)
            .unwrap()
            .size(options.bursts)
            .mappings(MappingKind::TABLE1)
            .refresh(options.refresh_setting());
        let records = options.run_grid(grid).unwrap();
        let row = format_table1_row("DDR3-800", &records[0], &records[1]);
        assert!(row.starts_with("DDR3-800"));
        assert_eq!(row.matches('%').count(), 4);
    }
}
