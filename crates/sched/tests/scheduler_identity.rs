//! Bit-identity and determinism guarantees of the stream scheduler.
//!
//! The scheduler's single-stream case must be indistinguishable from the
//! existing single-tenant phase drivers: same enqueue sequence per
//! channel, therefore bit-identical [`CombinedStats`] — for every policy,
//! on both timing engines.  Multi-tenant runs must be deterministic and
//! complete all admitted work even at thousands-of-streams scale.

use tbi_dram::{
    ChannelRouter, ChannelTopology, CombinedStats, ControllerConfig, DramConfig, DramStandard,
    TimingEngine,
};
use tbi_interleaver::mapping::{channel_mapping_for_spec, ChannelTraceGenerator};
use tbi_interleaver::{AccessPhase, InterleaverSpec, MappingKind};
use tbi_sched::{QosClass, SchedConfig, SchedPolicyKind, StreamScheduler, StreamSpec};

fn config(channels: u32, ranks: u32) -> DramConfig {
    DramConfig::preset(DramStandard::Ddr4, 3200)
        .unwrap()
        .with_topology(ChannelTopology::new(channels, ranks))
}

fn ctrl(engine: TimingEngine) -> ControllerConfig {
    ControllerConfig {
        engine,
        ..ControllerConfig::default()
    }
}

/// Reference statistics: the pre-existing single-tenant driver
/// (`run_phase_sources` over per-channel traces).
fn reference_stats(
    config: &DramConfig,
    ctrl: ControllerConfig,
    spec: &InterleaverSpec,
    kind: MappingKind,
    phase: AccessPhase,
) -> CombinedStats {
    let mapping = channel_mapping_for_spec(kind, config, spec).unwrap();
    let generator = ChannelTraceGenerator::new(&mapping);
    let mut router = ChannelRouter::new(config.clone(), ctrl).unwrap();
    let traces: Vec<_> = (0..router.channels())
        .map(|channel| generator.channel_requests(phase, channel))
        .collect();
    router.run_phase_sources(traces)
}

#[test]
fn single_stream_is_bit_identical_to_run_phase_sources() {
    let spec = InterleaverSpec::from_burst_count(3_000);
    let config = config(2, 1);
    for engine in [TimingEngine::Cycle, TimingEngine::Event] {
        for phase in AccessPhase::ALL {
            let reference =
                reference_stats(&config, ctrl(engine), &spec, MappingKind::Optimized, phase);
            for policy in SchedPolicyKind::ALL {
                let pattern = match phase {
                    AccessPhase::Write => tbi_sched::PhasePattern::Write,
                    AccessPhase::Read => tbi_sched::PhasePattern::Read,
                };
                let report = StreamScheduler::new(
                    config.clone(),
                    ctrl(engine),
                    vec![StreamSpec::new("solo", spec).with_pattern(pattern)],
                    SchedConfig::new(policy),
                )
                .unwrap()
                .run();
                assert_eq!(
                    report.stats, reference,
                    "engine {engine}, phase {phase:?}, policy {policy}"
                );
                assert_eq!(report.total_requests(), spec.total_positions());
            }
        }
    }
}

#[test]
fn single_stream_identity_holds_with_ranks_and_row_major() {
    // A 4-channel, 2-rank topology exercises the rank-qualified bank
    // attribution; the row-major mapping exercises the linear-splice
    // router.
    let spec = InterleaverSpec::from_burst_count(2_000);
    let config = config(4, 2);
    let reference = reference_stats(
        &config,
        ctrl(TimingEngine::Event),
        &spec,
        MappingKind::RowMajor,
        AccessPhase::Write,
    );
    let report = StreamScheduler::new(
        config,
        ctrl(TimingEngine::Event),
        vec![StreamSpec::new("solo", spec).with_mapping(MappingKind::RowMajor)],
        SchedConfig::new(SchedPolicyKind::WeightedShare),
    )
    .unwrap()
    .run();
    assert_eq!(report.stats, reference);
}

#[test]
fn engines_agree_on_multi_tenant_runs() {
    let spec = InterleaverSpec::from_burst_count(1_200);
    let streams = || {
        vec![
            StreamSpec::new("a", spec)
                .with_qos(QosClass::Premium)
                .with_blocks(2),
            StreamSpec::new("b", spec).with_blocks(2),
            StreamSpec::new("c", spec)
                .with_qos(QosClass::BestEffort)
                .with_pattern(tbi_sched::PhasePattern::Alternating)
                .with_blocks(2),
        ]
    };
    for policy in SchedPolicyKind::ALL {
        let cycle = StreamScheduler::new(
            config(2, 1),
            ctrl(TimingEngine::Cycle),
            streams(),
            SchedConfig::new(policy),
        )
        .unwrap()
        .run();
        let event = StreamScheduler::new(
            config(2, 1),
            ctrl(TimingEngine::Event),
            streams(),
            SchedConfig::new(policy),
        )
        .unwrap()
        .run();
        assert_eq!(cycle, event, "{policy}");
    }
}

#[test]
fn thousands_of_streams_complete_under_bounded_memory() {
    // 2048 tiny streams with a tight shared in-flight budget: admission
    // backpressure must cycle every block through without losing or
    // duplicating a request.
    let spec = InterleaverSpec::from_burst_count(45);
    let streams: Vec<StreamSpec> = (0..2048)
        .map(|index| {
            let qos = QosClass::ALL[index % 3];
            StreamSpec::new(format!("tenant-{index:04}"), spec).with_qos(qos)
        })
        .collect();
    let per_block = spec.total_positions();
    let report = StreamScheduler::new(
        config(2, 1),
        ctrl(TimingEngine::Event),
        streams,
        SchedConfig::new(SchedPolicyKind::WeightedShare).with_max_in_flight(64),
    )
    .unwrap()
    .run();
    assert_eq!(report.tenants.len(), 2048);
    assert_eq!(report.total_requests(), 2048 * per_block);
    assert!(report.tenants.iter().all(|t| t.blocks == 1));
    let fairness = report.fairness_index();
    assert!(fairness > 0.0 && fairness <= 1.0 + 1e-12, "{fairness}");
}

#[test]
fn threaded_drive_is_bit_identical_for_all_policies_and_engines() {
    // The scheduler's admission loop is inherently sequential (policy
    // decisions are cross-channel); `SchedConfig::with_threads` only
    // parallelizes the final per-channel drain.  The full report — stats,
    // per-tenant histograms, deadline accounting — must be bit-identical to
    // the sequential run for every policy × engine × thread count,
    // including an odd count and one exceeding the channel count.
    let spec = InterleaverSpec::from_burst_count(1_200);
    let streams = || {
        vec![
            StreamSpec::new("a", spec)
                .with_qos(QosClass::Premium)
                .with_blocks(2),
            StreamSpec::new("b", spec).with_blocks(2),
            StreamSpec::new("c", spec)
                .with_qos(QosClass::BestEffort)
                .with_pattern(tbi_sched::PhasePattern::Alternating)
                .with_blocks(2),
        ]
    };
    for engine in [TimingEngine::Cycle, TimingEngine::Event] {
        for policy in SchedPolicyKind::ALL {
            let sequential = StreamScheduler::new(
                config(2, 1),
                ctrl(engine),
                streams(),
                SchedConfig::new(policy),
            )
            .unwrap()
            .run();
            for threads in [2usize, 3, 4] {
                let threaded = StreamScheduler::new(
                    config(2, 1),
                    ctrl(engine),
                    streams(),
                    SchedConfig::new(policy).with_threads(threads),
                )
                .unwrap()
                .run();
                assert_eq!(sequential, threaded, "{engine} {policy} threads={threads}");
            }
        }
    }
}

#[test]
fn threaded_drive_preserves_per_channel_completion_log_order() {
    // The per-tenant latency accounting attributes completions by walking
    // each controller's private log in channel-index order, so the log's
    // per-channel request ordering is part of the determinism contract —
    // not just the aggregated statistics.
    let spec = InterleaverSpec::from_burst_count(2_000);
    let config = config(4, 1);
    let run_completions = |threads: usize| -> (CombinedStats, Vec<Vec<tbi_dram::Completion>>) {
        let mapping = channel_mapping_for_spec(MappingKind::Optimized, &config, &spec).unwrap();
        let generator = ChannelTraceGenerator::new(&mapping);
        let mut router = ChannelRouter::new(config.clone(), ctrl(TimingEngine::Event)).unwrap();
        for channel in 0..router.channels() {
            router.controller_mut(channel).set_completion_logging(true);
        }
        let traces: Vec<_> = (0..router.channels())
            .map(|channel| generator.channel_requests(AccessPhase::Write, channel))
            .collect();
        let stats = if threads == 0 {
            router.run_phase_sources(traces)
        } else {
            router.run_phase_sources_threaded(traces, threads)
        };
        let logs: Vec<Vec<tbi_dram::Completion>> = (0..router.channels())
            .map(|channel| router.controller_mut(channel).drain_completions().collect())
            .collect();
        (stats, logs)
    };
    let (sequential_stats, sequential_logs) = run_completions(0);
    assert!(sequential_logs.iter().any(|log| !log.is_empty()));
    for threads in [1usize, 2, 3, 4, 8] {
        let (stats, logs) = run_completions(threads);
        assert_eq!(
            sequential_stats, stats,
            "stats diverged at {threads} threads"
        );
        assert_eq!(
            sequential_logs, logs,
            "completion-log order diverged at {threads} threads"
        );
    }
}

#[test]
fn policies_differentiate_premium_p99_under_contention() {
    // One premium stream competes with seven best-effort streams on a
    // single channel.  Weighted share must hold the premium tenant's p99
    // below what plain round-robin gives it.
    let spec = InterleaverSpec::from_burst_count(2_000);
    let streams = || {
        let mut list = vec![StreamSpec::new("premium", spec)
            .with_qos(QosClass::Premium)
            .with_blocks(2)];
        for index in 0..7 {
            list.push(
                StreamSpec::new(format!("bg-{index}"), spec)
                    .with_qos(QosClass::BestEffort)
                    .with_blocks(2),
            );
        }
        list
    };
    let premium_p99 = |policy: SchedPolicyKind| {
        let report = StreamScheduler::new(
            config(1, 1),
            ctrl(TimingEngine::Event),
            streams(),
            SchedConfig::new(policy),
        )
        .unwrap()
        .run();
        report.tenants[0].latency.p99()
    };
    let round_robin = premium_p99(SchedPolicyKind::RoundRobin);
    let weighted = premium_p99(SchedPolicyKind::WeightedShare);
    assert!(
        weighted < round_robin,
        "weighted share should improve premium p99: weighted {weighted} vs rr {round_robin}"
    );
}
