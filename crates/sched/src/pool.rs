//! Slab-style pooled allocator for in-flight triangular blocks.
//!
//! Admission control bounds how many blocks may be in flight at once; the
//! [`BlockPool`] backs that budget with a fixed slab of [`BlockSlot`]s and
//! a LIFO free list, so admitting and retiring a block never allocates
//! after construction and slot indices stay dense enough to tag requests
//! with a `u32`.

/// State of one in-flight triangular block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSlot {
    /// Owning stream index.
    pub stream: u32,
    /// Arrival cycle of the block (latency epoch for its requests).
    pub arrival: u64,
    /// Absolute deadline cycle (`arrival + deadline_cycles`).
    pub deadline: u64,
    /// Requests of this block not yet completed by the memory system.
    pub remaining: u64,
    /// Requests of this block already produced by the generator.
    pub generated: u64,
    /// Largest completion cycle observed for this block so far.
    pub last_completion: u64,
}

/// Fixed-capacity slab of in-flight blocks with a LIFO free list.
///
/// # Examples
///
/// ```
/// use tbi_sched::{BlockPool, BlockSlot};
///
/// let mut pool = BlockPool::new(2);
/// let slot = pool
///     .allocate(BlockSlot { stream: 0, arrival: 0, deadline: 100, remaining: 10, generated: 0, last_completion: 0 })
///     .unwrap();
/// assert!(pool.is_full() == false && pool.in_flight() == 1);
/// pool.release(slot);
/// assert_eq!(pool.in_flight(), 0);
/// ```
#[derive(Debug)]
pub struct BlockPool {
    slots: Vec<BlockSlot>,
    free: Vec<u32>,
}

impl BlockPool {
    /// Creates a pool of `capacity` slots (clamped to at least 1), all
    /// free.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let empty = BlockSlot {
            stream: 0,
            arrival: 0,
            deadline: 0,
            remaining: 0,
            generated: 0,
            last_completion: 0,
        };
        Self {
            slots: vec![empty; capacity],
            // LIFO: lowest indices come off first, so slot ids stay small
            // under light load.
            free: (0..capacity as u32).rev().collect(),
        }
    }

    /// Total slot count (the in-flight budget).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently allocated.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether every slot is allocated (admission must stall).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Allocates a slot for `block`, returning its index, or `None` when
    /// the pool is exhausted.
    pub fn allocate(&mut self, block: BlockSlot) -> Option<u32> {
        let index = self.free.pop()?;
        self.slots[index as usize] = block;
        Some(index)
    }

    /// Returns `slot` to the free list.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `slot` is already free.
    pub fn release(&mut self, slot: u32) {
        debug_assert!(
            !self.free.contains(&slot),
            "double release of block slot {slot}"
        );
        self.free.push(slot);
    }

    /// The block in `slot`.
    #[must_use]
    pub fn get(&self, slot: u32) -> &BlockSlot {
        &self.slots[slot as usize]
    }

    /// Mutable access to the block in `slot`.
    pub fn get_mut(&mut self, slot: u32) -> &mut BlockSlot {
        &mut self.slots[slot as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(stream: u32) -> BlockSlot {
        BlockSlot {
            stream,
            arrival: 5,
            deadline: 105,
            remaining: 3,
            generated: 0,
            last_completion: 0,
        }
    }

    #[test]
    fn allocate_until_full_then_release_reuses_slots() {
        let mut pool = BlockPool::new(2);
        let a = pool.allocate(block(0)).unwrap();
        let b = pool.allocate(block(1)).unwrap();
        assert_ne!(a, b);
        assert!(pool.is_full());
        assert!(pool.allocate(block(2)).is_none());
        pool.release(a);
        assert_eq!(pool.in_flight(), 1);
        // LIFO: the just-released slot is handed out again.
        assert_eq!(pool.allocate(block(3)).unwrap(), a);
        assert_eq!(pool.get(a).stream, 3);
        assert_eq!(pool.get(b).stream, 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut pool = BlockPool::new(0);
        assert_eq!(pool.capacity(), 1);
        assert!(pool.allocate(block(0)).is_some());
        assert!(pool.is_full());
    }

    #[test]
    fn get_mut_updates_slot_state() {
        let mut pool = BlockPool::new(1);
        let slot = pool.allocate(block(0)).unwrap();
        pool.get_mut(slot).remaining -= 1;
        pool.get_mut(slot).last_completion = 77;
        assert_eq!(pool.get(slot).remaining, 2);
        assert_eq!(pool.get(slot).last_completion, 77);
    }
}
