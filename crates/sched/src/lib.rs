//! Multi-tenant stream scheduling for DRAM-mapped triangular interleavers.
//!
//! The paper's pipeline drives one interleaver through the memory system
//! at a time; a satellite ground station terminates many optical links at
//! once, each with its own interleaver stream and service class.  This
//! crate adds the missing layer: a tenant-aware scheduler that multiplexes
//! thousands of concurrent interleaver streams onto the shared DRAM
//! channels with admission control, pluggable QoS policies and per-tenant
//! latency accounting.
//!
//! - [`StreamSpec`] / [`SchedConfig`] describe the workload: tenant
//!   identity, triangular-block geometry, arrival model, QoS class, and
//!   the policy plus in-flight budget.
//! - [`StreamScheduler`] runs the streams over a
//!   [`ChannelRouter`](tbi_dram::ChannelRouter) under the same
//!   laggard-first clock as the single-stream phase drivers; with one
//!   stream the result is bit-identical to
//!   [`ChannelRouter::run_phase_sources`](tbi_dram::ChannelRouter::run_phase_sources).
//! - [`SchedPolicy`] implementations (round-robin, weighted bandwidth
//!   share, earliest-deadline-first) decide which ready stream feeds each
//!   channel's free queue slots.
//! - [`LatencyHistogram`] tracks enqueue-to-completion latency per tenant
//!   in fixed log2 buckets with conservative p50/p99 extraction, and
//!   [`jain_fairness`] condenses cross-tenant spread into one index.

mod latency;
mod policy;
mod pool;
mod scheduler;
mod spec;

pub use latency::{jain_fairness, LatencyHistogram};
pub use policy::{build_policy, CandidateView, SchedPolicy, SchedPolicyKind};
pub use pool::{BlockPool, BlockSlot};
pub use scheduler::{SchedReport, StreamScheduler, TenantReport};
pub use spec::{ArrivalModel, PhasePattern, QosClass, SchedConfig, StreamSpec};

/// Errors from scheduler construction.
#[derive(Debug)]
pub enum SchedError {
    /// The stream list was empty.
    NoStreams,
    /// The DRAM configuration was rejected by the memory system.
    Config(tbi_dram::ConfigError),
    /// A stream's interleaver does not fit the memory system.
    Interleaver(tbi_interleaver::InterleaverError),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoStreams => write!(f, "at least one stream is required"),
            SchedError::Config(error) => write!(f, "invalid DRAM configuration: {error}"),
            SchedError::Interleaver(error) => write!(f, "invalid stream interleaver: {error}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::NoStreams => None,
            SchedError::Config(error) => Some(error),
            SchedError::Interleaver(error) => Some(error),
        }
    }
}

impl From<tbi_dram::ConfigError> for SchedError {
    fn from(error: tbi_dram::ConfigError) -> Self {
        SchedError::Config(error)
    }
}

impl From<tbi_interleaver::InterleaverError> for SchedError {
    fn from(error: tbi_interleaver::InterleaverError) -> Self {
        SchedError::Interleaver(error)
    }
}
