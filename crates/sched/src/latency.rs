//! Fixed-bucket log2 latency histograms and fairness metrics.
//!
//! Per-stream request latencies (block arrival → data burst completion)
//! are folded into a [`LatencyHistogram`] of 65 power-of-two buckets:
//! O(1) recording, O(1) memory regardless of sample count, and exact
//! counts with quantiles that are conservative (rounded up to the bucket's
//! upper bound) — so an extracted p99 is always ≥ the extracted p50.

/// Number of histogram buckets: one for latency 0 plus one per power of
/// two up to `2^63`.
const BUCKETS: usize = 65;

/// A log2-bucketed latency histogram.
///
/// Bucket 0 counts exact-zero samples; bucket `k ≥ 1` counts samples in
/// `[2^(k-1), 2^k - 1]`.  Quantiles report the matched bucket's upper
/// bound, so they are conservative and monotone in the quantile argument.
///
/// # Examples
///
/// ```
/// use tbi_sched::LatencyHistogram;
///
/// let mut histogram = LatencyHistogram::new();
/// for latency in [3, 5, 9, 200] {
///     histogram.record(latency);
/// }
/// assert_eq!(histogram.count(), 4);
/// assert!(histogram.p99() >= histogram.p50());
/// assert_eq!(histogram.max(), 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Sticky flag: the running sum overflowed `u64` at least once, so
    /// [`LatencyHistogram::mean`] understates the true mean.
    saturated: bool,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            saturated: false,
        }
    }

    /// Bucket index of `latency`: 0 for 0, else `64 - leading_zeros`.
    fn bucket_of(latency: u64) -> usize {
        (u64::BITS - latency.leading_zeros()) as usize
    }

    /// Upper bound of bucket `index` (inclusive).
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one latency sample.
    ///
    /// If the running sum would overflow `u64` it saturates instead — but
    /// the overflow is detected and latched (see
    /// [`LatencyHistogram::is_saturated`]) rather than silently producing a
    /// plausible-looking understated mean.
    pub fn record(&mut self, latency: u64) {
        self.buckets[Self::bucket_of(latency)] += 1;
        self.count += 1;
        self.sum = match self.sum.checked_add(latency) {
            Some(sum) => sum,
            None => {
                self.saturated = true;
                u64::MAX
            }
        };
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
    }

    /// Merges `other` into `self` (saturation is sticky: the merged
    /// histogram is saturated if either input was, or if the merged sum
    /// overflows).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = match self.sum.checked_add(other.sum) {
            Some(sum) => sum,
            None => {
                self.saturated = true;
                u64::MAX
            }
        };
        self.saturated |= other.saturated;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Whether the running sum ever overflowed `u64` — when `true`,
    /// [`LatencyHistogram::mean`] is a lower bound on the true mean, not
    /// its value.  Counts, quantiles, min and max remain exact.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean latency (0.0 when empty; never NaN).  A lower bound when
    /// [`LatencyHistogram::is_saturated`] is `true`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) as the upper bound of the bucket
    /// holding the `ceil(q × count)`-th smallest sample; 0 when empty.
    ///
    /// The bound is conservative (a true quantile is never above it) and
    /// monotone in `q`, so `p99() ≥ p50()` always holds.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                // The exact maximum is a tighter bound than the top
                // bucket's ceiling.
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Median latency upper bound.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency upper bound.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Jain's fairness index over per-stream values: `(Σx)² / (n × Σx²)`.
///
/// Returns 1.0 for an empty or all-zero slice (nothing is being treated
/// unfairly); otherwise the result lies in `[1/n, 1.0]`, with 1.0 meaning
/// all streams saw the same value.
///
/// # Examples
///
/// ```
/// let equal = tbi_sched::jain_fairness(&[2.0, 2.0, 2.0]);
/// assert!((equal - 1.0).abs() < 1e-12);
/// let skewed = tbi_sched::jain_fairness(&[10.0, 0.0, 0.0]);
/// assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn jain_fairness(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if values.is_empty() || sum_sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (values.len() as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let histogram = LatencyHistogram::new();
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.min(), 0);
        assert_eq!(histogram.max(), 0);
        assert_eq!(histogram.mean(), 0.0);
        assert_eq!(histogram.p50(), 0);
        assert_eq!(histogram.p99(), 0);
    }

    #[test]
    fn buckets_are_log2_with_exact_zero_bucket() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LatencyHistogram::bucket_upper(2), 3);
        assert_eq!(LatencyHistogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_monotone_and_bound_the_samples() {
        let mut histogram = LatencyHistogram::new();
        for latency in 1..=1000u64 {
            histogram.record(latency);
        }
        let p50 = histogram.p50();
        let p99 = histogram.p99();
        assert!(p50 >= 500, "p50 {p50} must bound the true median");
        assert!(p99 >= 990, "p99 {p99} must bound the true p99");
        assert!(p99 >= p50);
        assert!(p99 <= histogram.max());
        assert_eq!(histogram.quantile(1.0), 1000);
        assert_eq!(histogram.min(), 1);
        assert!((histogram.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_quantiles_equal_the_sample_bound() {
        let mut histogram = LatencyHistogram::new();
        histogram.record(100);
        // 100 lies in [64, 127]; the max tightens the bucket ceiling.
        assert_eq!(histogram.p50(), 100);
        assert_eq!(histogram.p99(), 100);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for latency in [0, 1, 7, 300] {
            left.record(latency);
            combined.record(latency);
        }
        for latency in [2, 9000] {
            right.record(latency);
            combined.record(latency);
        }
        left.merge(&right);
        assert_eq!(left, combined);
    }

    #[test]
    fn saturation_is_detected_and_sticky() {
        let mut histogram = LatencyHistogram::new();
        histogram.record(u64::MAX);
        assert!(!histogram.is_saturated(), "one sample fits exactly");
        histogram.record(1);
        assert!(histogram.is_saturated(), "overflow must latch the flag");
        // The mean is now a (large) lower bound, not a silent small value.
        assert!(histogram.mean() >= (u64::MAX / 2) as f64);
        histogram.record(0);
        assert!(histogram.is_saturated(), "the flag never clears");
        // Merge propagates the flag both ways.
        let mut clean = LatencyHistogram::new();
        clean.record(7);
        let mut merged = clean.clone();
        merged.merge(&histogram);
        assert!(merged.is_saturated());
        let mut other = LatencyHistogram::new();
        other.record(u64::MAX);
        let mut also = other.clone();
        also.merge(&other);
        assert!(also.is_saturated(), "merge overflow is detected too");
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        let n = 5;
        let skewed: Vec<f64> = (0..n).map(|i| if i == 0 { 9.0 } else { 0.0 }).collect();
        assert!((jain_fairness(&skewed) - 1.0 / n as f64).abs() < 1e-12);
        let mixed = jain_fairness(&[1.0, 2.0, 3.0]);
        assert!(mixed > 1.0 / 3.0 && mixed < 1.0);
    }
}
