//! The multi-tenant stream scheduler.
//!
//! [`StreamScheduler`] multiplexes many tenant streams onto the shared
//! channels of one [`ChannelRouter`] under the router's laggard-first
//! clock.  Each scheduler step:
//!
//! 1. **admits** arrived blocks while the in-flight [`BlockPool`] has free
//!    slots (admission control / backpressure),
//! 2. **fills** every channel's free queue slots, asking the active
//!    [`SchedPolicy`](crate::SchedPolicy) which ready stream feeds each
//!    slot,
//! 3. **advances** the laggard channel exactly as
//!    [`ChannelRouter::run_phase`] does, and
//! 4. **collects** completions from the controllers' observational logs,
//!    attributing each to its block via per-`(channel, bank)` FIFO tags
//!    (per-bank service is strictly FIFO under FR-FCFS — only queue heads
//!    receive column commands — so the tag queues mirror retirement order
//!    exactly).
//!
//! With a single stream every policy always picks the sole candidate and
//! serves whole free batches, so the enqueue sequence — and therefore the
//! DRAM statistics — are bit-identical to
//! [`ChannelRouter::run_phase_sources`] over the equivalent per-channel
//! traces.  Tests pin this on both timing engines.

use std::collections::{BTreeSet, VecDeque};

use crate::latency::{jain_fairness, LatencyHistogram};
use crate::policy::{build_policy, CandidateView, SchedPolicy, SchedPolicyKind};
use crate::pool::{BlockPool, BlockSlot};
use crate::spec::{QosClass, SchedConfig, StreamSpec};
use crate::SchedError;
use tbi_dram::{
    AddressBatch, ChannelRouter, CombinedStats, ControllerConfig, DeviceGeometry, DramConfig,
    Request,
};
use tbi_interleaver::mapping::{channel_mapping_for_spec, ChannelMapping};
use tbi_interleaver::AccessPhase;

/// Coordinate-staging chunk for the batched routing kernel (matches the
/// interleaver crate's internal batch granularity).
const COORD_CHUNK: usize = 256;

/// Target queue depth (requests) a per-channel refill generates at once.
/// Generation is batched and cheap; the target bounds per-stream queue
/// memory with thousands of streams while amortising the routing calls.
const GEN_CHUNK: usize = 512;

/// A generated request waiting in a stream's per-channel queue, tagged
/// with its block's pool slot.
#[derive(Debug, Clone, Copy)]
struct Tagged {
    request: Request,
    slot: u32,
}

/// Per-channel generation cursor of one stream: which admitted block it is
/// walking and where in that block's triangular index space it stands.
///
/// This replicates `ChannelTrace`'s coordinate walk exactly (every channel
/// walks the full triangle and keeps only its own positions), which is
/// what makes the single-stream case bit-identical to the phase drivers.
#[derive(Debug, Clone, Copy)]
struct PhaseCursor {
    /// Index into the stream's admitted-block list of the **next** block
    /// to start once the current one is exhausted.
    idx: usize,
    /// Block number currently being generated.
    block: u64,
    /// Pool slot of that block.
    slot: u32,
    outer: u32,
    inner: u32,
    /// Positions of the current block not yet walked on this channel.
    remaining: u64,
}

impl PhaseCursor {
    fn new() -> Self {
        Self {
            idx: 0,
            block: 0,
            slot: 0,
            outer: 0,
            inner: 0,
            remaining: 0,
        }
    }
}

/// Runtime state of one stream.
struct StreamState {
    mapping: ChannelMapping,
    /// Row displacement of this stream's buffer (virtual placement:
    /// tenants share banks but occupy rotated row regions).
    row_offset: u32,
    /// Generated-but-not-yet-enqueued requests, one queue per channel.
    queues: Vec<VecDeque<Tagged>>,
    cursors: Vec<PhaseCursor>,
    /// Admitted blocks in admission order: `(block number, pool slot)`.
    /// Entries stay listed after retirement; cursors only read entries at
    /// or past their own index, which retirement never reaches.
    admitted: Vec<(u64, u32)>,
    /// Next block number to admit.
    next_block: u64,
    latency: LatencyHistogram,
    blocks_completed: u64,
    deadline_misses: u64,
}

/// Per-tenant results of a scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant identity from the stream's [`StreamSpec`].
    pub tenant: String,
    /// The stream's QoS class.
    pub qos: QosClass,
    /// Completed requests (equals the histogram's sample count).
    pub requests: u64,
    /// Completed triangular blocks.
    pub blocks: u64,
    /// Blocks whose last request completed after the QoS deadline.
    pub deadline_misses: u64,
    /// Request latency distribution (block arrival → data burst end).
    pub latency: LatencyHistogram,
}

impl TenantReport {
    /// Whether the tenant's latency sum overflowed `u64` — when `true`, the
    /// histogram's mean is a lower bound, not the true mean (see
    /// [`LatencyHistogram::is_saturated`]).
    #[must_use]
    pub fn latency_saturated(&self) -> bool {
        self.latency.is_saturated()
    }
}

/// Aggregate results of a scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedReport {
    /// Policy that produced this run.
    pub policy: SchedPolicyKind,
    /// Combined DRAM statistics of the run window (same shape as a
    /// [`ChannelRouter::run_phase`] result).
    pub stats: CombinedStats,
    /// Per-tenant latency and completion accounting, in stream order.
    pub tenants: Vec<TenantReport>,
}

impl SchedReport {
    /// Jain fairness index over the tenants' mean request latencies
    /// (1.0 = every tenant saw the same mean latency).
    #[must_use]
    pub fn fairness_index(&self) -> f64 {
        let means: Vec<f64> = self.tenants.iter().map(|t| t.latency.mean()).collect();
        jain_fairness(&means)
    }

    /// Largest per-tenant p50 latency.
    #[must_use]
    pub fn worst_p50(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.latency.p50())
            .max()
            .unwrap_or(0)
    }

    /// Largest per-tenant p99 latency.
    #[must_use]
    pub fn worst_p99(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.latency.p99())
            .max()
            .unwrap_or(0)
    }

    /// Total completed requests across tenants.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.requests).sum()
    }

    /// Total deadline misses across tenants.
    #[must_use]
    pub fn total_deadline_misses(&self) -> u64 {
        self.tenants.iter().map(|t| t.deadline_misses).sum()
    }
}

/// Tenant-aware streaming scheduler over a [`ChannelRouter`].
///
/// # Examples
///
/// ```
/// use tbi_dram::{ChannelTopology, ControllerConfig, DramConfig, DramStandard};
/// use tbi_interleaver::InterleaverSpec;
/// use tbi_sched::{SchedConfig, SchedPolicyKind, StreamScheduler, StreamSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 3200)?
///     .with_topology(ChannelTopology::new(2, 1));
/// let streams = vec![
///     StreamSpec::new("tenant-a", InterleaverSpec::from_burst_count(2_000)),
///     StreamSpec::new("tenant-b", InterleaverSpec::from_burst_count(2_000)),
/// ];
/// let scheduler = StreamScheduler::new(
///     config,
///     ControllerConfig::default(),
///     streams,
///     SchedConfig::new(SchedPolicyKind::RoundRobin),
/// )?;
/// let report = scheduler.run();
/// assert_eq!(report.tenants.len(), 2);
/// assert!(report.total_requests() > 0);
/// # Ok(())
/// # }
/// ```
pub struct StreamScheduler {
    router: ChannelRouter,
    specs: Vec<StreamSpec>,
    streams: Vec<StreamState>,
    policy: Box<dyn SchedPolicy>,
    pool: BlockPool,
    /// Completion-attribution FIFOs: `tags[channel][flat_bank]` mirrors the
    /// per-bank enqueue order as `(stream, slot)` pairs.
    tags: Vec<Vec<VecDeque<(u32, u32)>>>,
    /// Streams with at least one generated request queued, per channel.
    ready: Vec<BTreeSet<u32>>,
    geometry: DeviceGeometry,
    channels: u32,
    /// Shared scratch for the batched routing kernel.
    scratch: AddressBatch,
    /// Scratch candidate list rebuilt on every policy pick.
    candidates: Vec<CandidateView>,
    /// Worker threads for the final per-channel drain
    /// ([`SchedConfig::threads`]).
    drain_threads: usize,
}

impl StreamScheduler {
    /// Builds a scheduler for `streams` on the memory system described by
    /// `config`/`ctrl`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::NoStreams`] for an empty stream list, and
    /// propagates configuration or sizing errors from the router and the
    /// per-stream channel mappings.
    pub fn new(
        config: DramConfig,
        ctrl: ControllerConfig,
        streams: Vec<StreamSpec>,
        sched: SchedConfig,
    ) -> Result<Self, SchedError> {
        if streams.is_empty() {
            return Err(SchedError::NoStreams);
        }
        let mut router = ChannelRouter::new(config.clone(), ctrl)?;
        let channels = router.channels();
        let geometry = config.geometry;
        let flat_banks = (config.topology.ranks * geometry.total_banks()) as usize;
        for channel in 0..channels {
            router.controller_mut(channel).set_completion_logging(true);
        }
        let stride = (geometry.rows / streams.len() as u32).max(1);
        let states = streams
            .iter()
            .enumerate()
            .map(|(index, spec)| {
                let mapping = channel_mapping_for_spec(spec.mapping, &config, &spec.spec)?;
                Ok(StreamState {
                    mapping,
                    row_offset: (index as u32).wrapping_mul(stride) % geometry.rows,
                    queues: (0..channels).map(|_| VecDeque::new()).collect(),
                    cursors: vec![PhaseCursor::new(); channels as usize],
                    admitted: Vec::new(),
                    next_block: 0,
                    latency: LatencyHistogram::new(),
                    blocks_completed: 0,
                    deadline_misses: 0,
                })
            })
            .collect::<Result<Vec<_>, SchedError>>()?;
        let budget = sched.budget_for(streams.len());
        Ok(Self {
            router,
            policy: build_policy(sched.policy, streams.len(), channels),
            specs: streams,
            streams: states,
            pool: BlockPool::new(budget),
            tags: (0..channels as usize)
                .map(|_| vec![VecDeque::new(); flat_banks])
                .collect(),
            ready: vec![BTreeSet::new(); channels as usize],
            geometry,
            channels,
            scratch: AddressBatch::new(),
            candidates: Vec::new(),
            drain_threads: sched.threads.max(1),
        })
    }

    /// Runs all streams to completion and returns the per-tenant and
    /// combined-DRAM results.
    ///
    /// The loop structure mirrors [`ChannelRouter::run_phase`]: fill free
    /// slots in channel order, step the laggard until it can accept again,
    /// repeat; finally drain every controller.
    #[must_use]
    pub fn run(mut self) -> SchedReport {
        loop {
            self.admit_eligible();
            self.fill_channels();
            match self.router.laggard_channel() {
                Some(channel) => {
                    let controller = self.router.controller_mut(channel);
                    controller.step();
                    while !controller.can_accept() && controller.pending_requests() > 0 {
                        controller.step();
                    }
                }
                None => {
                    if self.all_exhausted() {
                        break;
                    }
                    // Idle but not done: every remaining block arrives in
                    // the future.  Jump to the earliest arrival.
                    if !self.admit_future() {
                        debug_assert!(false, "scheduler stalled with work outstanding");
                        break;
                    }
                }
            }
            self.collect_completions();
        }
        // The admission loop above is inherently sequential (policy picks
        // observe cross-channel state), but once every stream is exhausted
        // the remaining per-channel drains are independent: run them on
        // worker threads when configured.  `drain_all` is bit-identical to
        // the per-channel loop for any thread count, and completions stay
        // in each controller's private log until `collect_completions`
        // walks the channels in index order, so report ordering is
        // unaffected.
        self.router.drain_all(self.drain_threads);
        self.collect_completions();
        self.report()
    }

    /// Number of requests per block of stream `s` — the full triangular
    /// index space of its mapping's dimension.
    fn per_block_requests(&self, stream: usize) -> u64 {
        let n = u64::from(self.streams[stream].mapping.dimension());
        n * (n + 1) / 2
    }

    /// The shared clock floor: the slowest channel's current cycle.
    fn clock(&self) -> u64 {
        (0..self.channels)
            .map(|c| self.router.controller(c).now())
            .min()
            .unwrap_or(0)
    }

    /// Whether every stream has admitted all blocks and every admitted
    /// block has retired.
    fn all_exhausted(&self) -> bool {
        self.pool.in_flight() == 0
            && self
                .specs
                .iter()
                .zip(&self.streams)
                .all(|(spec, state)| state.next_block >= spec.blocks)
    }

    /// Admits blocks that have arrived by the shared clock, earliest
    /// `(arrival, stream)` first, while the pool has free slots.
    fn admit_eligible(&mut self) {
        let clock = self.clock();
        while !self.pool.is_full() {
            match self.next_admission_candidate() {
                Some((arrival, stream)) if arrival <= clock => self.admit(stream),
                _ => break,
            }
        }
    }

    /// Force-admits the earliest future block (used when the system has
    /// gone idle before all arrivals).  Returns whether anything was
    /// admitted.
    fn admit_future(&mut self) -> bool {
        if self.pool.is_full() {
            return false;
        }
        match self.next_admission_candidate() {
            Some((_, stream)) => {
                self.admit(stream);
                true
            }
            None => false,
        }
    }

    /// The earliest `(arrival, stream)` among unadmitted blocks.
    fn next_admission_candidate(&self) -> Option<(u64, u32)> {
        self.specs
            .iter()
            .zip(&self.streams)
            .enumerate()
            .filter(|(_, (spec, state))| state.next_block < spec.blocks)
            .map(|(index, (spec, state))| {
                (spec.arrival.arrival_cycle(state.next_block), index as u32)
            })
            .min()
    }

    /// Admits stream `stream`'s next block: allocates a pool slot, appends
    /// it to the stream's admitted list and wakes any stalled channel
    /// cursors.
    fn admit(&mut self, stream: u32) {
        let s = stream as usize;
        let per_block = self.per_block_requests(s);
        let spec = &self.specs[s];
        let block = self.streams[s].next_block;
        let arrival = spec.arrival.arrival_cycle(block);
        let deadline = arrival.saturating_add(spec.qos.deadline_cycles());
        let slot = self
            .pool
            .allocate(BlockSlot {
                stream,
                arrival,
                deadline,
                remaining: per_block,
                generated: 0,
                last_completion: 0,
            })
            .expect("admit is only called with pool capacity available");
        let state = &mut self.streams[s];
        state.admitted.push((block, slot));
        state.next_block += 1;
        let rows = self.geometry.rows;
        for channel in 0..self.channels as usize {
            if state.queues[channel].is_empty() {
                Self::refill_channel(
                    state,
                    spec,
                    &mut self.pool,
                    channel,
                    rows,
                    &mut self.scratch,
                );
            }
            if !state.queues[channel].is_empty() {
                self.ready[channel].insert(stream);
            }
        }
    }

    /// Generates up to [`GEN_CHUNK`] more of `state`'s requests for
    /// `channel`, walking admitted blocks in order with the exact
    /// `ChannelTrace` coordinate walk and displacing rows by the stream's
    /// offset.
    fn refill_channel(
        state: &mut StreamState,
        spec: &StreamSpec,
        pool: &mut BlockPool,
        channel: usize,
        rows: u32,
        scratch: &mut AddressBatch,
    ) {
        let StreamState {
            mapping,
            row_offset,
            queues,
            cursors,
            admitted,
            ..
        } = state;
        let n = mapping.dimension();
        let per_block = u64::from(n) * (u64::from(n) + 1) / 2;
        let row_offset = *row_offset;
        let cursor = &mut cursors[channel];
        let queue = &mut queues[channel];
        let before = queue.len();
        let mut coords = [(0u32, 0u32); COORD_CHUNK];
        while queue.len() - before < GEN_CHUNK {
            if cursor.remaining == 0 {
                let Some(&(block, slot)) = admitted.get(cursor.idx) else {
                    break;
                };
                cursor.block = block;
                cursor.slot = slot;
                cursor.outer = 0;
                cursor.inner = 0;
                cursor.remaining = per_block;
                cursor.idx += 1;
            }
            let phase = spec.pattern.phase(cursor.block);
            let take = cursor.remaining.min(COORD_CHUNK as u64) as usize;
            for coord in coords.iter_mut().take(take) {
                *coord = match phase {
                    AccessPhase::Write => (cursor.outer, cursor.inner),
                    AccessPhase::Read => (cursor.inner, cursor.outer),
                };
                cursor.inner += 1;
                if cursor.inner >= n - cursor.outer {
                    cursor.inner = 0;
                    cursor.outer += 1;
                }
            }
            cursor.remaining -= take as u64;
            scratch.clear();
            mapping.route_batch(&coords[..take], scratch);
            for (index, &lane) in scratch.channels().iter().enumerate() {
                if lane != channel as u32 {
                    continue;
                }
                let mut address = scratch.address(index);
                address.row = (address.row + row_offset) % rows;
                let request = match phase {
                    AccessPhase::Write => Request::write(address),
                    AccessPhase::Read => Request::read(address),
                };
                queue.push_back(Tagged {
                    request,
                    slot: cursor.slot,
                });
                pool.get_mut(cursor.slot).generated += 1;
            }
        }
    }

    /// Fills every channel's free queue slots from the ready streams the
    /// policy selects, tagging each enqueued request for completion
    /// attribution.
    fn fill_channels(&mut self) {
        let rows = self.geometry.rows;
        for channel in 0..self.channels as usize {
            loop {
                let free = self.router.controller(channel as u32).free_slots();
                if free == 0 || self.ready[channel].is_empty() {
                    break;
                }
                self.candidates.clear();
                for &stream in &self.ready[channel] {
                    let state = &self.streams[stream as usize];
                    let head = state.queues[channel]
                        .front()
                        .expect("ready streams have queued work");
                    self.candidates.push(CandidateView {
                        stream,
                        weight: self.specs[stream as usize].weight(),
                        head_deadline: self.pool.get(head.slot).deadline,
                    });
                }
                let picked = self.policy.pick(channel as u32, &self.candidates);
                let weight = self.specs[picked as usize].weight();
                let quantum = self.policy.quantum(weight);
                let serve = free.min(quantum);
                let mut served = 0u64;
                while (served as usize) < serve {
                    let Some(tagged) = self.streams[picked as usize].queues[channel].pop_front()
                    else {
                        break;
                    };
                    let flat = tagged.request.address.flat_bank(&self.geometry) as usize;
                    let accepted = self
                        .router
                        .controller_mut(channel as u32)
                        .enqueue(tagged.request);
                    debug_assert!(accepted, "enqueue within free_slots cannot fail");
                    self.tags[channel][flat].push_back((picked, tagged.slot));
                    served += 1;
                    if self.streams[picked as usize].queues[channel].is_empty() {
                        Self::refill_channel(
                            &mut self.streams[picked as usize],
                            &self.specs[picked as usize],
                            &mut self.pool,
                            channel,
                            rows,
                            &mut self.scratch,
                        );
                    }
                }
                self.policy.on_served(picked, served, weight);
                if self.streams[picked as usize].queues[channel].is_empty() {
                    self.ready[channel].remove(&picked);
                }
                if served == 0 {
                    break;
                }
            }
        }
    }

    /// Drains every controller's completion log and attributes each
    /// retirement to its block through the per-bank tag FIFOs, recording
    /// latency and releasing retired blocks back to the pool.
    fn collect_completions(&mut self) {
        for channel in 0..self.channels as usize {
            for completion in self
                .router
                .controller_mut(channel as u32)
                .drain_completions()
            {
                let (stream, slot) = self.tags[channel][completion.flat_bank as usize]
                    .pop_front()
                    .expect("every completion has a tagged enqueue");
                let block = self.pool.get_mut(slot);
                debug_assert_eq!(block.stream, stream);
                let latency = completion.data_end.saturating_sub(block.arrival);
                block.remaining -= 1;
                block.last_completion = block.last_completion.max(completion.data_end);
                let retired = block.remaining == 0;
                let missed = retired && block.last_completion > block.deadline;
                let state = &mut self.streams[stream as usize];
                state.latency.record(latency);
                if retired {
                    state.blocks_completed += 1;
                    if missed {
                        state.deadline_misses += 1;
                    }
                    self.pool.release(slot);
                }
            }
        }
    }

    /// Builds the final report from the router's statistics window and the
    /// per-stream accounting.
    fn report(self) -> SchedReport {
        let stats = self.router.stats();
        let tenants = self
            .specs
            .into_iter()
            .zip(self.streams)
            .map(|(spec, state)| TenantReport {
                tenant: spec.tenant,
                qos: spec.qos,
                requests: state.latency.count(),
                blocks: state.blocks_completed,
                deadline_misses: state.deadline_misses,
                latency: state.latency,
            })
            .collect();
        SchedReport {
            policy: self.policy.kind(),
            stats,
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArrivalModel, PhasePattern};
    use tbi_dram::{ChannelTopology, DramStandard};
    use tbi_interleaver::InterleaverSpec;

    fn config(channels: u32) -> DramConfig {
        DramConfig::preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .with_topology(ChannelTopology::new(channels, 1))
    }

    fn run_with(config: DramConfig, streams: Vec<StreamSpec>, sched: SchedConfig) -> SchedReport {
        StreamScheduler::new(config, ControllerConfig::default(), streams, sched)
            .unwrap()
            .run()
    }

    #[test]
    fn empty_stream_list_is_rejected() {
        let err = StreamScheduler::new(
            config(2),
            ControllerConfig::default(),
            Vec::new(),
            SchedConfig::new(SchedPolicyKind::RoundRobin),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, SchedError::NoStreams));
    }

    #[test]
    fn every_request_completes_and_blocks_retire() {
        let spec = InterleaverSpec::from_burst_count(1_500);
        let streams = vec![
            StreamSpec::new("a", spec).with_blocks(2),
            StreamSpec::new("b", spec)
                .with_qos(QosClass::Premium)
                .with_pattern(PhasePattern::Alternating)
                .with_blocks(3),
        ];
        let per_block = streams[0].requests_per_block();
        let report = run_with(
            config(2),
            streams,
            SchedConfig::new(SchedPolicyKind::WeightedShare),
        );
        assert_eq!(report.tenants[0].requests, 2 * per_block);
        assert_eq!(report.tenants[1].requests, 3 * per_block);
        assert_eq!(report.tenants[0].blocks, 2);
        assert_eq!(report.tenants[1].blocks, 3);
        assert_eq!(report.stats.aggregate().completed_requests, 5 * per_block);
        for tenant in &report.tenants {
            assert!(tenant.latency.p99() >= tenant.latency.p50());
            assert!(tenant.latency.max() > 0);
        }
        let fairness = report.fairness_index();
        assert!(fairness > 0.0 && fairness <= 1.0);
    }

    #[test]
    fn periodic_arrivals_admit_after_idle_and_complete() {
        let spec = InterleaverSpec::from_burst_count(300);
        // Interval far beyond a block's service time forces the idle
        // force-admission path.
        let streams = vec![StreamSpec::new("periodic", spec)
            .with_blocks(3)
            .with_arrival(ArrivalModel::Periodic {
                interval_cycles: 50_000_000,
            })];
        let report = run_with(config(2), streams, SchedConfig::new(SchedPolicyKind::Edf));
        assert_eq!(report.tenants[0].blocks, 3);
        // Later blocks arrive after the system drained, so their requests
        // are served "instantly" relative to arrival (saturating latency).
        assert_eq!(
            report.tenants[0].requests,
            report.tenants[0].latency.count()
        );
    }

    #[test]
    fn tight_pool_budget_still_completes_all_work() {
        let spec = InterleaverSpec::from_burst_count(800);
        let streams = vec![
            StreamSpec::new("a", spec).with_blocks(4),
            StreamSpec::new("b", spec).with_blocks(4),
        ];
        let per_block = streams[0].requests_per_block();
        let report = run_with(
            config(2),
            streams,
            SchedConfig::new(SchedPolicyKind::RoundRobin).with_max_in_flight(1),
        );
        assert_eq!(report.total_requests(), 8 * per_block);
        assert_eq!(report.tenants[0].blocks, 4);
        assert_eq!(report.tenants[1].blocks, 4);
    }

    #[test]
    fn reports_are_deterministic_across_runs() {
        let spec = InterleaverSpec::from_burst_count(1_000);
        let build = || {
            vec![
                StreamSpec::new("a", spec)
                    .with_qos(QosClass::Premium)
                    .with_blocks(2),
                StreamSpec::new("b", spec).with_blocks(2),
                StreamSpec::new("c", spec)
                    .with_qos(QosClass::BestEffort)
                    .with_pattern(PhasePattern::Read)
                    .with_blocks(2),
            ]
        };
        for policy in SchedPolicyKind::ALL {
            let first = run_with(config(2), build(), SchedConfig::new(policy));
            let second = run_with(config(2), build(), SchedConfig::new(policy));
            assert_eq!(first, second, "{policy}");
        }
    }

    #[test]
    fn best_effort_deadlines_never_miss_and_premium_can() {
        let spec = InterleaverSpec::from_burst_count(4_000);
        let streams = vec![
            StreamSpec::new("premium", spec)
                .with_qos(QosClass::Premium)
                .with_blocks(2),
            StreamSpec::new("background", spec)
                .with_qos(QosClass::BestEffort)
                .with_blocks(2),
        ];
        let report = run_with(config(1), streams, SchedConfig::new(SchedPolicyKind::Edf));
        assert_eq!(report.tenants[1].deadline_misses, 0);
        assert_eq!(
            report.total_deadline_misses(),
            report.tenants[0].deadline_misses
        );
    }
}
