//! Stream workload specifications: tenants, QoS classes, arrival models.
//!
//! A [`StreamSpec`] describes one logical FEC stream of a ground-station
//! terminal: a tenant identity, the triangular-block geometry it interleaves
//! ([`InterleaverSpec`]), how its blocks arrive over time
//! ([`ArrivalModel`]), which access phase each block performs
//! ([`PhasePattern`]) and the service guarantees it buys ([`QosClass`]).
//! The [`StreamScheduler`](crate::StreamScheduler) multiplexes many such
//! streams onto the shared DRAM channels.

use crate::policy::SchedPolicyKind;
use tbi_interleaver::{AccessPhase, InterleaverSpec, MappingKind};

/// Service class of a stream: a bandwidth weight for the weighted-share
/// policy and a per-block deadline budget for the earliest-deadline-first
/// policy.
///
/// # Examples
///
/// ```
/// use tbi_sched::QosClass;
///
/// assert!(QosClass::Premium.weight() > QosClass::BestEffort.weight());
/// assert!(QosClass::Premium.deadline_cycles() < QosClass::Standard.deadline_cycles());
/// assert_eq!(QosClass::Standard.label(), "standard");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Latency-critical traffic: largest bandwidth share, tightest
    /// deadlines.
    Premium,
    /// Default class for ordinary streams.
    Standard,
    /// Background traffic: served with whatever bandwidth is left.
    BestEffort,
}

impl QosClass {
    /// Every class, in decreasing priority order.
    pub const ALL: [QosClass; 3] = [QosClass::Premium, QosClass::Standard, QosClass::BestEffort];

    /// Relative bandwidth weight under the weighted-share policy.
    #[must_use]
    pub fn weight(self) -> u32 {
        match self {
            QosClass::Premium => 4,
            QosClass::Standard => 2,
            QosClass::BestEffort => 1,
        }
    }

    /// Per-block deadline budget in device clock cycles (relative to the
    /// block's arrival) used by the earliest-deadline-first policy and the
    /// deadline-miss accounting.
    #[must_use]
    pub fn deadline_cycles(self) -> u64 {
        match self {
            QosClass::Premium => 100_000,
            QosClass::Standard => 400_000,
            // Effectively unbounded, but far from the u64 edge so
            // `arrival + deadline` cannot overflow.
            QosClass::BestEffort => u64::MAX / 4,
        }
    }

    /// Stable lower-case label used in records and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QosClass::Premium => "premium",
            QosClass::Standard => "standard",
            QosClass::BestEffort => "best_effort",
        }
    }
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// When a stream's blocks become eligible for admission.
///
/// Arrival cycles feed the latency accounting (a request's latency is
/// measured from its **block's arrival** to the cycle its data burst leaves
/// the bus) and the EDF deadlines (`arrival + deadline_cycles`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// All blocks are available from cycle 0 — a saturated tenant whose
    /// latency measures how fast its backlog drains.
    Backlogged,
    /// Block `b` arrives at `b × interval_cycles` — an optical-link tenant
    /// producing one code block per (deterministic) link interval.
    Periodic {
        /// Device clock cycles between consecutive block arrivals.
        interval_cycles: u64,
    },
}

impl ArrivalModel {
    /// Arrival cycle of block `block` (0-based).
    #[must_use]
    pub fn arrival_cycle(&self, block: u64) -> u64 {
        match self {
            ArrivalModel::Backlogged => 0,
            ArrivalModel::Periodic { interval_cycles } => block.saturating_mul(*interval_cycles),
        }
    }
}

/// Which access phase each of a stream's blocks performs.
///
/// A real interleaver buffer alternates row-wise writes with column-wise
/// reads; modelling each block as one full phase pass keeps the scheduler's
/// single-stream case bit-identical to the existing per-phase drivers while
/// [`PhasePattern::Alternating`] produces the mixed read/write traffic of a
/// double-buffered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhasePattern {
    /// Every block performs the row-wise write phase.
    Write,
    /// Every block performs the column-wise read phase.
    Read,
    /// Even blocks write, odd blocks read — a fill/drain ping-pong.
    Alternating,
}

impl PhasePattern {
    /// The access phase of block `block` (0-based).
    #[must_use]
    pub fn phase(self, block: u64) -> AccessPhase {
        match self {
            PhasePattern::Write => AccessPhase::Write,
            PhasePattern::Read => AccessPhase::Read,
            PhasePattern::Alternating => {
                if block % 2 == 0 {
                    AccessPhase::Write
                } else {
                    AccessPhase::Read
                }
            }
        }
    }
}

/// One tenant stream: identity, triangular-block geometry, arrival model
/// and QoS class.
///
/// # Examples
///
/// ```
/// use tbi_interleaver::InterleaverSpec;
/// use tbi_sched::{ArrivalModel, QosClass, StreamSpec};
///
/// let spec = StreamSpec::new("uplink-7", InterleaverSpec::from_burst_count(2_000))
///     .with_qos(QosClass::Premium)
///     .with_blocks(4)
///     .with_arrival(ArrivalModel::Periodic { interval_cycles: 50_000 });
/// assert_eq!(spec.tenant, "uplink-7");
/// assert_eq!(spec.weight(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Tenant identity, carried verbatim into reports and records.
    pub tenant: String,
    /// Service class.
    pub qos: QosClass,
    /// Triangular-block geometry of this stream's interleaver.
    pub spec: InterleaverSpec,
    /// DRAM address-mapping scheme for this stream's buffer.
    pub mapping: MappingKind,
    /// Access-phase pattern across the stream's blocks.
    pub pattern: PhasePattern,
    /// Number of triangular blocks the stream processes.
    pub blocks: u64,
    /// When those blocks arrive.
    pub arrival: ArrivalModel,
}

impl StreamSpec {
    /// Creates a stream with defaults: [`QosClass::Standard`], the
    /// optimized mapping, write-phase blocks, one block, backlogged.
    #[must_use]
    pub fn new(tenant: impl Into<String>, spec: InterleaverSpec) -> Self {
        Self {
            tenant: tenant.into(),
            qos: QosClass::Standard,
            spec,
            mapping: MappingKind::Optimized,
            pattern: PhasePattern::Write,
            blocks: 1,
            arrival: ArrivalModel::Backlogged,
        }
    }

    /// Sets the QoS class.
    #[must_use]
    pub fn with_qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }

    /// Sets the address-mapping scheme.
    #[must_use]
    pub fn with_mapping(mut self, mapping: MappingKind) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the access-phase pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: PhasePattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the number of blocks (clamped to at least 1).
    #[must_use]
    pub fn with_blocks(mut self, blocks: u64) -> Self {
        self.blocks = blocks.max(1);
        self
    }

    /// Sets the arrival model.
    #[must_use]
    pub fn with_arrival(mut self, arrival: ArrivalModel) -> Self {
        self.arrival = arrival;
        self
    }

    /// The stream's bandwidth weight (its QoS class's weight).
    #[must_use]
    pub fn weight(&self) -> u32 {
        self.qos.weight()
    }

    /// Requests per block: one per position of the triangular index space.
    #[must_use]
    pub fn requests_per_block(&self) -> u64 {
        self.spec.total_positions()
    }
}

/// Scheduler-level configuration: the policy and the in-flight block
/// budget.
///
/// # Examples
///
/// ```
/// use tbi_sched::{SchedConfig, SchedPolicyKind};
///
/// let config = SchedConfig::new(SchedPolicyKind::WeightedShare);
/// assert_eq!(config.budget_for(8), 16);
/// assert_eq!(config.with_max_in_flight(3).budget_for(8), 3);
/// assert_eq!(config.with_threads(4).threads, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Which [`SchedPolicy`](crate::SchedPolicy) selects streams.
    pub policy: SchedPolicyKind,
    /// Bound on concurrently in-flight triangular blocks (the admission
    /// budget backing the slab pool); `0` means auto (two blocks per
    /// stream).
    pub max_in_flight_blocks: usize,
    /// Worker threads for the final per-channel drain (the admission loop
    /// itself stays sequential — its policy decisions are cross-channel).
    /// Results are bit-identical for any value; `1` (the default) runs
    /// fully sequentially.
    pub threads: usize,
}

impl SchedConfig {
    /// Creates a configuration with the auto in-flight budget.
    #[must_use]
    pub fn new(policy: SchedPolicyKind) -> Self {
        Self {
            policy,
            max_in_flight_blocks: 0,
            threads: 1,
        }
    }

    /// Sets an explicit in-flight block budget (clamped to at least 1 at
    /// use).
    #[must_use]
    pub fn with_max_in_flight(mut self, blocks: usize) -> Self {
        self.max_in_flight_blocks = blocks;
        self
    }

    /// Sets the drain worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The effective pool capacity for `streams` streams: the explicit
    /// budget, or two blocks per stream when auto, never less than 1.
    #[must_use]
    pub fn budget_for(&self, streams: usize) -> usize {
        if self.max_in_flight_blocks == 0 {
            (streams * 2).max(1)
        } else {
            self.max_in_flight_blocks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_classes_order_weights_and_deadlines() {
        assert!(QosClass::Premium.weight() > QosClass::Standard.weight());
        assert!(QosClass::Standard.weight() > QosClass::BestEffort.weight());
        assert!(QosClass::Premium.deadline_cycles() < QosClass::Standard.deadline_cycles());
        for class in QosClass::ALL {
            assert!(class.deadline_cycles().checked_add(u64::MAX / 2).is_some());
            assert!(!class.label().is_empty());
        }
    }

    #[test]
    fn arrival_models_place_blocks() {
        assert_eq!(ArrivalModel::Backlogged.arrival_cycle(17), 0);
        let periodic = ArrivalModel::Periodic {
            interval_cycles: 1_000,
        };
        assert_eq!(periodic.arrival_cycle(0), 0);
        assert_eq!(periodic.arrival_cycle(3), 3_000);
    }

    #[test]
    fn phase_patterns_alternate() {
        assert_eq!(PhasePattern::Write.phase(5), AccessPhase::Write);
        assert_eq!(PhasePattern::Read.phase(5), AccessPhase::Read);
        assert_eq!(PhasePattern::Alternating.phase(0), AccessPhase::Write);
        assert_eq!(PhasePattern::Alternating.phase(1), AccessPhase::Read);
    }

    #[test]
    fn stream_spec_builder_defaults() {
        let spec = StreamSpec::new("t", InterleaverSpec::from_burst_count(100));
        assert_eq!(spec.qos, QosClass::Standard);
        assert_eq!(spec.blocks, 1);
        assert_eq!(spec.arrival, ArrivalModel::Backlogged);
        assert!(spec.requests_per_block() >= 100);
        assert_eq!(spec.with_blocks(0).blocks, 1);
    }
}
