//! Pluggable stream-selection policies.
//!
//! On every scheduler step each channel with free queue slots asks the
//! active [`SchedPolicy`] which ready stream should feed it next.  The
//! policy sees one [`CandidateView`] per ready stream and returns the index
//! of its choice; the scheduler then serves up to a policy-defined quantum
//! of requests from that stream before asking again, which amortises the
//! `O(candidates)` selection cost over a batch of enqueues.

/// Identifier of a scheduling policy, used in configuration, CLI flags and
/// records.
///
/// # Examples
///
/// ```
/// use tbi_sched::SchedPolicyKind;
///
/// let kind: SchedPolicyKind = "weighted_share".parse().unwrap();
/// assert_eq!(kind, SchedPolicyKind::WeightedShare);
/// assert_eq!(kind.to_string(), "weighted_share");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicyKind {
    /// Cycle through ready streams in index order, one pick each.
    RoundRobin,
    /// Share channel slots in proportion to each stream's QoS weight
    /// (start-time-fair virtual-time queueing).
    WeightedShare,
    /// Always serve the ready stream whose head block has the earliest
    /// deadline.
    Edf,
}

impl SchedPolicyKind {
    /// Every policy, in the order they appear in sweeps and artifacts.
    pub const ALL: [SchedPolicyKind; 3] = [
        SchedPolicyKind::RoundRobin,
        SchedPolicyKind::WeightedShare,
        SchedPolicyKind::Edf,
    ];

    /// Stable snake-case label used in records and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicyKind::RoundRobin => "round_robin",
            SchedPolicyKind::WeightedShare => "weighted_share",
            SchedPolicyKind::Edf => "edf",
        }
    }
}

impl std::fmt::Display for SchedPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SchedPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round_robin" | "rr" => Ok(SchedPolicyKind::RoundRobin),
            "weighted_share" | "ws" => Ok(SchedPolicyKind::WeightedShare),
            "edf" => Ok(SchedPolicyKind::Edf),
            other => Err(format!(
                "unknown policy '{other}' (expected round_robin, weighted_share or edf)"
            )),
        }
    }
}

/// A ready stream as seen by a policy when picking.
#[derive(Debug, Clone, Copy)]
pub struct CandidateView {
    /// Stream index.
    pub stream: u32,
    /// The stream's QoS bandwidth weight.
    pub weight: u32,
    /// Absolute deadline (device cycles) of the stream's oldest in-flight
    /// block.
    pub head_deadline: u64,
}

/// A stream-selection policy.
///
/// Implementations must be deterministic: the same candidate sequence and
/// `on_served` history must produce the same picks, because scheduler runs
/// are required to be bit-reproducible.
pub trait SchedPolicy {
    /// Which policy this is.
    fn kind(&self) -> SchedPolicyKind;

    /// Picks a stream for `channel` from `candidates` and returns its
    /// stream index.  `candidates` is never empty and is sorted by stream
    /// index.
    fn pick(&mut self, channel: u32, candidates: &[CandidateView]) -> u32;

    /// Informs the policy that `requests` requests of a stream with
    /// `weight` were just enqueued on behalf of `stream`.
    fn on_served(&mut self, stream: u32, requests: u64, weight: u32);

    /// How many requests the scheduler may serve from one pick before
    /// consulting the policy again.
    fn quantum(&self, weight: u32) -> usize;
}

/// Builds the policy implementation for `kind` over `streams` streams on
/// `channels` channels.
#[must_use]
pub fn build_policy(kind: SchedPolicyKind, streams: usize, channels: u32) -> Box<dyn SchedPolicy> {
    match kind {
        SchedPolicyKind::RoundRobin => Box::new(RoundRobin {
            cursor: vec![0; channels as usize],
        }),
        SchedPolicyKind::WeightedShare => Box::new(WeightedShare {
            vtime: vec![0; streams],
        }),
        SchedPolicyKind::Edf => Box::new(Edf),
    }
}

/// Round-robin: a per-channel cursor walks the stream indices; each pick
/// takes the first ready stream at or after the cursor.
struct RoundRobin {
    cursor: Vec<u32>,
}

impl SchedPolicy for RoundRobin {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::RoundRobin
    }

    fn pick(&mut self, channel: u32, candidates: &[CandidateView]) -> u32 {
        let cursor = &mut self.cursor[channel as usize];
        let picked = candidates
            .iter()
            .map(|c| c.stream)
            .find(|&s| s >= *cursor)
            .unwrap_or(candidates[0].stream);
        *cursor = picked + 1;
        picked
    }

    fn on_served(&mut self, _stream: u32, _requests: u64, _weight: u32) {}

    fn quantum(&self, _weight: u32) -> usize {
        usize::MAX
    }
}

/// Weighted bandwidth share via virtual time: serving `r` requests at
/// weight `w` advances the stream's virtual clock by `r × SCALE / w`, and
/// each pick takes the smallest `(vtime, stream)` — so long-run service is
/// proportional to weight regardless of arrival pattern.
struct WeightedShare {
    vtime: Vec<u64>,
}

/// Fixed-point scale for virtual-time arithmetic.
const VTIME_SCALE: u64 = 1 << 16;

impl SchedPolicy for WeightedShare {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::WeightedShare
    }

    fn pick(&mut self, _channel: u32, candidates: &[CandidateView]) -> u32 {
        candidates
            .iter()
            .min_by_key(|c| (self.vtime[c.stream as usize], c.stream))
            .map(|c| c.stream)
            .expect("candidates is never empty")
    }

    fn on_served(&mut self, stream: u32, requests: u64, weight: u32) {
        let weight = u64::from(weight.max(1));
        self.vtime[stream as usize] = self.vtime[stream as usize]
            .saturating_add(requests.saturating_mul(VTIME_SCALE) / weight);
    }

    fn quantum(&self, weight: u32) -> usize {
        16 * weight.max(1) as usize
    }
}

/// Earliest deadline first: each pick takes the smallest
/// `(head_deadline, stream)`.
struct Edf;

impl SchedPolicy for Edf {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::Edf
    }

    fn pick(&mut self, _channel: u32, candidates: &[CandidateView]) -> u32 {
        candidates
            .iter()
            .min_by_key(|c| (c.head_deadline, c.stream))
            .map(|c| c.stream)
            .expect("candidates is never empty")
    }

    fn on_served(&mut self, _stream: u32, _requests: u64, _weight: u32) {}

    fn quantum(&self, _weight: u32) -> usize {
        usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(stream: u32, weight: u32, head_deadline: u64) -> CandidateView {
        CandidateView {
            stream,
            weight,
            head_deadline,
        }
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in SchedPolicyKind::ALL {
            assert_eq!(kind.label().parse::<SchedPolicyKind>().unwrap(), kind);
        }
        assert!("bogus".parse::<SchedPolicyKind>().is_err());
    }

    #[test]
    fn round_robin_cycles_per_channel() {
        let mut policy = build_policy(SchedPolicyKind::RoundRobin, 3, 2);
        let candidates = [view(0, 1, 0), view(1, 1, 0), view(2, 1, 0)];
        assert_eq!(policy.pick(0, &candidates), 0);
        assert_eq!(policy.pick(0, &candidates), 1);
        // Channel 1 has its own cursor.
        assert_eq!(policy.pick(1, &candidates), 0);
        assert_eq!(policy.pick(0, &candidates), 2);
        // Cursor wraps.
        assert_eq!(policy.pick(0, &candidates), 0);
        // A missing stream is skipped.
        assert_eq!(policy.pick(0, &[view(0, 1, 0), view(2, 1, 0)]), 2);
    }

    #[test]
    fn weighted_share_serves_in_weight_proportion() {
        let mut policy = build_policy(SchedPolicyKind::WeightedShare, 2, 1);
        let candidates = [view(0, 4, 0), view(1, 1, 0)];
        let mut served = [0u64; 2];
        for _ in 0..100 {
            let picked = policy.pick(0, &candidates);
            let quantum = policy.quantum(candidates[picked as usize].weight) as u64;
            served[picked as usize] += quantum;
            policy.on_served(picked, quantum, candidates[picked as usize].weight);
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (ratio - 4.0).abs() < 1.0,
            "expected ~4:1 service ratio, got {ratio} ({served:?})"
        );
    }

    #[test]
    fn edf_takes_earliest_deadline_with_stream_tiebreak() {
        let mut policy = build_policy(SchedPolicyKind::Edf, 3, 1);
        assert_eq!(
            policy.pick(0, &[view(0, 1, 900), view(1, 1, 100), view(2, 1, 500)]),
            1
        );
        assert_eq!(policy.pick(0, &[view(1, 1, 700), view(2, 1, 700)]), 1);
    }

    #[test]
    fn single_candidate_is_always_picked() {
        for kind in SchedPolicyKind::ALL {
            let mut policy = build_policy(kind, 4, 2);
            for _ in 0..5 {
                assert_eq!(policy.pick(1, &[view(3, 2, 42)]), 3, "{kind}");
            }
        }
    }
}
