//! # tbi — triangular block interleavers mapped to DRAM
//!
//! Facade crate for the reproduction of *"A Mapping of Triangular Block
//! Interleavers to DRAM for Optical Satellite Communication"* (DATE 2024).
//! It re-exports the three workspace layers so that applications can depend
//! on a single crate:
//!
//! * [`dram`] — the cycle-accurate DRAM device/controller model
//!   ([`tbi_dram`]);
//! * [`interleaver`] — triangular block interleavers and the DRAM address
//!   mappings, including the paper's optimized mapping
//!   ([`tbi_interleaver`]);
//! * [`satcom`] — Reed–Solomon FEC, burst channels and the end-to-end
//!   optical-downlink simulation ([`tbi_satcom`]).
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ## Example
//!
//! Compare the row-major and optimized mappings on LPDDR4-4266 (one cell pair
//! of the paper's Table I):
//!
//! ```
//! use tbi::{DramConfig, DramStandard, InterleaverSpec, MappingKind, ThroughputEvaluator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dram = DramConfig::preset(DramStandard::Lpddr4, 4266)?;
//! let evaluator = ThroughputEvaluator::new(dram, InterleaverSpec::from_burst_count(20_000));
//! let (row_major, optimized) = evaluator.evaluate_table1_pair()?;
//! assert!(optimized.min_utilization() > row_major.min_utilization());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tbi_dram as dram;
pub use tbi_interleaver as interleaver;
pub use tbi_satcom as satcom;

pub use tbi_dram::{
    ControllerConfig, DramConfig, DramStandard, MemorySystem, PagePolicy, PhysicalAddress,
    RefreshMode, Request, SchedulingPolicy, Stats,
};
pub use tbi_interleaver::{
    AccessPhase, BlockInterleaver, DramMapping, InterleaverSpec, MappingKind, OptimizedMapping,
    RowMajorMapping, ThroughputEvaluator, TraceGenerator, TriangularInterleaver,
    TwoStageInterleaver, UtilizationReport,
};
pub use tbi_satcom::{
    BandwidthBudget, CoherenceFading, GilbertElliott, LinkConfig, LinkReport, LinkSimulation,
    ReedSolomon,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_usable() {
        let config = crate::DramConfig::preset(crate::DramStandard::Ddr3, 800).unwrap();
        assert_eq!(config.label(), "DDR3-800");
        let interleaver = crate::TriangularInterleaver::new(8).unwrap();
        assert_eq!(interleaver.len(), 36);
        let rs = crate::ReedSolomon::ccsds();
        assert_eq!(rs.code_len(), 255);
    }
}
