//! # tbi — triangular block interleavers mapped to DRAM
//!
//! Facade crate for the reproduction of *"A Mapping of Triangular Block
//! Interleavers to DRAM for Optical Satellite Communication"* (DATE 2024).
//! It re-exports the three workspace layers so that applications can depend
//! on a single crate:
//!
//! * [`dram`] — the cycle-accurate DRAM device/controller model
//!   ([`tbi_dram`]);
//! * [`interleaver`] — triangular block interleavers and the DRAM address
//!   mappings, including the paper's optimized mapping
//!   ([`tbi_interleaver`]);
//! * [`satcom`] — Reed–Solomon FEC, burst channels and the end-to-end
//!   optical-downlink simulation ([`tbi_satcom`]);
//! * [`sched`] — the multi-tenant stream scheduler: QoS policies,
//!   admission control and per-tenant latency histograms ([`tbi_sched`]);
//! * [`exp`] — the declarative [`Scenario`]/[`SweepGrid`]/[`Experiment`]
//!   evaluation layer with parallel sweeps and JSON/CSV results
//!   ([`tbi_exp`]).
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ## Example
//!
//! Compare the row-major and optimized mappings on LPDDR4-4266 (one cell pair
//! of the paper's Table I) through the experiment layer:
//!
//! ```
//! use tbi::{DramStandard, MappingKind, SweepGrid};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let records = SweepGrid::new()
//!     .preset(DramStandard::Lpddr4, 4266)?
//!     .size(20_000)
//!     .mappings(MappingKind::TABLE1)
//!     .into_experiment()
//!     .run()?;
//! let [row_major, optimized] = &records[..] else { unreachable!() };
//! assert!(optimized.min_utilization > row_major.min_utilization);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tbi_dram as dram;
pub use tbi_exp as exp;
pub use tbi_interleaver as interleaver;
pub use tbi_satcom as satcom;
pub use tbi_sched as sched;

pub use tbi_dram::{
    AddressField, BitPermutation, ChannelRouter, ChannelTopology, CombinedStats, ControllerConfig,
    DramConfig, DramStandard, MemorySystem, PagePolicy, PermutationMapping, PhysicalAddress,
    RefreshMode, Request, SchedulingPolicy, Stats, TimingEngine,
};
pub use tbi_exp::{
    Campaign, CampaignConfig, CampaignReport, ExpError, Experiment, FrontierPoint, LinkRecord,
    LinkStage, MappingSearch, PresetFrontier, Record, RefreshSetting, Scenario, SearchRecord,
    SearchSettings, SweepGrid,
};
pub use tbi_interleaver::{
    AccessPhase, BlockInterleaver, ChannelMapping, ChannelUtilizationReport, DramMapping,
    InterleaverSpec, MappingKind, OptimizedMapping, RowMajorMapping, ThroughputEvaluator,
    TileOrder, TraceGenerator, TriangularInterleaver, TwoStageInterleaver, UtilizationReport,
};
pub use tbi_satcom::{
    BandwidthBudget, CoherenceFading, GilbertElliott, LinkConfig, LinkProfile, LinkReport,
    LinkSimulation, PassSegment, ReedSolomon, Weather,
};
pub use tbi_sched::{
    LatencyHistogram, QosClass, SchedConfig, SchedPolicyKind, SchedReport, StreamScheduler,
    StreamSpec, TenantReport,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_usable() {
        let config = crate::DramConfig::preset(crate::DramStandard::Ddr3, 800).unwrap();
        assert_eq!(config.label(), "DDR3-800");
        let interleaver = crate::TriangularInterleaver::new(8).unwrap();
        assert_eq!(interleaver.len(), 36);
        let rs = crate::ReedSolomon::ccsds();
        assert_eq!(rs.code_len(), 255);
    }
}
