//! Property and determinism tests for the sweep engine.

use std::collections::HashSet;

use proptest::prelude::*;
use tbi_dram::standards::ALL_CONFIGS;
use tbi_exp::{RefreshSetting, Scenario, SweepGrid};
use tbi_interleaver::MappingKind;

/// Builds a grid from index vectors into the preset/mapping tables plus raw
/// sizes; duplicates in the inputs are intentional — the grid must dedupe.
fn grid_from(
    preset_idx: &[usize],
    sizes: &[u64],
    mapping_idx: &[usize],
    refresh: usize,
) -> SweepGrid {
    let mut grid = SweepGrid::new();
    for &p in preset_idx {
        let (standard, rate) = ALL_CONFIGS[p % ALL_CONFIGS.len()];
        grid = grid.preset(standard, rate).expect("preset exists");
    }
    grid = grid.sizes(sizes.iter().copied());
    for &m in mapping_idx {
        grid = grid.mapping(MappingKind::ALL[m % MappingKind::ALL.len()]);
    }
    match refresh % 3 {
        0 => grid, // untouched axis: implicit default
        1 => grid.refresh(RefreshSetting::Disabled),
        _ => grid.refresh_axis(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The expansion count equals the product of the (deduplicated) axis
    /// lengths, and every derived scenario ID is unique.
    #[test]
    fn expansion_count_is_axis_product_and_ids_are_unique(
        preset_idx in proptest::collection::vec(0usize..10, 1..6),
        sizes in proptest::collection::vec(100u64..100_000, 1..5),
        mapping_idx in proptest::collection::vec(0usize..5, 1..6),
        refresh in 0usize..3,
    ) {
        let grid = grid_from(&preset_idx, &sizes, &mapping_idx, refresh);
        let [drams, channels, ranks, size_axis, mappings, refresh_axis] = grid.axis_lengths();
        // Channel/rank axes default to the single-valued [1].
        prop_assert_eq!(channels, 1);
        prop_assert_eq!(ranks, 1);
        let product = drams * channels * ranks * size_axis * mappings * refresh_axis;
        prop_assert_eq!(grid.len(), product);

        let scenarios = grid.scenarios();
        prop_assert_eq!(scenarios.len(), product);

        let ids: HashSet<String> = scenarios.iter().map(Scenario::id).collect();
        prop_assert_eq!(ids.len(), scenarios.len(), "scenario IDs must be unique");

        // Axis lengths never exceed the (possibly duplicated) input lengths.
        prop_assert!(drams <= preset_idx.len());
        prop_assert!(size_axis <= sizes.len());
        prop_assert!(mappings <= mapping_idx.len());
        prop_assert!(refresh_axis <= 2);
    }

    /// Expanding the same grid twice yields identical scenario IDs in
    /// identical order (the expansion is deterministic).
    #[test]
    fn expansion_is_deterministic(
        preset_idx in proptest::collection::vec(0usize..10, 1..4),
        sizes in proptest::collection::vec(100u64..10_000, 1..4),
        mapping_idx in proptest::collection::vec(0usize..5, 1..4),
        refresh in 0usize..3,
    ) {
        let a = grid_from(&preset_idx, &sizes, &mapping_idx, refresh);
        let b = grid_from(&preset_idx, &sizes, &mapping_idx, refresh);
        let ids_a: Vec<String> = a.scenarios().iter().map(Scenario::id).collect();
        let ids_b: Vec<String> = b.scenarios().iter().map(Scenario::id).collect();
        prop_assert_eq!(ids_a, ids_b);
    }
}

/// A 1-worker and an N-worker run of the same experiment produce identical
/// record vectors — bit-exact, including the scenario order.
#[test]
fn single_and_multi_worker_runs_are_identical() {
    let grid = || {
        SweepGrid::new()
            .preset(tbi_dram::DramStandard::Ddr4, 3200)
            .unwrap()
            .preset(tbi_dram::DramStandard::Lpddr4, 4266)
            .unwrap()
            .sizes([1_500, 4_000])
            .mappings(MappingKind::TABLE1)
            .refresh_axis()
    };
    let sequential = grid().into_experiment().with_workers(1).run().unwrap();
    assert_eq!(sequential.len(), 2 * 2 * 2 * 2);
    for workers in [2, 4, 7] {
        let parallel = grid()
            .into_experiment()
            .with_workers(workers)
            .run()
            .unwrap();
        assert_eq!(
            sequential, parallel,
            "records diverged at {workers} workers"
        );
    }
}

/// Refresh-axis scenarios really differ: the disabled-refresh record of a
/// refresh-sensitive configuration must be at least as good and issue no
/// refresh energy.
#[test]
fn refresh_axis_produces_distinct_records() {
    let records = SweepGrid::new()
        .preset(tbi_dram::DramStandard::Ddr4, 1600)
        .unwrap()
        .size(30_000)
        .mapping(MappingKind::Optimized)
        .refresh_axis()
        .into_experiment()
        .with_workers(2)
        .run()
        .unwrap();
    assert_eq!(records.len(), 2);
    let (standard, disabled) = (&records[0], &records[1]);
    assert!(!standard.refresh_disabled);
    assert!(disabled.refresh_disabled);
    assert!(disabled.min_utilization >= standard.min_utilization);
}
