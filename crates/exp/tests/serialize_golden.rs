//! Golden snapshot tests for the `tbi_exp` JSON and CSV serializers.
//!
//! The serialized byte streams of a fixed record set are committed under
//! `tests/fixtures/`; any schema change — a new column, a reordering, a
//! float-formatting change — fails these tests and forces the fixture (and
//! therefore the change) to be a conscious choice.  The JSON fixture must
//! additionally round-trip through the crate's own validating parser.
//!
//! Regenerating the fixtures after an intentional schema change:
//!
//! ```text
//! TBI_BLESS_GOLDEN=1 cargo test -p tbi_exp --test serialize_golden
//! ```

use tbi_exp::json::{parse, JsonValue};
use tbi_exp::serialize::{records_to_csv, records_to_json, CSV_HEADER};
use tbi_exp::{LinkRecord, Record, TenantLatency, TenantSummary};

const JSON_FIXTURE: &str = include_str!("fixtures/records_golden.json");
const CSV_FIXTURE: &str = include_str!("fixtures/records_golden.csv");

/// A fixed, fully populated record set: a legacy single-channel record
/// without a link stage, a multi-channel/multi-rank record with a tenant
/// summary, and a record with a link stage plus characters that exercise
/// JSON/CSV escaping.
fn golden_records() -> Vec<Record> {
    vec![
        Record {
            scenario_id: "DDR4-3200/b20000/optimized/refresh=default".to_string(),
            dram_label: "DDR4-3200".to_string(),
            mapping: "optimized".to_string(),
            bursts: 20_000,
            dimension: 200,
            refresh_disabled: false,
            channels: 1,
            ranks: 1,
            write_utilization: 0.9719,
            read_utilization: 0.9561,
            min_utilization: 0.9561,
            sustained_gbps: 195.80928,
            aggregate_gbps: 195.80928,
            channel_utilization_spread: 0.0,
            write_row_hit_rate: 0.96875,
            read_row_hit_rate: 0.9375,
            activates: 1_250,
            energy_total_mj: 3.375,
            energy_nj_per_byte: 1.3125,
            simulated_cycles: 165_432,
            threads: 1,
            wall_time_s: 0.5,
            sim_cycles_per_second: 330_864.0,
            link: None,
            tenants: None,
        },
        Record {
            scenario_id: "LPDDR4-4266/b20000/optimized/refresh=off/c4r2".to_string(),
            dram_label: "LPDDR4-4266".to_string(),
            mapping: "optimized".to_string(),
            bursts: 20_000,
            dimension: 200,
            refresh_disabled: true,
            channels: 4,
            ranks: 2,
            write_utilization: 0.90625,
            read_utilization: 0.875,
            min_utilization: 0.875,
            sustained_gbps: 119.496,
            aggregate_gbps: 477.984,
            channel_utilization_spread: 0.03125,
            write_row_hit_rate: 0.9921875,
            read_row_hit_rate: 0.984375,
            activates: 5_000,
            energy_total_mj: 2.625,
            energy_nj_per_byte: 1.025390625,
            simulated_cycles: 700_416,
            threads: 1,
            wall_time_s: 0.25,
            sim_cycles_per_second: 2_801_664.0,
            link: None,
            tenants: Some(TenantSummary {
                policy: "weighted_share".to_string(),
                streams: 2,
                fairness_index: 0.8125,
                worst_p50_cycles: 2_047,
                worst_p99_cycles: 16_383,
                deadline_misses: 1,
                per_tenant: vec![
                    TenantLatency {
                        tenant: "tenant-0000".to_string(),
                        qos: "premium".to_string(),
                        requests: 20_100,
                        mean_latency_cycles: 768.5,
                        latency_saturated: false,
                        p50_latency_cycles: 511,
                        p99_latency_cycles: 2_047,
                        deadline_misses: 0,
                    },
                    TenantLatency {
                        tenant: "tenant-0001".to_string(),
                        qos: "standard".to_string(),
                        requests: 20_100,
                        mean_latency_cycles: 3_072.25,
                        latency_saturated: true,
                        p50_latency_cycles: 2_047,
                        p99_latency_cycles: 16_383,
                        deadline_misses: 1,
                    },
                ],
            }),
        },
        Record {
            scenario_id: "custom \"quoted\", with commas".to_string(),
            dram_label: "DDR3-800".to_string(),
            mapping: "row-major".to_string(),
            bursts: 5_000,
            dimension: 100,
            refresh_disabled: false,
            channels: 2,
            ranks: 1,
            write_utilization: 0.984375,
            read_utilization: 0.3577,
            min_utilization: 0.3577,
            sustained_gbps: 18.31424,
            aggregate_gbps: 36.62848,
            channel_utilization_spread: 0.0078125,
            write_row_hit_rate: 0.9990234375,
            read_row_hit_rate: 0.0107421875,
            activates: 10_000,
            energy_total_mj: 0.8125,
            energy_nj_per_byte: 2.5390625,
            simulated_cycles: 89_600,
            threads: 1,
            wall_time_s: 0.125,
            sim_cycles_per_second: 716_800.0,
            link: Some(LinkRecord {
                frame_error_rate: 0.015625,
                channel_symbol_error_rate: 0.05078125,
                residual_symbol_error_rate: 0.0009765625,
                post_fec_ber: 0.000244140625,
                code_rate: 0.875,
                interleaver_depth: 128,
            }),
            tenants: None,
        },
    ]
}

/// With `TBI_BLESS_GOLDEN=1`, rewrites the fixture files instead of
/// comparing (returns `true` when blessing happened).
fn bless(name: &str, contents: &str) -> bool {
    if std::env::var("TBI_BLESS_GOLDEN").is_err() {
        return false;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, contents).unwrap();
    eprintln!("blessed {}", path.display());
    true
}

#[test]
fn json_serialization_is_byte_identical_to_the_committed_fixture() {
    let json = records_to_json(&golden_records());
    if bless("records_golden.json", &json) {
        return;
    }
    assert_eq!(
        json, JSON_FIXTURE,
        "JSON schema drifted from tests/fixtures/records_golden.json — if \
         intentional, regenerate with TBI_BLESS_GOLDEN=1"
    );
}

#[test]
fn csv_serialization_is_byte_identical_to_the_committed_fixture() {
    let csv = records_to_csv(&golden_records());
    if bless("records_golden.csv", &csv) {
        return;
    }
    assert_eq!(
        csv, CSV_FIXTURE,
        "CSV schema drifted from tests/fixtures/records_golden.csv — if \
         intentional, regenerate with TBI_BLESS_GOLDEN=1"
    );
}

#[test]
fn committed_json_fixture_round_trips_through_the_parser() {
    let value = parse(JSON_FIXTURE).expect("committed fixture parses");
    let array = value.as_array().expect("top level is an array");
    let records = golden_records();
    assert_eq!(array.len(), records.len());
    for (object, record) in array.iter().zip(&records) {
        assert_eq!(
            object.get("scenario_id").and_then(JsonValue::as_str),
            Some(record.scenario_id.as_str())
        );
        assert_eq!(
            object.get("channels").and_then(JsonValue::as_f64),
            Some(f64::from(record.channels))
        );
        assert_eq!(
            object.get("ranks").and_then(JsonValue::as_f64),
            Some(f64::from(record.ranks))
        );
        assert_eq!(
            object.get("threads").and_then(JsonValue::as_f64),
            Some(f64::from(record.threads))
        );
        assert_eq!(
            object.get("aggregate_gbps").and_then(JsonValue::as_f64),
            Some(record.aggregate_gbps)
        );
        assert_eq!(
            object
                .get("channel_utilization_spread")
                .and_then(JsonValue::as_f64),
            Some(record.channel_utilization_spread)
        );
        assert_eq!(
            object.get("min_utilization").and_then(JsonValue::as_f64),
            Some(record.min_utilization)
        );
        match &record.link {
            None => assert!(matches!(object.get("link"), Some(JsonValue::Null))),
            Some(link) => {
                let parsed = object.get("link").expect("link object present");
                assert_eq!(
                    parsed.get("frame_error_rate").and_then(JsonValue::as_f64),
                    Some(link.frame_error_rate)
                );
            }
        }
        match &record.tenants {
            None => assert!(matches!(object.get("tenants"), Some(JsonValue::Null))),
            Some(tenants) => {
                let parsed = object.get("tenants").expect("tenants object present");
                assert_eq!(
                    parsed.get("policy").and_then(JsonValue::as_str),
                    Some(tenants.policy.as_str())
                );
                assert_eq!(
                    parsed.get("fairness_index").and_then(JsonValue::as_f64),
                    Some(tenants.fairness_index)
                );
                let per_tenant = parsed
                    .get("per_tenant")
                    .and_then(JsonValue::as_array)
                    .expect("per-tenant array present");
                assert_eq!(per_tenant.len(), tenants.per_tenant.len());
                for (entry, tenant) in per_tenant.iter().zip(&tenants.per_tenant) {
                    assert_eq!(
                        entry.get("tenant").and_then(JsonValue::as_str),
                        Some(tenant.tenant.as_str())
                    );
                    assert_eq!(
                        entry.get("p99_latency_cycles").and_then(JsonValue::as_f64),
                        Some(tenant.p99_latency_cycles as f64)
                    );
                    assert_eq!(
                        entry.get("latency_saturated").and_then(JsonValue::as_bool),
                        Some(tenant.latency_saturated)
                    );
                }
            }
        }
    }
}

#[test]
fn committed_csv_fixture_matches_the_header_contract() {
    let mut lines = CSV_FIXTURE.lines();
    assert_eq!(lines.next(), Some(CSV_HEADER));
    let columns = CSV_HEADER.split(',').count();
    assert_eq!(columns, 34, "column additions must update this contract");
    for line in lines {
        // Quoted fields may embed commas; strip quoted sections first.
        let mut in_quotes = false;
        let fields = line
            .chars()
            .filter(|&c| {
                if c == '"' {
                    in_quotes = !in_quotes;
                }
                c == ',' && !in_quotes
            })
            .count()
            + 1;
        assert_eq!(fields, columns, "row has wrong column count: {line}");
    }
}
