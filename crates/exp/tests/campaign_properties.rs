//! Determinism and regression tests for the campaign subsystem, plus
//! modern-preset acceptance for the mapping search.
//!
//! The campaign's claims only mean something if its measurements are
//! reproducible: the same seed and pass profile must yield bit-identical
//! error statistics, the worker count must never leak into the records, and
//! the link summary must survive the multi-channel execution path
//! unchanged.

use tbi_dram::{ChannelTopology, DramConfig, DramStandard};
use tbi_exp::{
    CampaignConfig, CampaignReport, Experiment, LinkStage, MappingSearch, Scenario, SearchSettings,
    SearchStrategy,
};
use tbi_interleaver::{InterleaverSpec, MappingKind};
use tbi_satcom::link::InterleaverChoice;
use tbi_satcom::{LinkConfig, LinkProfile, Weather};

/// A campaign small enough for the test suite but with both a paper and a
/// modern preset, two depths and two code rates.
fn small_campaign(seed: u64, workers: usize) -> CampaignReport {
    CampaignConfig::new(LinkProfile::leo_pass(45.0, Weather::Clear))
        .preset(DramStandard::Ddr4, 3200)
        .unwrap()
        .preset(DramStandard::Gddr6, 16000)
        .unwrap()
        .depths([4, 16])
        .code_rates([(239, 255), (223, 255)])
        .size(1_500)
        .trials(2)
        .seed(seed)
        .workers(workers)
        .build()
        .run()
        .unwrap()
}

/// Same seed + same profile ⇒ bit-identical records, including every link
/// error counter; a different campaign seed must actually change the
/// channel realisations.
#[test]
fn same_seed_and_profile_reproduce_bit_identical_error_statistics() {
    let a = small_campaign(7, 1);
    let b = small_campaign(7, 1);
    assert_eq!(a.records, b.records);
    assert_eq!(a.frontiers, b.frontiers);
    assert!(a.records.iter().all(|r| r.link.is_some()));

    let c = small_campaign(8, 1);
    let links_differ = a
        .records
        .iter()
        .zip(&c.records)
        .any(|(x, y)| x.link != y.link);
    assert!(
        links_differ,
        "a different campaign seed must reseed the link channels"
    );
}

/// The experiment worker pool must not leak into the results: a 1-worker
/// and an N-worker campaign are bit-identical, records and frontiers both.
#[test]
fn one_and_many_worker_campaigns_are_bit_identical() {
    let sequential = small_campaign(7, 1);
    for workers in [2, 5] {
        let parallel = small_campaign(7, workers);
        assert_eq!(
            sequential.records, parallel.records,
            "records diverged at {workers} workers"
        );
        assert_eq!(sequential.frontiers, parallel.frontiers);
    }
}

/// Regression for the multi-channel execution path: a 4-channel scenario
/// with the same link stage must carry the identical link summary as the
/// 1×1 run — the link is a transmission-side property and must not be
/// rescaled or dropped when the DRAM side fans out across channels.
#[test]
fn multi_channel_scenario_carries_the_same_link_summary_as_single_channel() {
    let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
    let spec = InterleaverSpec::from_burst_count(2_000);
    let stage = || {
        LinkStage::new(0.0)
            .with_config(LinkConfig {
                rs_code_len: 255,
                rs_data_len: 223,
                codewords: 8,
                interleaver: InterleaverChoice::Triangular,
            })
            .with_profile(LinkProfile::leo_pass(45.0, Weather::Clear))
            .with_seed(0xBEEF)
            .with_trials(2)
    };
    let records = Experiment::new(vec![
        Scenario::custom(dram.clone(), MappingKind::Optimized, spec).with_link(stage()),
        Scenario::custom(
            dram.with_topology(ChannelTopology::new(4, 1)),
            MappingKind::Optimized,
            spec,
        )
        .with_link(stage()),
    ])
    .run()
    .unwrap();

    assert_eq!(records[0].channels, 1);
    assert_eq!(records[1].channels, 4);
    let single = records[0].link.expect("1x1 run carries a link summary");
    let quad = records[1]
        .link
        .expect("4-channel run carries a link summary");
    assert_eq!(single, quad);
    assert!(
        single.channel_symbol_error_rate > 0.0,
        "the pass must corrupt symbols for the comparison to pin anything"
    );
    assert!((single.code_rate - 223.0 / 255.0).abs() < 1e-12);
    assert_eq!(single.interleaver_depth, 8);
}

/// Every modern preset must be accepted by the portfolio mapping search
/// end to end (baked topology included) without panicking, and produce a
/// well-formed record.
#[test]
fn portfolio_search_accepts_every_modern_preset() {
    let settings = SearchSettings {
        restarts: 2,
        budget: 6,
        neighbors: 2,
        workers: 1,
        strategy: SearchStrategy::Portfolio,
        surrogate_divisor: 4,
        ..SearchSettings::default()
    };
    for standard in DramStandard::MODERN {
        let rate = standard.paper_speed_grades()[1];
        let dram = DramConfig::preset(standard, rate).unwrap();
        let label = dram.label();
        let spec = InterleaverSpec::from_burst_count(4_000);
        let record = MappingSearch::new(dram, spec, settings).run().unwrap();
        assert_eq!(record.dram_label, label);
        assert!(
            record.row_hit_gain() > 0.0,
            "{label}: search must produce a comparable row-hit gain"
        );
    }
}
