//! Integration tests for the multi-tenant scenario mode.
//!
//! These cover the contracts the scheduler's own unit tests cannot see:
//! the scenario ID tagging, the record-level tenant summary, engine
//! equivalence of full records, and worker-count determinism of tenant
//! sweeps run through [`Experiment`].

use tbi_dram::{DramStandard, TimingEngine};
use tbi_exp::{Experiment, Scenario, TenantStage};
use tbi_interleaver::{InterleaverSpec, MappingKind};
use tbi_sched::SchedPolicyKind;

fn tenant_scenario(streams: u32, policy: SchedPolicyKind, engine: TimingEngine) -> Scenario {
    Scenario::preset(
        DramStandard::Ddr4,
        3200,
        MappingKind::Optimized,
        InterleaverSpec::from_burst_count(600),
    )
    .expect("preset builds")
    .with_engine(engine)
    .with_tenants(TenantStage::new(streams, policy))
}

#[test]
fn tenant_stage_tags_the_scenario_id() {
    let scenario = tenant_scenario(8, SchedPolicyKind::WeightedShare, TimingEngine::Event);
    let id = scenario.id();
    assert!(
        id.ends_with("/tenants=8xweighted_share"),
        "tenant tag missing from id: {id}"
    );
    // Distinct stages must produce distinct IDs so sweep records stay unique.
    let other = tenant_scenario(8, SchedPolicyKind::Edf, TimingEngine::Event);
    assert_ne!(id, other.id());
}

#[test]
fn tenant_record_reports_every_stream_with_consistent_quantiles() {
    let record = tenant_scenario(6, SchedPolicyKind::RoundRobin, TimingEngine::Event)
        .run()
        .expect("tenant scenario runs");
    let tenants = record.tenants.as_ref().expect("tenant summary present");
    assert_eq!(tenants.policy, "round_robin");
    assert_eq!(tenants.streams, 6);
    assert_eq!(tenants.per_tenant.len(), 6);
    assert!(
        tenants.fairness_index > 1.0 / 6.0 - 1e-12 && tenants.fairness_index <= 1.0 + 1e-12,
        "fairness index out of Jain bounds: {}",
        tenants.fairness_index
    );
    let mut total_requests = 0;
    for tenant in &tenants.per_tenant {
        assert!(tenant.requests > 0, "{} completed nothing", tenant.tenant);
        assert!(
            tenant.p99_latency_cycles >= tenant.p50_latency_cycles,
            "{}: p99 {} < p50 {}",
            tenant.tenant,
            tenant.p99_latency_cycles,
            tenant.p50_latency_cycles
        );
        assert!(tenant.mean_latency_cycles >= 0.0);
        assert!(
            ["premium", "standard", "best_effort"].contains(&tenant.qos.as_str()),
            "unknown QoS label {}",
            tenant.qos
        );
        total_requests += tenant.requests;
    }
    assert_eq!(
        tenants.worst_p99_cycles,
        tenants
            .per_tenant
            .iter()
            .map(|t| t.p99_latency_cycles)
            .max()
            .unwrap()
    );
    // Every stream pushes one full triangular block set through DRAM.
    let per_block = InterleaverSpec::from_burst_count(600).total_positions();
    let stage_blocks = 2; // TenantStage::new default
    assert_eq!(total_requests, 6 * stage_blocks * per_block);
    // The throughput columns are still populated in tenant mode.
    assert!(record.min_utilization > 0.0);
    assert!(record.aggregate_gbps > 0.0);
    assert!(record.simulated_cycles > 0);
}

#[test]
fn tenant_records_agree_across_timing_engines() {
    for policy in SchedPolicyKind::ALL {
        let event = tenant_scenario(4, policy, TimingEngine::Event)
            .run()
            .expect("event engine runs");
        let cycle = tenant_scenario(4, policy, TimingEngine::Cycle)
            .run()
            .expect("cycle engine runs");
        // Engine choice is part of the scenario ID; everything else must
        // agree bit-exactly, including the tenant summary.
        assert_eq!(event.tenants, cycle.tenants, "policy {policy}");
        assert_eq!(event.simulated_cycles, cycle.simulated_cycles);
        assert_eq!(event.min_utilization, cycle.min_utilization);
    }
}

#[test]
fn tenant_sweeps_are_deterministic_for_any_worker_count() {
    let scenarios = || {
        vec![
            tenant_scenario(5, SchedPolicyKind::RoundRobin, TimingEngine::Event),
            tenant_scenario(5, SchedPolicyKind::WeightedShare, TimingEngine::Event),
            tenant_scenario(5, SchedPolicyKind::Edf, TimingEngine::Event),
        ]
    };
    let serial = Experiment::new(scenarios())
        .with_workers(1)
        .run()
        .expect("serial sweep runs");
    let parallel = Experiment::new(scenarios())
        .with_workers(4)
        .run()
        .expect("parallel sweep runs");
    assert_eq!(serial, parallel, "records must not depend on worker count");
    assert_eq!(serial.len(), 3);
    for record in &serial {
        assert!(record.tenants.is_some());
    }
}
