//! A minimal JSON parser used to validate emitted artifacts.
//!
//! This is the read-side counterpart of [`crate::serialize`]: the workspace
//! cannot depend on `serde_json` (offline build), but tests and the CI smoke
//! run still need to prove that the JSON written by the experiment binaries
//! is well formed.  The parser supports the full JSON grammar except for
//! `\u` surrogate pairs (plain `\uXXXX` escapes are handled).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, with insertion order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(values) => Some(values),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message (with byte offset) for malformed input
/// or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                format!("invalid \\u escape `{hex}` at byte {}", self.pos)
                            })?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "invalid escape `{:?}` at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(values));
        }
        loop {
            self.skip_whitespace();
            values.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(values));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap().as_bool(), Some(false));
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let value = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        let a = value.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert!(matches!(a[2].get("b"), Some(JsonValue::Null)));
        assert_eq!(value.get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let value = parse(r#""line\nbreak A \"q\" ü""#).unwrap();
        assert_eq!(value.as_str(), Some("line\nbreak A \"q\" ü"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let value = parse("[1]").unwrap();
        assert!(value.get("a").is_none());
        assert!(value.as_str().is_none());
        assert!(value.as_f64().is_none());
        assert!(value.as_bool().is_none());
        assert!(parse("1").unwrap().as_array().is_none());
    }
}
