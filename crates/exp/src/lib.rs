//! # tbi-exp — declarative experiment sweeps over the tbi stack
//!
//! Every result in the source paper — Table I, Figure 1's schemes, the
//! refresh ablation, the interleaver-size sweep — is an instance of one
//! abstract operation: *run mapping × DRAM configuration × interleaver size ×
//! controller options and report utilization*.  This crate makes that
//! operation first class:
//!
//! * [`Scenario`] — one fully specified run: a DRAM preset or custom
//!   configuration, a [`MappingKind`](tbi_interleaver::MappingKind), an
//!   [`InterleaverSpec`](tbi_interleaver::InterleaverSpec), a controller
//!   configuration and an optional channel/FEC stage from `tbi_satcom`;
//! * [`SweepGrid`] — a Cartesian product of axes (DRAM configurations ×
//!   interleaver sizes × mappings × refresh settings) that expands into
//!   scenarios with stable, unique IDs;
//! * [`Experiment`] — runs scenarios across `std::thread` workers with
//!   deterministic result ordering (the output is identical for any worker
//!   count);
//! * [`Record`] — the typed result of one scenario (per-phase utilization,
//!   sustained bandwidth, row-hit rates, energy, optional link-level error
//!   rates), serializable to JSON and CSV without external dependencies
//!   ([`serialize`]);
//! * [`Campaign`] — end-to-end downlink campaigns: interleaver depth ×
//!   code rate × mapping × device preset under a shared time-varying
//!   [`LinkProfile`](tbi_satcom::LinkProfile) pass, reduced to per-preset
//!   post-FEC BER vs aggregate-bandwidth frontiers ([`campaign`]);
//! * [`MappingSearch`] — design-space exploration over bit-permutation
//!   address mappings: a seeded greedy bit-swap hill-climb with random
//!   restarts that *generates* mapping configurations instead of evaluating
//!   fixed ones ([`search`]).
//!
//! ## Quick start
//!
//! A three-axis sweep over two presets, two interleaver sizes and the
//! paper's Table I mapping pair:
//!
//! ```
//! use tbi_dram::DramStandard;
//! use tbi_interleaver::MappingKind;
//! use tbi_exp::SweepGrid;
//!
//! # fn main() -> Result<(), tbi_exp::ExpError> {
//! let experiment = SweepGrid::new()
//!     .preset(DramStandard::Ddr4, 3200)?
//!     .preset(DramStandard::Lpddr4, 4266)?
//!     .sizes([5_000, 20_000])
//!     .mappings(MappingKind::TABLE1)
//!     .into_experiment()
//!     .with_workers(4);
//! let records = experiment.run()?;
//! assert_eq!(records.len(), 2 * 2 * 2);
//! let json = tbi_exp::serialize::records_to_json(&records);
//! assert!(json.starts_with('['));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod grid;
pub mod json;
pub mod record;
pub mod runner;
pub mod scenario;
pub mod search;
pub mod serialize;

pub use campaign::{Campaign, CampaignConfig, CampaignReport, FrontierPoint, PresetFrontier};
pub use grid::{RefreshSetting, SweepGrid};
pub use record::{LinkRecord, Record, TenantLatency, TenantSummary};
pub use runner::Experiment;
pub use scenario::{LinkStage, Scenario, TenantStage};
pub use search::{MappingSearch, SearchRecord, SearchSettings, SearchStrategy};

use tbi_dram::ConfigError;
use tbi_interleaver::InterleaverError;
use tbi_satcom::SatcomError;

/// Errors produced while building or running experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpError {
    /// Interleaver construction or evaluation failed.
    Interleaver(InterleaverError),
    /// The DRAM configuration was rejected.
    Dram(ConfigError),
    /// The optional channel/FEC stage failed.
    Satcom(SatcomError),
    /// A specific scenario of an experiment failed.
    Scenario {
        /// The stable ID of the failing scenario.
        id: String,
        /// The full grid-axis value set of the failing scenario
        /// ([`Scenario`]'s `Display`), so a failing sweep cell is
        /// diagnosable from a CI log without re-running the sweep.
        detail: String,
        /// The underlying failure.
        source: Box<ExpError>,
    },
    /// Writing a result artifact failed.
    Io {
        /// Path of the artifact.
        path: String,
        /// Operating-system error message.
        message: String,
    },
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpError::Interleaver(e) => write!(f, "{e}"),
            ExpError::Dram(e) => write!(f, "DRAM configuration error: {e}"),
            ExpError::Satcom(e) => write!(f, "link stage error: {e}"),
            ExpError::Scenario { id, detail, source } => {
                write!(f, "scenario `{id}` ({detail}): {source}")
            }
            ExpError::Io { path, message } => write!(f, "cannot write `{path}`: {message}"),
        }
    }
}

impl std::error::Error for ExpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExpError::Interleaver(e) => Some(e),
            ExpError::Dram(e) => Some(e),
            ExpError::Satcom(e) => Some(e),
            ExpError::Scenario { source, .. } => Some(source),
            ExpError::Io { .. } => None,
        }
    }
}

impl From<InterleaverError> for ExpError {
    fn from(value: InterleaverError) -> Self {
        ExpError::Interleaver(value)
    }
}

impl From<ConfigError> for ExpError {
    fn from(value: ConfigError) -> Self {
        ExpError::Dram(value)
    }
}

impl From<SatcomError> for ExpError {
    fn from(value: SatcomError) -> Self {
        ExpError::Satcom(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nests_scenario_context() {
        let inner = ExpError::Interleaver(InterleaverError::CapacityExceeded {
            required_bursts: 100,
            available_bursts: 10,
        });
        let err = ExpError::Scenario {
            id: "DDR4-3200/b100/row-major/refresh=default".to_string(),
            detail: "dram=DDR4-3200 bursts=100 mapping=row-major".to_string(),
            source: Box::new(inner),
        };
        let text = err.to_string();
        assert!(text.contains("DDR4-3200"));
        assert!(text.contains("100 bursts"));
        assert!(
            text.contains("dram=DDR4-3200 bursts=100"),
            "axis detail missing: {text}"
        );
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn scenario_errors_from_experiments_carry_axis_values() {
        use tbi_interleaver::{InterleaverSpec, MappingKind};
        let scenario = Scenario::preset(
            tbi_dram::DramStandard::Ddr3,
            800,
            MappingKind::RowMajor,
            InterleaverSpec::from_burst_count(100_000_000_000),
        )
        .unwrap();
        let err = Experiment::new(vec![scenario]).run().unwrap_err();
        let text = err.to_string();
        for fragment in [
            "dram=DDR3-800",
            "bursts=100000000000",
            "mapping=row-major",
            "refresh=default",
            "engine=event",
        ] {
            assert!(text.contains(fragment), "`{fragment}` missing from: {text}");
        }
    }

    #[test]
    fn conversions_wrap_layer_errors() {
        let e: ExpError = InterleaverError::InvalidDimension {
            reason: "zero".to_string(),
        }
        .into();
        assert!(matches!(e, ExpError::Interleaver(_)));
        let e: ExpError = SatcomError::InvalidCodeParameters {
            reason: "k >= n".to_string(),
        }
        .into();
        assert!(matches!(e, ExpError::Satcom(_)));
    }
}
