//! Hand-rolled JSON and CSV serialization for [`Record`]s.
//!
//! The build environment has no crates.io access, so rather than pulling in
//! `serde` the record schema is flat and small enough to serialize by hand.
//! The emitted JSON is an array of objects (one per record, one per line);
//! the CSV uses a fixed header with empty link columns when no channel/FEC
//! stage ran.  [`crate::json::parse`] can re-parse the emitted JSON, which
//! the test-suite and the CI smoke run use to validate the artifacts.

use std::path::Path;

use crate::record::Record;
use crate::search::SearchRecord;
use crate::ExpError;

/// Escapes a string for embedding in a JSON document (quotes included).
#[must_use]
pub fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for non-finite values).
#[must_use]
pub fn json_number(value: f64) -> String {
    if value.is_finite() {
        // `Display` for f64 prints the shortest representation that parses
        // back to the same value, which is exactly what JSON wants.
        format!("{value}")
    } else {
        "null".to_string()
    }
}

fn tenants_to_json(summary: &crate::record::TenantSummary) -> String {
    let per_tenant: Vec<String> = summary
        .per_tenant
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\":{},\"qos\":{},\"requests\":{},\"mean_latency_cycles\":{},\
                 \"latency_saturated\":{},\"p50_latency_cycles\":{},\"p99_latency_cycles\":{},\
                 \"deadline_misses\":{}}}",
                json_string(&t.tenant),
                json_string(&t.qos),
                t.requests,
                json_number(t.mean_latency_cycles),
                t.latency_saturated,
                t.p50_latency_cycles,
                t.p99_latency_cycles,
                t.deadline_misses,
            )
        })
        .collect();
    format!(
        "{{\"policy\":{},\"streams\":{},\"fairness_index\":{},\"worst_p50_cycles\":{},\
         \"worst_p99_cycles\":{},\"deadline_misses\":{},\"per_tenant\":[{}]}}",
        json_string(&summary.policy),
        summary.streams,
        json_number(summary.fairness_index),
        summary.worst_p50_cycles,
        summary.worst_p99_cycles,
        summary.deadline_misses,
        per_tenant.join(","),
    )
}

fn record_to_json(record: &Record) -> String {
    let link = match &record.link {
        None => "null".to_string(),
        Some(l) => format!(
            "{{\"frame_error_rate\":{},\"channel_symbol_error_rate\":{},\"residual_symbol_error_rate\":{},\
             \"post_fec_ber\":{},\"code_rate\":{},\"interleaver_depth\":{}}}",
            json_number(l.frame_error_rate),
            json_number(l.channel_symbol_error_rate),
            json_number(l.residual_symbol_error_rate),
            json_number(l.post_fec_ber),
            json_number(l.code_rate),
            l.interleaver_depth,
        ),
    };
    format!(
        "{{\"scenario_id\":{},\"dram\":{},\"mapping\":{},\"bursts\":{},\"dimension\":{},\
         \"refresh_disabled\":{},\"channels\":{},\"ranks\":{},\"threads\":{},\"write_utilization\":{},\
         \"read_utilization\":{},\"min_utilization\":{},\"sustained_gbps\":{},\
         \"aggregate_gbps\":{},\"channel_utilization_spread\":{},\"write_row_hit_rate\":{},\
         \"read_row_hit_rate\":{},\"activates\":{},\"energy_total_mj\":{},\
         \"energy_nj_per_byte\":{},\"simulated_cycles\":{},\"wall_time_s\":{},\
         \"sim_cycles_per_second\":{},\"link\":{},\"tenants\":{}}}",
        json_string(&record.scenario_id),
        json_string(&record.dram_label),
        json_string(&record.mapping),
        record.bursts,
        record.dimension,
        record.refresh_disabled,
        record.channels,
        record.ranks,
        record.threads,
        json_number(record.write_utilization),
        json_number(record.read_utilization),
        json_number(record.min_utilization),
        json_number(record.sustained_gbps),
        json_number(record.aggregate_gbps),
        json_number(record.channel_utilization_spread),
        json_number(record.write_row_hit_rate),
        json_number(record.read_row_hit_rate),
        record.activates,
        json_number(record.energy_total_mj),
        json_number(record.energy_nj_per_byte),
        record.simulated_cycles,
        json_number(record.wall_time_s),
        json_number(record.sim_cycles_per_second),
        link,
        match &record.tenants {
            None => "null".to_string(),
            Some(summary) => tenants_to_json(summary),
        },
    )
}

/// Serializes records as a JSON array (one object per line).
#[must_use]
pub fn records_to_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, record) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&record_to_json(record));
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// The CSV header emitted by [`records_to_csv`] (34 columns).  The six link
/// columns are empty for records without a channel/FEC stage and the five
/// tenant columns for records without a multi-tenant stage; the per-tenant
/// breakdown is only available in the JSON form.
pub const CSV_HEADER: &str = "scenario_id,dram,mapping,bursts,dimension,refresh_disabled,\
channels,ranks,threads,write_utilization,read_utilization,min_utilization,sustained_gbps,\
aggregate_gbps,channel_utilization_spread,write_row_hit_rate,\
read_row_hit_rate,activates,energy_total_mj,energy_nj_per_byte,simulated_cycles,\
wall_time_s,sim_cycles_per_second,frame_error_rate,\
channel_symbol_error_rate,residual_symbol_error_rate,post_fec_ber,link_code_rate,\
link_interleaver_depth,tenant_policy,tenant_streams,\
tenant_fairness_index,tenant_worst_p50_cycles,tenant_worst_p99_cycles";

/// Quotes a CSV field if it contains a comma, quote or newline.
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Serializes records as CSV with a fixed header; the six link columns are
/// empty for records without a channel/FEC stage.
#[must_use]
pub fn records_to_csv(records: &[Record]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in records {
        let (fer, cser, rser, ber, rate, depth) = match &r.link {
            None => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            Some(l) => (
                json_number(l.frame_error_rate),
                json_number(l.channel_symbol_error_rate),
                json_number(l.residual_symbol_error_rate),
                json_number(l.post_fec_ber),
                json_number(l.code_rate),
                l.interleaver_depth.to_string(),
            ),
        };
        let (policy, streams, fairness, p50, p99) = match &r.tenants {
            None => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            Some(t) => (
                t.policy.clone(),
                t.streams.to_string(),
                json_number(t.fairness_index),
                t.worst_p50_cycles.to_string(),
                t.worst_p99_cycles.to_string(),
            ),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            csv_field(&r.scenario_id),
            csv_field(&r.dram_label),
            csv_field(&r.mapping),
            r.bursts,
            r.dimension,
            r.refresh_disabled,
            r.channels,
            r.ranks,
            r.threads,
            json_number(r.write_utilization),
            json_number(r.read_utilization),
            json_number(r.min_utilization),
            json_number(r.sustained_gbps),
            json_number(r.aggregate_gbps),
            json_number(r.channel_utilization_spread),
            json_number(r.write_row_hit_rate),
            json_number(r.read_row_hit_rate),
            r.activates,
            json_number(r.energy_total_mj),
            json_number(r.energy_nj_per_byte),
            r.simulated_cycles,
            json_number(r.wall_time_s),
            json_number(r.sim_cycles_per_second),
            fer,
            cser,
            rser,
            ber,
            rate,
            depth,
            csv_field(&policy),
            streams,
            fairness,
            p50,
            p99,
        ));
    }
    out
}

/// Serializes one [`SearchRecord`] as a JSON object; the three embedded
/// records use the regular [`Record`] schema.
fn search_record_to_json(record: &SearchRecord) -> String {
    format!(
        "{{\"dram\":{},\"seed\":{},\"restarts\":{},\"budget\":{},\"evaluations\":{},\
         \"surrogate_evaluations\":{},\"accepted_moves\":{},\"bursts\":{},\"permutation\":{},\
         \"fold\":{},\"discovered_row_hit_rate\":{},\"optimized_row_hit_rate\":{},\
         \"matches_or_beats_optimized\":{},\"beats_optimized\":{},\"row_hit_gain\":{},\
         \"utilization_gain\":{},\"best\":{},\"row_major\":{},\"optimized\":{}}}",
        json_string(&record.dram_label),
        record.seed,
        record.restarts,
        record.budget,
        record.evaluations,
        record.surrogate_evaluations,
        record.accepted_moves,
        record.bursts,
        json_string(&record.permutation),
        json_string(&record.fold),
        json_number(record.discovered_row_hit_rate()),
        json_number(record.optimized_row_hit_rate()),
        record.matches_or_beats_optimized(),
        record.beats_optimized(),
        json_number(record.row_hit_gain()),
        json_number(record.utilization_gain()),
        record_to_json(&record.best),
        record_to_json(&record.row_major),
        record_to_json(&record.optimized),
    )
}

/// Serializes search records as a JSON array (one object per line), the
/// search-layer counterpart of [`records_to_json`].
#[must_use]
pub fn search_records_to_json(records: &[SearchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, record) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&search_record_to_json(record));
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// The CSV header emitted by [`search_records_to_csv`] (18 columns).
pub const SEARCH_CSV_HEADER: &str = "dram,seed,restarts,budget,evaluations,\
surrogate_evaluations,accepted_moves,bursts,permutation,fold,discovered_row_hit_rate,\
optimized_row_hit_rate,row_major_row_hit_rate,discovered_min_utilization,\
optimized_min_utilization,row_hit_gain,utilization_gain,beats_optimized";

/// Serializes search records as flat CSV (summary metrics only; use the
/// JSON form for the full embedded records).
#[must_use]
pub fn search_records_to_csv(records: &[SearchRecord]) -> String {
    let mut out = String::from(SEARCH_CSV_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            csv_field(&r.dram_label),
            r.seed,
            r.restarts,
            r.budget,
            r.evaluations,
            r.surrogate_evaluations,
            r.accepted_moves,
            r.bursts,
            csv_field(&r.permutation),
            csv_field(&r.fold),
            json_number(r.discovered_row_hit_rate()),
            json_number(r.optimized_row_hit_rate()),
            json_number(crate::search::round_trip_row_hit_rate(&r.row_major)),
            json_number(r.best.min_utilization),
            json_number(r.optimized.min_utilization),
            json_number(r.row_hit_gain()),
            json_number(r.utilization_gain()),
            r.beats_optimized(),
        ));
    }
    out
}

/// Writes the JSON serialization of `records` to `path`.
///
/// # Errors
///
/// Returns [`ExpError::Io`] if the file cannot be written.
pub fn write_search_json(path: &Path, records: &[SearchRecord]) -> Result<(), ExpError> {
    write_artifact(path, &search_records_to_json(records))
}

/// Writes the CSV serialization of `records` to `path`.
///
/// # Errors
///
/// Returns [`ExpError::Io`] if the file cannot be written.
pub fn write_search_csv(path: &Path, records: &[SearchRecord]) -> Result<(), ExpError> {
    write_artifact(path, &search_records_to_csv(records))
}

fn write_artifact(path: &Path, contents: &str) -> Result<(), ExpError> {
    std::fs::write(path, contents).map_err(|e| ExpError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Writes the JSON serialization of `records` to `path`.
///
/// # Errors
///
/// Returns [`ExpError::Io`] if the file cannot be written.
pub fn write_json(path: &Path, records: &[Record]) -> Result<(), ExpError> {
    write_artifact(path, &records_to_json(records))
}

/// Writes the CSV serialization of `records` to `path`.
///
/// # Errors
///
/// Returns [`ExpError::Io`] if the file cannot be written.
pub fn write_csv(path: &Path, records: &[Record]) -> Result<(), ExpError> {
    write_artifact(path, &records_to_csv(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::record::LinkRecord;

    fn sample(id: &str, link: bool) -> Record {
        Record {
            scenario_id: id.to_string(),
            dram_label: "LPDDR4-4266".to_string(),
            mapping: "row-major".to_string(),
            bursts: 20_000,
            dimension: 200,
            refresh_disabled: false,
            channels: 2,
            ranks: 1,
            aggregate_gbps: 97.64,
            channel_utilization_spread: 0.0125,
            write_utilization: 0.9871,
            read_utilization: 0.3577,
            min_utilization: 0.3577,
            sustained_gbps: 48.82,
            write_row_hit_rate: 0.99,
            read_row_hit_rate: 0.01,
            activates: 40_000,
            energy_total_mj: 3.25,
            energy_nj_per_byte: 1.27,
            simulated_cycles: 123_456,
            threads: 1,
            wall_time_s: 0.5,
            sim_cycles_per_second: 246_912.0,
            link: link.then_some(LinkRecord {
                frame_error_rate: 0.015625,
                channel_symbol_error_rate: 0.05,
                residual_symbol_error_rate: 0.001,
                post_fec_ber: 0.000125,
                code_rate: 223.0 / 255.0,
                interleaver_depth: 64,
            }),
            tenants: None,
        }
    }

    fn tenant_summary() -> crate::record::TenantSummary {
        crate::record::TenantSummary {
            policy: "weighted_share".to_string(),
            streams: 2,
            fairness_index: 0.875,
            worst_p50_cycles: 4_000,
            worst_p99_cycles: 12_000,
            deadline_misses: 3,
            per_tenant: vec![
                crate::record::TenantLatency {
                    tenant: "tenant-0000".to_string(),
                    qos: "premium".to_string(),
                    requests: 1_000,
                    mean_latency_cycles: 1_234.5,
                    latency_saturated: false,
                    p50_latency_cycles: 1_000,
                    p99_latency_cycles: 4_000,
                    deadline_misses: 0,
                },
                crate::record::TenantLatency {
                    tenant: "tenant-0001".to_string(),
                    qos: "best_effort".to_string(),
                    requests: 1_000,
                    mean_latency_cycles: 6_789.0,
                    latency_saturated: false,
                    p50_latency_cycles: 8_000,
                    p99_latency_cycles: 12_000,
                    deadline_misses: 3,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let records = vec![sample("a", false), sample("b \"quoted\"", true)];
        let text = records_to_json(&records);
        let value = parse(&text).expect("emitted JSON parses");
        let array = value.as_array().expect("top level is an array");
        assert_eq!(array.len(), 2);
        let first = &array[0];
        assert_eq!(
            first.get("scenario_id").and_then(JsonValue::as_str),
            Some("a")
        );
        assert_eq!(
            first.get("read_utilization").and_then(JsonValue::as_f64),
            Some(0.3577)
        );
        assert!(matches!(first.get("link"), Some(JsonValue::Null)));
        let second = &array[1];
        assert_eq!(
            second.get("scenario_id").and_then(JsonValue::as_str),
            Some("b \"quoted\"")
        );
        let link = second.get("link").expect("link object");
        assert_eq!(
            link.get("frame_error_rate").and_then(JsonValue::as_f64),
            Some(0.015625)
        );
        assert_eq!(
            link.get("post_fec_ber").and_then(JsonValue::as_f64),
            Some(0.000125)
        );
        assert_eq!(
            link.get("code_rate").and_then(JsonValue::as_f64),
            Some(223.0 / 255.0)
        );
        assert_eq!(
            link.get("interleaver_depth").and_then(JsonValue::as_f64),
            Some(64.0)
        );
    }

    #[test]
    fn json_handles_non_finite_floats() {
        let mut record = sample("nan", false);
        record.sustained_gbps = f64::NAN;
        let text = records_to_json(&[record]);
        let value = parse(&text).expect("NaN serialized as null still parses");
        let first = &value.as_array().unwrap()[0];
        assert!(matches!(first.get("sustained_gbps"), Some(JsonValue::Null)));
    }

    #[test]
    fn timing_fields_serialize_non_finite_values_as_null() {
        // A zero-duration measurement window yields infinite cycles/second
        // (and a failed clock read can yield NaN wall time); both must emit
        // valid JSON `null`, not bare `inf`/`NaN` tokens the parser rejects.
        let mut record = sample("degenerate-timing", false);
        record.wall_time_s = f64::NAN;
        record.sim_cycles_per_second = f64::INFINITY;
        let text = records_to_json(&[record]);
        let value = parse(&text).expect("non-finite timing fields still parse");
        let first = &value.as_array().unwrap()[0];
        assert!(matches!(first.get("wall_time_s"), Some(JsonValue::Null)));
        assert!(matches!(
            first.get("sim_cycles_per_second"),
            Some(JsonValue::Null)
        ));
        // The finite fields of the same record are unaffected.
        assert_eq!(
            first.get("sustained_gbps").and_then(JsonValue::as_f64),
            Some(48.82)
        );
    }

    #[test]
    fn csv_has_header_and_one_line_per_record() {
        let records = vec![sample("a", false), sample("b", true)];
        let text = records_to_csv(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines[0].split(',').count(), 34);
        assert_eq!(lines[1].split(',').count(), 34);
        assert!(
            lines[1].ends_with(",,,,,,,,,,,"),
            "link and tenant columns empty: {}",
            lines[1]
        );
        assert!(lines[2].contains("0.015625"));
        assert!(lines[2].contains("0.000125"));
    }

    #[test]
    fn tenant_summary_round_trips_through_json_and_csv() {
        let mut record = sample("tenants", false);
        record.tenants = Some(tenant_summary());
        let text = records_to_json(&[record.clone()]);
        let value = parse(&text).expect("tenant JSON parses");
        let first = &value.as_array().unwrap()[0];
        let tenants = first.get("tenants").expect("tenants object");
        assert_eq!(
            tenants.get("policy").and_then(JsonValue::as_str),
            Some("weighted_share")
        );
        assert_eq!(
            tenants.get("fairness_index").and_then(JsonValue::as_f64),
            Some(0.875)
        );
        assert_eq!(
            tenants.get("worst_p99_cycles").and_then(JsonValue::as_f64),
            Some(12_000.0)
        );
        let per_tenant = tenants
            .get("per_tenant")
            .and_then(JsonValue::as_array)
            .expect("per-tenant array");
        assert_eq!(per_tenant.len(), 2);
        assert_eq!(
            per_tenant[1].get("qos").and_then(JsonValue::as_str),
            Some("best_effort")
        );
        assert_eq!(
            per_tenant[1]
                .get("p99_latency_cycles")
                .and_then(JsonValue::as_f64),
            Some(12_000.0)
        );
        // A record without tenants still serializes the field as null.
        let plain = records_to_json(&[sample("plain", false)]);
        let value = parse(&plain).unwrap();
        assert!(matches!(
            value.as_array().unwrap()[0].get("tenants"),
            Some(JsonValue::Null)
        ));
        // CSV carries the five summary columns.
        let csv = records_to_csv(&[record]);
        let line = csv.lines().nth(1).unwrap();
        assert_eq!(line.split(',').count(), 34);
        assert!(
            line.ends_with("weighted_share,2,0.875,4000,12000"),
            "{line}"
        );
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        let mut record = sample("id,with,commas", false);
        record.mapping = "has \"quotes\"".to_string();
        let text = records_to_csv(&[record]);
        assert!(text.contains("\"id,with,commas\""));
        assert!(text.contains("\"has \"\"quotes\"\"\""));
    }

    #[test]
    fn files_are_written_and_readable() {
        let dir = std::env::temp_dir().join("tbi_exp_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("records.json");
        let csv_path = dir.join("records.csv");
        let records = vec![sample("file", true)];
        write_json(&json_path, &records).unwrap();
        write_csv(&csv_path, &records).unwrap();
        let json_text = std::fs::read_to_string(&json_path).unwrap();
        assert!(parse(&json_text).is_ok());
        let csv_text = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv_text.starts_with("scenario_id,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_path_reports_io_error() {
        let path = Path::new("/nonexistent-dir-tbi/records.json");
        let err = write_json(path, &[]).unwrap_err();
        assert!(matches!(err, ExpError::Io { .. }));
    }
}
