//! One fully specified evaluation run.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tbi_dram::{
    ControllerConfig, DramConfig, DramStandard, EnergyParams, EnergyReport, RefreshMode,
    TimingEngine,
};
use tbi_interleaver::mapping::DramMapping;
use tbi_interleaver::{InterleaverSpec, MappingKind, ThroughputEvaluator};
use tbi_satcom::{GilbertElliott, LinkConfig, LinkProfile, LinkSimulation};

use tbi_sched::{
    PhasePattern, QosClass, SchedConfig, SchedPolicyKind, StreamScheduler, StreamSpec,
};

use crate::record::{LinkRecord, Record, TenantLatency, TenantSummary};
use crate::ExpError;

/// An optional end-to-end channel/FEC stage attached to a scenario.
///
/// When present, [`Scenario::run`] additionally pushes Reed–Solomon code
/// words through a burst channel (seeded, so results are reproducible) and
/// reports the link-level error rates in the record.  The channel is either
/// the static [`GilbertElliott`] optical-downlink model or — when a
/// [`LinkProfile`] is attached — a time-varying pass whose segments retune
/// the burst statistics over elevation and weather.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStage {
    /// Code and interleaver-choice parameters of the link simulation.
    pub config: LinkConfig,
    /// Burst (bad-state) error rate of the Gilbert–Elliott optical channel
    /// (ignored when `profile` is set).
    pub burst_error_rate: f64,
    /// RNG seed; identical seeds reproduce identical link records.
    pub seed: u64,
    /// Optional time-varying pass profile replacing the static channel.
    pub profile: Option<LinkProfile>,
    /// Number of independent interleaver blocks pushed through the channel
    /// (their counters accumulate before the rates are computed; clamped to
    /// at least 1).  More trials smooth the error-rate estimates.
    pub trials: u32,
}

impl LinkStage {
    /// Creates a link stage with the default CCSDS-style code and the given
    /// channel burst error rate.
    #[must_use]
    pub fn new(burst_error_rate: f64) -> Self {
        Self {
            config: LinkConfig::default(),
            burst_error_rate,
            seed: 0x7B1_5EED,
            profile: None,
            trials: 1,
        }
    }

    /// Replaces the link-simulation configuration.
    #[must_use]
    pub fn with_config(mut self, config: LinkConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a time-varying pass profile (replaces the static channel).
    #[must_use]
    pub fn with_profile(mut self, profile: LinkProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Sets the number of independent interleaver blocks per run.
    #[must_use]
    pub fn with_trials(mut self, trials: u32) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Runs the link simulation and summarizes it as a [`LinkRecord`].
    ///
    /// All trials draw from one seeded RNG stream in order, so the record is
    /// a pure function of the stage (bit-identical across repeat runs,
    /// worker counts and host threads).
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Satcom`] if the code or link configuration is
    /// invalid.
    pub fn run(&self) -> Result<LinkRecord, ExpError> {
        let simulation = LinkSimulation::new(self.config)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let trials = self.trials.max(1);
        let mut total: Option<tbi_satcom::LinkReport> = None;
        for _ in 0..trials {
            let report = match &self.profile {
                Some(profile) => simulation.run(profile, &mut rng)?,
                None => {
                    let channel = GilbertElliott::optical_downlink(self.burst_error_rate);
                    simulation.run(&channel, &mut rng)?
                }
            };
            match &mut total {
                Some(total) => total.accumulate(&report),
                None => total = Some(report),
            }
        }
        let report = total.expect("at least one trial ran");
        Ok(LinkRecord {
            frame_error_rate: report.frame_error_rate(),
            channel_symbol_error_rate: report.channel_symbol_error_rate(),
            residual_symbol_error_rate: report.residual_symbol_error_rate(),
            post_fec_ber: report.post_fec_ber(),
            code_rate: self.config.rs_data_len as f64 / self.config.rs_code_len as f64,
            interleaver_depth: self.config.codewords as u64,
        })
    }
}

/// An optional multi-tenant scheduling stage attached to a scenario.
///
/// When present, [`Scenario::run`] replaces the single-stream phase drivers
/// with a [`StreamScheduler`] multiplexing `streams` concurrent copies of
/// the scenario's interleaver over the shared channels, and attaches a
/// [`TenantSummary`] (per-tenant p50/p99 latency, fairness index, deadline
/// misses) to the record.  Streams get a fixed 1:2:1 QoS mix by index —
/// `premium` (index ≡ 0 mod 4), `standard` (1, 2), `best_effort` (3) — so
/// two runs differing only in `policy` are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStage {
    /// Number of concurrent tenant streams (clamped to at least 1).
    pub streams: u32,
    /// Stream-selection policy.
    pub policy: SchedPolicyKind,
    /// Triangular blocks each stream processes (alternating write/read
    /// phases; clamped to at least 1).
    pub blocks: u64,
    /// In-flight block budget (0 = auto: two blocks per stream).
    pub max_in_flight_blocks: usize,
}

impl TenantStage {
    /// Creates a tenant stage with `streams` streams under `policy`, two
    /// blocks per stream and the auto in-flight budget.
    #[must_use]
    pub fn new(streams: u32, policy: SchedPolicyKind) -> Self {
        Self {
            streams: streams.max(1),
            policy,
            blocks: 2,
            max_in_flight_blocks: 0,
        }
    }

    /// Sets the number of blocks per stream.
    #[must_use]
    pub fn with_blocks(mut self, blocks: u64) -> Self {
        self.blocks = blocks.max(1);
        self
    }

    /// Sets an explicit in-flight block budget.
    #[must_use]
    pub fn with_max_in_flight(mut self, blocks: usize) -> Self {
        self.max_in_flight_blocks = blocks;
        self
    }

    /// The QoS class of stream `index` under the fixed 1:2:1 mix.
    #[must_use]
    pub fn qos_for(index: u32) -> QosClass {
        match index % 4 {
            0 => QosClass::Premium,
            3 => QosClass::BestEffort,
            _ => QosClass::Standard,
        }
    }
}

/// One fully specified run: DRAM configuration, mapping scheme, interleaver
/// sizing, controller options and an optional link stage.
///
/// # Examples
///
/// ```
/// use tbi_dram::DramStandard;
/// use tbi_interleaver::{InterleaverSpec, MappingKind};
/// use tbi_exp::Scenario;
///
/// # fn main() -> Result<(), tbi_exp::ExpError> {
/// let scenario = Scenario::preset(
///     DramStandard::Lpddr4,
///     4266,
///     MappingKind::Optimized,
///     InterleaverSpec::from_burst_count(5_000),
/// )?;
/// let record = scenario.run()?;
/// assert_eq!(record.dram_label, "LPDDR4-4266");
/// assert!(record.min_utilization > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    dram: DramConfig,
    mapping: MappingKind,
    spec: InterleaverSpec,
    controller: ControllerConfig,
    link: Option<LinkStage>,
    tenants: Option<TenantStage>,
    custom_id: Option<String>,
    threads: usize,
}

impl Scenario {
    /// Creates a scenario on one of the paper's preset DRAM configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Dram`] if the (standard, data rate) pair is not a
    /// known preset.
    pub fn preset(
        standard: DramStandard,
        data_rate_mtps: u32,
        mapping: MappingKind,
        spec: InterleaverSpec,
    ) -> Result<Self, ExpError> {
        Ok(Self::custom(
            DramConfig::preset(standard, data_rate_mtps)?,
            mapping,
            spec,
        ))
    }

    /// Creates a scenario on an arbitrary (e.g. builder-produced) DRAM
    /// configuration.
    #[must_use]
    pub fn custom(dram: DramConfig, mapping: MappingKind, spec: InterleaverSpec) -> Self {
        Self {
            dram,
            mapping,
            spec,
            controller: ControllerConfig::default(),
            link: None,
            tenants: None,
            custom_id: None,
            threads: 1,
        }
    }

    /// Sets the worker-thread count used to drive the per-channel
    /// controllers (clamped to at least 1).  Results are bit-identical for
    /// any value — the thread count never enters [`Scenario::id`] and only
    /// affects [`Record::wall_time_s`]-class fields.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Replaces the controller configuration.
    #[must_use]
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// Disables refresh (the paper's in-text experiment, legal when the
    /// interleaver data lifetime stays below the DRAM refresh period).
    #[must_use]
    pub fn without_refresh(mut self) -> Self {
        self.controller.refresh_mode = Some(RefreshMode::Disabled);
        self
    }

    /// Selects the timing engine advancing the DRAM clock (the event-driven
    /// engine is the default; the cycle-accurate engine remains available as
    /// the reference for equivalence checks and benchmarks).
    #[must_use]
    pub fn with_engine(mut self, engine: TimingEngine) -> Self {
        self.controller.engine = engine;
        self
    }

    /// Attaches a channel/FEC stage whose error rates are reported alongside
    /// the DRAM metrics.
    #[must_use]
    pub fn with_link(mut self, link: LinkStage) -> Self {
        self.link = Some(link);
        self
    }

    /// Attaches a multi-tenant scheduling stage: the run multiplexes
    /// `stage.streams` concurrent copies of the interleaver through a
    /// [`StreamScheduler`] instead of the single-stream phase drivers.
    #[must_use]
    pub fn with_tenants(mut self, stage: TenantStage) -> Self {
        self.tenants = Some(stage);
        self
    }

    /// Overrides the derived scenario ID.
    #[must_use]
    pub fn with_id(mut self, id: impl Into<String>) -> Self {
        self.custom_id = Some(id.into());
        self
    }

    /// The stable scenario ID: either the explicit override or
    /// `<label>/b<bursts>/<mapping>/refresh=<mode>`, with a `/c<N>r<M>`
    /// suffix when the topology is not the single-channel, single-rank
    /// default (so legacy IDs are unchanged).
    #[must_use]
    pub fn id(&self) -> String {
        if let Some(id) = &self.custom_id {
            return id.clone();
        }
        let mut id = format!(
            "{}/b{}/{}/refresh={}",
            self.dram.label(),
            self.spec.burst_count(),
            self.mapping.label(),
            refresh_tag(self.controller.refresh_mode)
        );
        if !self.dram.topology.is_single() {
            id.push_str(&format!(
                "/c{}r{}",
                self.dram.topology.channels, self.dram.topology.ranks
            ));
        }
        if let Some(stage) = &self.tenants {
            id.push_str(&format!("/tenants={}x{}", stage.streams, stage.policy));
        }
        id
    }

    /// The DRAM configuration under evaluation.
    #[must_use]
    pub fn dram(&self) -> &DramConfig {
        &self.dram
    }

    /// The mapping scheme under evaluation.
    #[must_use]
    pub fn mapping(&self) -> MappingKind {
        self.mapping
    }

    /// The interleaver sizing under evaluation.
    #[must_use]
    pub fn spec(&self) -> &InterleaverSpec {
        &self.spec
    }

    /// The controller configuration used by the run.
    #[must_use]
    pub fn controller(&self) -> &ControllerConfig {
        &self.controller
    }

    /// The optional link stage.
    #[must_use]
    pub fn link(&self) -> Option<&LinkStage> {
        self.link.as_ref()
    }

    /// The optional multi-tenant stage.
    #[must_use]
    pub fn tenants(&self) -> Option<&TenantStage> {
        self.tenants.as_ref()
    }

    /// The throughput evaluator implied by the scenario.
    #[must_use]
    pub fn evaluator(&self) -> ThroughputEvaluator {
        ThroughputEvaluator::with_controller(self.dram.clone(), self.spec, self.controller)
            .with_threads(self.threads)
    }

    /// Builds the scenario's DRAM mapping (used e.g. to render Figure 1
    /// grids without running a simulation).
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Interleaver`] if the index space does not fit the
    /// device under this scheme.
    pub fn build_mapping(&self) -> Result<Box<dyn DramMapping>, ExpError> {
        Ok(self.mapping.build(&self.dram, self.spec.dimension())?)
    }

    /// Runs the scenario and collects a structured [`Record`].
    ///
    /// The DRAM simulation is timed with a monotonic clock; the resulting
    /// [`Record::wall_time_s`] and [`Record::sim_cycles_per_second`] record
    /// how fast the configured [`TimingEngine`]
    /// chewed through the simulated cycles (they are excluded from record
    /// equality, see [`Record`]).
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] if the mapping cannot be built, the interleaver
    /// does not fit the device, or the optional link stage fails.
    pub fn run(&self) -> Result<Record, ExpError> {
        if self.tenants.is_some() {
            self.run_tenant_mode()
        } else if self.dram.topology.is_single() {
            self.run_single_channel()
        } else {
            self.run_multi_channel()
        }
    }

    /// The legacy single-channel, single-rank path — kept verbatim so the
    /// `1 × 1` topology reproduces the Table I records bit-identically.
    fn run_single_channel(&self) -> Result<Record, ExpError> {
        let started = std::time::Instant::now();
        let report = self.evaluator().evaluate(self.mapping)?;
        let wall_time_s = started.elapsed().as_secs_f64();
        let mut totals = report.write.stats.clone();
        totals.merge(&report.read.stats);
        let simulated_cycles = totals.elapsed_cycles;
        let sim_cycles_per_second = if wall_time_s > 0.0 {
            simulated_cycles as f64 / wall_time_s
        } else {
            0.0
        };
        let energy =
            EnergyReport::from_stats(&totals, &self.dram, &EnergyParams::for_config(&self.dram));
        let link = self.link.as_ref().map(LinkStage::run).transpose()?;
        Ok(Record {
            scenario_id: self.id(),
            dram_label: self.dram.label(),
            mapping: self.mapping.label(),
            bursts: self.spec.burst_count(),
            dimension: self.spec.dimension(),
            refresh_disabled: self.controller.refresh_mode == Some(RefreshMode::Disabled),
            channels: 1,
            ranks: 1,
            write_utilization: report.write.utilization,
            read_utilization: report.read.utilization,
            min_utilization: report.min_utilization(),
            sustained_gbps: report.sustained_throughput_gbps(),
            aggregate_gbps: report.sustained_throughput_gbps(),
            channel_utilization_spread: 0.0,
            write_row_hit_rate: report.write.stats.row_hit_rate(),
            read_row_hit_rate: report.read.stats.row_hit_rate(),
            activates: totals.activates,
            energy_total_mj: energy.total_mj,
            energy_nj_per_byte: energy.nj_per_byte,
            simulated_cycles,
            threads: self.threads as u32,
            wall_time_s,
            sim_cycles_per_second,
            link,
            tenants: None,
        })
    }

    /// The multi-channel/multi-rank path: traffic is striped across the
    /// channels by the mapping's channel-aware variant, each channel runs
    /// under its own controller, and the per-channel statistics are
    /// aggregated (see
    /// [`ChannelRouter`](tbi_dram::channel::ChannelRouter)).
    fn run_multi_channel(&self) -> Result<Record, ExpError> {
        let started = std::time::Instant::now();
        let report = self.evaluator().evaluate_channels(self.mapping)?;
        let wall_time_s = started.elapsed().as_secs_f64();
        let params = EnergyParams::for_config(&self.dram);
        // Energy and counters per channel (each channel's device pays its
        // own background power over its own elapsed window), summed into
        // subsystem totals.
        let mut energy_total_mj = 0.0;
        let mut total_bytes = 0.0;
        let mut activates = 0u64;
        let mut simulated_cycles = 0u64;
        let channels = self.dram.topology.channels as usize;
        for channel in 0..channels {
            let mut totals = report.write.stats.per_channel()[channel].clone();
            totals.merge(&report.read.stats.per_channel()[channel]);
            let energy = EnergyReport::from_stats(&totals, &self.dram, &params);
            energy_total_mj += energy.total_mj;
            total_bytes += (totals.read_bursts + totals.write_bursts) as f64
                * f64::from(self.dram.geometry.burst_bytes());
            activates += totals.activates;
            simulated_cycles += totals.elapsed_cycles;
        }
        let energy_nj_per_byte = if total_bytes > 0.0 {
            energy_total_mj * 1e6 / total_bytes
        } else {
            0.0
        };
        let sim_cycles_per_second = if wall_time_s > 0.0 {
            simulated_cycles as f64 / wall_time_s
        } else {
            0.0
        };
        let aggregate_gbps = report.sustained_aggregate_gbps();
        let link = self.link.as_ref().map(LinkStage::run).transpose()?;
        let write_hit = report.write.stats.aggregate().row_hit_rate();
        let read_hit = report.read.stats.aggregate().row_hit_rate();
        Ok(Record {
            scenario_id: self.id(),
            dram_label: self.dram.label(),
            mapping: self.mapping.label(),
            bursts: self.spec.burst_count(),
            dimension: self.spec.dimension(),
            refresh_disabled: self.controller.refresh_mode == Some(RefreshMode::Disabled),
            channels: self.dram.topology.channels,
            ranks: self.dram.topology.ranks,
            write_utilization: report.write.utilization,
            read_utilization: report.read.utilization,
            min_utilization: report.min_utilization(),
            sustained_gbps: aggregate_gbps / f64::from(self.dram.topology.channels),
            aggregate_gbps,
            channel_utilization_spread: report.utilization_spread(),
            write_row_hit_rate: write_hit,
            read_row_hit_rate: read_hit,
            activates,
            energy_total_mj,
            energy_nj_per_byte,
            simulated_cycles,
            threads: self.threads as u32,
            wall_time_s,
            sim_cycles_per_second,
            link,
            tenants: None,
        })
    }

    /// The multi-tenant path: `streams` concurrent copies of the
    /// interleaver run through a [`StreamScheduler`] under the configured
    /// policy; the DRAM counters come from the scheduler's single combined
    /// statistics window (writes and reads interleave freely, so the two
    /// per-phase utilization columns both carry the combined window's bus
    /// utilization), and the per-tenant latency metrics fill
    /// [`Record::tenants`].
    fn run_tenant_mode(&self) -> Result<Record, ExpError> {
        let stage = self
            .tenants
            .expect("run_tenant_mode requires a tenant stage");
        let started = std::time::Instant::now();
        let streams: Vec<StreamSpec> = (0..stage.streams)
            .map(|index| {
                StreamSpec::new(format!("tenant-{index:04}"), *self.spec())
                    .with_qos(TenantStage::qos_for(index))
                    .with_mapping(self.mapping)
                    .with_pattern(PhasePattern::Alternating)
                    .with_blocks(stage.blocks)
            })
            .collect();
        let sched = SchedConfig::new(stage.policy)
            .with_max_in_flight(stage.max_in_flight_blocks)
            .with_threads(self.threads);
        let scheduler = StreamScheduler::new(self.dram.clone(), self.controller, streams, sched)
            .map_err(|error| match error {
                tbi_sched::SchedError::Config(e) => ExpError::Dram(e),
                tbi_sched::SchedError::Interleaver(e) => ExpError::Interleaver(e),
                tbi_sched::SchedError::NoStreams => {
                    unreachable!("tenant stage always builds at least one stream")
                }
            })?;
        let report = scheduler.run();
        let wall_time_s = started.elapsed().as_secs_f64();
        let params = EnergyParams::for_config(&self.dram);
        let mut energy_total_mj = 0.0;
        let mut total_bytes = 0.0;
        let mut activates = 0u64;
        let mut simulated_cycles = 0u64;
        for stats in report.stats.per_channel() {
            let energy = EnergyReport::from_stats(stats, &self.dram, &params);
            energy_total_mj += energy.total_mj;
            total_bytes += (stats.read_bursts + stats.write_bursts) as f64
                * f64::from(self.dram.geometry.burst_bytes());
            activates += stats.activates;
            simulated_cycles += stats.elapsed_cycles;
        }
        let energy_nj_per_byte = if total_bytes > 0.0 {
            energy_total_mj * 1e6 / total_bytes
        } else {
            0.0
        };
        let sim_cycles_per_second = if wall_time_s > 0.0 {
            simulated_cycles as f64 / wall_time_s
        } else {
            0.0
        };
        let utilization = report.stats.utilization();
        let aggregate_gbps = report
            .stats
            .aggregate_bandwidth_gbps(self.dram.clock_mhz(), self.dram.geometry.bus_width_bits);
        let row_hit_rate = report.stats.aggregate().row_hit_rate();
        let link = self.link.as_ref().map(LinkStage::run).transpose()?;
        let per_tenant = report
            .tenants
            .iter()
            .map(|tenant| TenantLatency {
                tenant: tenant.tenant.clone(),
                qos: tenant.qos.label().to_string(),
                requests: tenant.requests,
                mean_latency_cycles: tenant.latency.mean(),
                latency_saturated: tenant.latency_saturated(),
                p50_latency_cycles: tenant.latency.p50(),
                p99_latency_cycles: tenant.latency.p99(),
                deadline_misses: tenant.deadline_misses,
            })
            .collect();
        let tenants = TenantSummary {
            policy: report.policy.label().to_string(),
            streams: stage.streams,
            fairness_index: report.fairness_index(),
            worst_p50_cycles: report.worst_p50(),
            worst_p99_cycles: report.worst_p99(),
            deadline_misses: report.total_deadline_misses(),
            per_tenant,
        };
        Ok(Record {
            scenario_id: self.id(),
            dram_label: self.dram.label(),
            mapping: self.mapping.label(),
            bursts: self.spec.burst_count(),
            dimension: self.spec.dimension(),
            refresh_disabled: self.controller.refresh_mode == Some(RefreshMode::Disabled),
            channels: self.dram.topology.channels,
            ranks: self.dram.topology.ranks,
            write_utilization: utilization,
            read_utilization: utilization,
            min_utilization: utilization,
            sustained_gbps: aggregate_gbps / f64::from(self.dram.topology.channels),
            aggregate_gbps,
            channel_utilization_spread: report.stats.utilization_spread(),
            write_row_hit_rate: row_hit_rate,
            read_row_hit_rate: row_hit_rate,
            activates,
            energy_total_mj,
            energy_nj_per_byte,
            simulated_cycles,
            threads: self.threads as u32,
            wall_time_s,
            sim_cycles_per_second,
            link,
            tenants: Some(tenants),
        })
    }
}

/// The full grid-axis value set of the scenario, one line: DRAM label,
/// channel/rank topology, interleaver size and dimension, mapping, refresh
/// mode, scheduling/page policy, queue capacity and timing engine.
/// Experiment errors embed this so a failing sweep cell is diagnosable from
/// the log alone.
impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dram={} channels={} ranks={} bursts={} dimension={} mapping={} refresh={} \
             scheduling={:?} page_policy={:?} queue_capacity={} engine={}",
            self.dram.label(),
            self.dram.topology.channels,
            self.dram.topology.ranks,
            self.spec.burst_count(),
            self.spec.dimension(),
            self.mapping.label(),
            refresh_tag(self.controller.refresh_mode),
            self.controller.scheduling,
            self.controller.page_policy,
            self.controller.queue_capacity,
            self.controller.engine,
        )?;
        if let Some(stage) = &self.tenants {
            write!(
                f,
                " tenants={} policy={} blocks={}",
                stage.streams, stage.policy, stage.blocks
            )?;
        }
        Ok(())
    }
}

/// Short textual tag for a refresh-mode override (used in scenario IDs).
fn refresh_tag(mode: Option<RefreshMode>) -> &'static str {
    match mode {
        None => "default",
        Some(RefreshMode::AllBank) => "all-bank",
        Some(RefreshMode::PerBank) => "per-bank",
        Some(RefreshMode::Disabled) => "off",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> InterleaverSpec {
        InterleaverSpec::from_burst_count(2_000)
    }

    #[test]
    fn preset_scenario_derives_a_stable_id() {
        let s = Scenario::preset(
            DramStandard::Ddr4,
            3200,
            MappingKind::Optimized,
            small_spec(),
        )
        .unwrap();
        assert_eq!(s.id(), "DDR4-3200/b2000/optimized/refresh=default");
        assert_eq!(
            s.without_refresh().id(),
            "DDR4-3200/b2000/optimized/refresh=off"
        );
    }

    #[test]
    fn unknown_preset_is_rejected() {
        let err = Scenario::preset(
            DramStandard::Ddr4,
            1234,
            MappingKind::RowMajor,
            small_spec(),
        );
        assert!(matches!(err, Err(ExpError::Dram(_))));
    }

    #[test]
    fn display_carries_every_grid_axis_value() {
        let s = Scenario::preset(
            DramStandard::Lpddr5,
            8533,
            MappingKind::Optimized,
            small_spec(),
        )
        .unwrap()
        .without_refresh();
        let text = s.to_string();
        for fragment in [
            "dram=LPDDR5-8533",
            "bursts=2000",
            "dimension=",
            "mapping=optimized",
            "refresh=off",
            "scheduling=FrFcfs",
            "page_policy=Open",
            "queue_capacity=64",
            "engine=event",
        ] {
            assert!(text.contains(fragment), "`{fragment}` missing from {text}");
        }
    }

    #[test]
    fn with_engine_selects_the_timing_engine() {
        let s = Scenario::preset(
            DramStandard::Ddr4,
            3200,
            MappingKind::Optimized,
            small_spec(),
        )
        .unwrap();
        assert_eq!(s.controller().engine, TimingEngine::Event);
        let cycle = s.clone().with_engine(TimingEngine::Cycle);
        assert_eq!(cycle.controller().engine, TimingEngine::Cycle);
        assert!(cycle.to_string().contains("engine=cycle"));
        // Equal results either way — the records only differ in wall time.
        assert_eq!(s.run().unwrap(), cycle.run().unwrap());
    }

    #[test]
    fn records_report_simulation_speed() {
        let record = Scenario::preset(
            DramStandard::Ddr4,
            3200,
            MappingKind::Optimized,
            small_spec(),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(record.simulated_cycles > 0);
        assert!(record.wall_time_s > 0.0);
        assert!(record.sim_cycles_per_second > 0.0);
    }

    #[test]
    fn topology_appends_to_the_id_only_when_scaled_out() {
        use tbi_dram::ChannelTopology;
        let base = Scenario::preset(
            DramStandard::Ddr4,
            3200,
            MappingKind::Optimized,
            small_spec(),
        )
        .unwrap();
        assert_eq!(base.id(), "DDR4-3200/b2000/optimized/refresh=default");
        let mut scaled = base.clone();
        scaled.dram = scaled.dram.with_topology(ChannelTopology::new(2, 2));
        assert_eq!(
            scaled.id(),
            "DDR4-3200/b2000/optimized/refresh=default/c2r2"
        );
        let text = scaled.to_string();
        assert!(text.contains("channels=2"), "{text}");
        assert!(text.contains("ranks=2"), "{text}");
    }

    #[test]
    fn multi_channel_scenario_reports_aggregate_metrics() {
        use tbi_dram::ChannelTopology;
        let mut scenario = Scenario::preset(
            DramStandard::Ddr4,
            3200,
            MappingKind::Optimized,
            InterleaverSpec::from_burst_count(20_000),
        )
        .unwrap();
        let single = scenario.run().unwrap();
        scenario.dram = scenario.dram.with_topology(ChannelTopology::new(2, 1));
        let dual = scenario.run().unwrap();
        assert_eq!(dual.channels, 2);
        assert_eq!(dual.ranks, 1);
        assert!(dual.aggregate_gbps > 1.5 * single.aggregate_gbps);
        assert!((dual.sustained_gbps - dual.aggregate_gbps / 2.0).abs() < 1e-12);
        assert!(dual.channel_utilization_spread >= 0.0);
        assert!(dual.min_utilization > 0.5);
        assert!(dual.energy_total_mj > single.energy_total_mj * 0.5);
        // Both engines agree on the multi-channel path too.
        let cycle = scenario.clone().with_engine(TimingEngine::Cycle);
        assert_eq!(scenario.run().unwrap(), cycle.run().unwrap());
    }

    #[test]
    fn id_override_wins() {
        let s = Scenario::preset(DramStandard::Ddr3, 800, MappingKind::RowMajor, small_spec())
            .unwrap()
            .with_id("custom");
        assert_eq!(s.id(), "custom");
    }

    #[test]
    fn run_produces_consistent_record() {
        let s = Scenario::preset(
            DramStandard::Lpddr4,
            4266,
            MappingKind::Optimized,
            small_spec(),
        )
        .unwrap();
        let record = s.run().unwrap();
        assert_eq!(record.scenario_id, s.id());
        assert_eq!(record.mapping, "optimized");
        assert_eq!(record.bursts, 2_000);
        assert!(record.min_utilization <= record.write_utilization);
        assert!(record.min_utilization <= record.read_utilization);
        assert!(record.sustained_gbps > 0.0);
        assert!(record.energy_total_mj > 0.0);
        assert!(record.energy_nj_per_byte > 0.0);
        assert!(record.link.is_none());
    }

    #[test]
    fn oversized_interleaver_errors_cleanly() {
        let s = Scenario::preset(
            DramStandard::Ddr3,
            800,
            MappingKind::RowMajor,
            InterleaverSpec::from_burst_count(100_000_000_000),
        )
        .unwrap();
        assert!(matches!(s.run(), Err(ExpError::Interleaver(_))));
    }

    #[test]
    fn link_stage_is_reproducible() {
        let stage = LinkStage::new(0.05).with_seed(42);
        let a = stage.run().unwrap();
        let b = stage.run().unwrap();
        assert_eq!(a, b);
        assert!(a.frame_error_rate >= 0.0 && a.frame_error_rate <= 1.0);
    }

    #[test]
    fn scenario_with_link_reports_error_rates() {
        let s = Scenario::preset(
            DramStandard::Ddr3,
            800,
            MappingKind::Optimized,
            small_spec(),
        )
        .unwrap()
        .with_link(LinkStage::new(0.02).with_seed(7));
        let record = s.run().unwrap();
        let link = record.link.expect("link record present");
        assert!(link.channel_symbol_error_rate > 0.0);
    }

    #[test]
    fn build_mapping_matches_kind() {
        let s =
            Scenario::preset(DramStandard::Ddr4, 1600, MappingKind::Tiled, small_spec()).unwrap();
        let mapping = s.build_mapping().unwrap();
        assert_eq!(mapping.name(), "tiled");
        assert_eq!(mapping.dimension(), s.spec().dimension());
    }
}
