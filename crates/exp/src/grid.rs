//! Cartesian sweep grids that expand into scenarios.

use std::collections::HashSet;

use tbi_dram::{
    ChannelTopology, ControllerConfig, DramConfig, DramStandard, RefreshMode, TimingEngine,
};
use tbi_interleaver::{InterleaverSpec, MappingKind};

use crate::runner::Experiment;
use crate::scenario::{LinkStage, Scenario};
use crate::ExpError;

/// One value of the refresh axis of a [`SweepGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RefreshSetting {
    /// The standard's default refresh mode (all-bank for DDR3/DDR4, per-bank
    /// for DDR5/LPDDR4/LPDDR5).
    #[default]
    Standard,
    /// Refresh disabled (the paper's in-text experiment).
    Disabled,
}

impl RefreshSetting {
    /// The controller refresh-mode override selected by this setting.
    #[must_use]
    pub fn refresh_mode(self) -> Option<RefreshMode> {
        match self {
            RefreshSetting::Standard => None,
            RefreshSetting::Disabled => Some(RefreshMode::Disabled),
        }
    }
}

/// A declarative Cartesian product of evaluation axes.
///
/// The six axes are DRAM configurations, channel counts, rank counts,
/// interleaver sizes (bursts), mapping schemes and refresh settings.
/// [`SweepGrid::scenarios`] expands the product in a fixed nesting order
/// (DRAM → channels → ranks → size → mapping → refresh), so the resulting
/// scenario — and therefore record — order is stable.  Axis values are
/// deduplicated on insertion, which keeps the expansion count equal to the
/// product of the axis lengths and the derived scenario IDs unique.  The
/// channel and rank axes default to `[1]` (the paper's single-channel,
/// single-rank device) when left untouched.
///
/// # Examples
///
/// ```
/// use tbi_dram::DramStandard;
/// use tbi_interleaver::MappingKind;
/// use tbi_exp::SweepGrid;
///
/// # fn main() -> Result<(), tbi_exp::ExpError> {
/// let grid = SweepGrid::new()
///     .preset(DramStandard::Ddr3, 1600)?
///     .sizes([1_000, 4_000])
///     .mappings(MappingKind::TABLE1);
/// assert_eq!(grid.len(), 1 * 2 * 2);
/// let scenarios = grid.scenarios();
/// assert_eq!(scenarios.len(), 4);
/// // DRAM → size → mapping → refresh nesting:
/// assert_eq!(scenarios[0].id(), "DDR3-1600/b1000/row-major/refresh=default");
/// assert_eq!(scenarios[1].id(), "DDR3-1600/b1000/optimized/refresh=default");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    drams: Vec<DramConfig>,
    channels: Vec<u32>,
    ranks: Vec<u32>,
    sizes: Vec<u64>,
    mappings: Vec<MappingKind>,
    refresh: Vec<RefreshSetting>,
    controller: ControllerConfig,
    link: Option<LinkStage>,
    threads: usize,
}

impl SweepGrid {
    /// Creates an empty grid.
    ///
    /// The refresh axis defaults to the standard refresh mode when left
    /// untouched; the other three axes must be populated before the grid
    /// expands to anything.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one of the paper's preset DRAM configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Dram`] if the (standard, data rate) pair is not a
    /// known preset.
    pub fn preset(self, standard: DramStandard, data_rate_mtps: u32) -> Result<Self, ExpError> {
        Ok(self.dram(DramConfig::preset(standard, data_rate_mtps)?))
    }

    /// Adds all ten preset configurations in the paper's Table I order.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Dram`] if a preset fails to build (it cannot: all
    /// presets are validated).
    pub fn all_presets(mut self) -> Result<Self, ExpError> {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            self = self.preset(*standard, *rate)?;
        }
        Ok(self)
    }

    /// Adds an arbitrary DRAM configuration (duplicates are ignored).
    #[must_use]
    pub fn dram(mut self, config: DramConfig) -> Self {
        if !self.drams.contains(&config) {
            self.drams.push(config);
        }
        self
    }

    /// Adds one channel count to the channel axis (duplicates are ignored).
    /// Calling this at least once replaces the implicit default axis of
    /// `[1]`.
    #[must_use]
    pub fn channel_count(mut self, channels: u32) -> Self {
        if !self.channels.contains(&channels) {
            self.channels.push(channels);
        }
        self
    }

    /// Adds several channel counts.
    #[must_use]
    pub fn channels<I: IntoIterator<Item = u32>>(mut self, channels: I) -> Self {
        for c in channels {
            self = self.channel_count(c);
        }
        self
    }

    /// Adds one rank count to the rank axis (duplicates are ignored).
    /// Calling this at least once replaces the implicit default axis of
    /// `[1]`.
    #[must_use]
    pub fn rank_count(mut self, ranks: u32) -> Self {
        if !self.ranks.contains(&ranks) {
            self.ranks.push(ranks);
        }
        self
    }

    /// Adds several rank counts.
    #[must_use]
    pub fn ranks<I: IntoIterator<Item = u32>>(mut self, ranks: I) -> Self {
        for r in ranks {
            self = self.rank_count(r);
        }
        self
    }

    /// Adds one interleaver size in bursts (duplicates are ignored).
    #[must_use]
    pub fn size(mut self, bursts: u64) -> Self {
        if !self.sizes.contains(&bursts) {
            self.sizes.push(bursts);
        }
        self
    }

    /// Adds several interleaver sizes in bursts.
    #[must_use]
    pub fn sizes<I: IntoIterator<Item = u64>>(mut self, bursts: I) -> Self {
        for b in bursts {
            self = self.size(b);
        }
        self
    }

    /// Adds one mapping scheme (duplicates are ignored).
    #[must_use]
    pub fn mapping(mut self, kind: MappingKind) -> Self {
        if !self.mappings.contains(&kind) {
            self.mappings.push(kind);
        }
        self
    }

    /// Adds several mapping schemes.
    #[must_use]
    pub fn mappings<I: IntoIterator<Item = MappingKind>>(mut self, kinds: I) -> Self {
        for k in kinds {
            self = self.mapping(k);
        }
        self
    }

    /// Adds one refresh setting (duplicates are ignored).  Calling this at
    /// least once replaces the implicit default axis of
    /// [`RefreshSetting::Standard`].
    #[must_use]
    pub fn refresh(mut self, setting: RefreshSetting) -> Self {
        if !self.refresh.contains(&setting) {
            self.refresh.push(setting);
        }
        self
    }

    /// Adds both refresh settings, turning refresh into a swept axis.
    #[must_use]
    pub fn refresh_axis(self) -> Self {
        self.refresh(RefreshSetting::Standard)
            .refresh(RefreshSetting::Disabled)
    }

    /// Sets the base controller configuration applied to every scenario
    /// (the refresh axis overrides its refresh mode).
    #[must_use]
    pub fn controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// Selects the timing engine for every scenario of the grid (the
    /// event-driven engine is the default).
    #[must_use]
    pub fn engine(mut self, engine: TimingEngine) -> Self {
        self.controller.engine = engine;
        self
    }

    /// Attaches a channel/FEC stage to every scenario of the grid.
    #[must_use]
    pub fn link(mut self, link: LinkStage) -> Self {
        self.link = Some(link);
        self
    }

    /// Sets the intra-scenario worker-thread count applied to every
    /// scenario ([`Scenario::with_threads`]; results are bit-identical for
    /// any value).  This is orthogonal to the experiment-level worker pool,
    /// which parallelizes *across* scenarios.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Effective lengths of the six axes in nesting order
    /// (DRAM, channels, ranks, size, mapping, refresh).
    #[must_use]
    pub fn axis_lengths(&self) -> [usize; 6] {
        [
            self.drams.len(),
            self.effective_channels().len(),
            self.effective_ranks().len(),
            self.sizes.len(),
            self.mappings.len(),
            self.effective_refresh().len(),
        ]
    }

    /// Number of scenarios the grid expands to — the product of the axis
    /// lengths.
    #[must_use]
    pub fn len(&self) -> usize {
        self.axis_lengths().iter().product()
    }

    /// Whether the grid expands to no scenarios.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn effective_refresh(&self) -> Vec<RefreshSetting> {
        if self.refresh.is_empty() {
            vec![RefreshSetting::Standard]
        } else {
            self.refresh.clone()
        }
    }

    fn effective_channels(&self) -> Vec<u32> {
        if self.channels.is_empty() {
            vec![1]
        } else {
            self.channels.clone()
        }
    }

    fn effective_ranks(&self) -> Vec<u32> {
        if self.ranks.is_empty() {
            vec![1]
        } else {
            self.ranks.clone()
        }
    }

    /// Expands the Cartesian product into scenarios with stable, unique IDs.
    ///
    /// The nesting order is DRAM (outermost) → channels → ranks → size →
    /// mapping → refresh (innermost).  Should two distinct DRAM
    /// configurations share a label (custom geometries of the same speed
    /// grade), colliding IDs are disambiguated with a `#<k>` suffix —
    /// deterministically, so the IDs remain stable.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        let refresh = self.effective_refresh();
        let channels = self.effective_channels();
        let ranks = self.effective_ranks();
        let mut out = Vec::with_capacity(self.len());
        let mut seen: HashSet<String> = HashSet::with_capacity(self.len());
        for dram in &self.drams {
            for &channel_count in &channels {
                for &rank_count in &ranks {
                    let dram = dram
                        .clone()
                        .with_topology(ChannelTopology::new(channel_count, rank_count));
                    for &bursts in &self.sizes {
                        for &mapping in &self.mappings {
                            for &setting in &refresh {
                                let mut controller = self.controller;
                                controller.refresh_mode = match setting {
                                    RefreshSetting::Standard => self.controller.refresh_mode,
                                    RefreshSetting::Disabled => Some(RefreshMode::Disabled),
                                };
                                let mut scenario = Scenario::custom(
                                    dram.clone(),
                                    mapping,
                                    InterleaverSpec::from_burst_count(bursts),
                                )
                                .with_controller(controller)
                                .with_threads(self.threads.max(1));
                                if let Some(link) = &self.link {
                                    scenario = scenario.with_link(link.clone());
                                }
                                let base = scenario.id();
                                if !seen.insert(base.clone()) {
                                    let mut k = 2;
                                    let unique = loop {
                                        let candidate = format!("{base}#{k}");
                                        if seen.insert(candidate.clone()) {
                                            break candidate;
                                        }
                                        k += 1;
                                    };
                                    scenario = scenario.with_id(unique);
                                }
                                out.push(scenario);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Expands the grid and wraps the scenarios into an [`Experiment`].
    #[must_use]
    pub fn into_experiment(self) -> Experiment {
        Experiment::new(self.scenarios())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_axes_expand_to_nothing() {
        let grid = SweepGrid::new();
        assert_eq!(grid.len(), 0);
        assert!(grid.is_empty());
        assert!(grid.scenarios().is_empty());
    }

    #[test]
    fn expansion_count_is_product_of_axes() {
        let grid = SweepGrid::new()
            .all_presets()
            .unwrap()
            .sizes([1_000, 2_000, 3_000])
            .mappings(MappingKind::TABLE1)
            .refresh_axis();
        assert_eq!(grid.axis_lengths(), [10, 1, 1, 3, 2, 2]);
        assert_eq!(grid.len(), 120);
        assert_eq!(grid.scenarios().len(), 120);
    }

    #[test]
    fn channel_and_rank_axes_multiply_the_expansion() {
        let grid = SweepGrid::new()
            .preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .channels([1, 2, 4])
            .ranks([1, 2])
            .size(1_000)
            .mapping(MappingKind::Optimized);
        assert_eq!(grid.axis_lengths(), [1, 3, 2, 1, 1, 1]);
        assert_eq!(grid.len(), 6);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 6);
        // Nesting: channels outermost of the two, ranks inner.
        assert_eq!(
            scenarios[0].id(),
            "DDR4-3200/b1000/optimized/refresh=default"
        );
        assert_eq!(
            scenarios[1].id(),
            "DDR4-3200/b1000/optimized/refresh=default/c1r2"
        );
        assert_eq!(
            scenarios[2].id(),
            "DDR4-3200/b1000/optimized/refresh=default/c2r1"
        );
        assert_eq!(scenarios[2].dram().topology.channels, 2);
        assert_eq!(
            scenarios[5].dram().topology,
            tbi_dram::ChannelTopology::new(4, 2)
        );
        // IDs stay unique across the topology axis.
        let ids: HashSet<String> = scenarios.iter().map(Scenario::id).collect();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn duplicates_are_ignored_on_every_axis() {
        let grid = SweepGrid::new()
            .preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .sizes([5_000, 5_000])
            .mapping(MappingKind::Optimized)
            .mapping(MappingKind::Optimized)
            .refresh(RefreshSetting::Standard)
            .refresh(RefreshSetting::Standard)
            .channels([2, 2])
            .ranks([2, 2]);
        assert_eq!(grid.axis_lengths(), [1, 1, 1, 1, 1, 1]);
        assert_eq!(grid.len(), 1);
    }

    #[test]
    fn ids_are_unique_and_ordered_by_nesting() {
        let grid = SweepGrid::new()
            .preset(DramStandard::Ddr3, 800)
            .unwrap()
            .preset(DramStandard::Ddr3, 1600)
            .unwrap()
            .size(1_000)
            .mappings(MappingKind::TABLE1)
            .refresh_axis();
        let scenarios = grid.scenarios();
        let ids: Vec<String> = scenarios.iter().map(Scenario::id).collect();
        let unique: HashSet<&String> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        assert_eq!(ids[0], "DDR3-800/b1000/row-major/refresh=default");
        assert_eq!(ids[1], "DDR3-800/b1000/row-major/refresh=off");
        assert_eq!(ids[2], "DDR3-800/b1000/optimized/refresh=default");
        assert!(ids[4].starts_with("DDR3-1600/"));
    }

    #[test]
    fn label_collisions_get_deterministic_suffixes() {
        use tbi_dram::DramConfigBuilder;
        let base = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let variant = DramConfigBuilder::from_config(base.clone())
            .rows(1 << 14)
            .build()
            .unwrap();
        let grid = SweepGrid::new()
            .dram(base)
            .dram(variant)
            .size(1_000)
            .mapping(MappingKind::Optimized);
        let ids: Vec<String> = grid.scenarios().iter().map(Scenario::id).collect();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
        assert!(ids[1].ends_with("#2"), "got {}", ids[1]);
    }

    #[test]
    fn refresh_setting_maps_to_controller_mode() {
        assert_eq!(RefreshSetting::Standard.refresh_mode(), None);
        assert_eq!(
            RefreshSetting::Disabled.refresh_mode(),
            Some(RefreshMode::Disabled)
        );
        let scenarios = SweepGrid::new()
            .preset(DramStandard::Ddr3, 800)
            .unwrap()
            .size(500)
            .mapping(MappingKind::RowMajor)
            .refresh(RefreshSetting::Disabled)
            .scenarios();
        assert_eq!(
            scenarios[0].controller().refresh_mode,
            Some(RefreshMode::Disabled)
        );
    }

    #[test]
    fn engine_propagates_to_every_scenario() {
        let scenarios = SweepGrid::new()
            .preset(DramStandard::Ddr3, 800)
            .unwrap()
            .size(500)
            .mappings(MappingKind::TABLE1)
            .engine(TimingEngine::Cycle)
            .scenarios();
        assert!(scenarios
            .iter()
            .all(|s| s.controller().engine == TimingEngine::Cycle));
    }

    #[test]
    fn link_stage_propagates_to_every_scenario() {
        let scenarios = SweepGrid::new()
            .preset(DramStandard::Ddr3, 800)
            .unwrap()
            .size(500)
            .mappings(MappingKind::TABLE1)
            .link(LinkStage::new(0.05))
            .scenarios();
        assert!(scenarios.iter().all(|s| s.link().is_some()));
    }
}
