//! Structured results collected by experiments.

/// Link-level error rates from a scenario's optional channel/FEC stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkRecord {
    /// Frame (code word) error rate after decoding.
    pub frame_error_rate: f64,
    /// Symbol error rate on the channel (before decoding).
    pub channel_symbol_error_rate: f64,
    /// Residual (post-decoding) symbol error rate.
    pub residual_symbol_error_rate: f64,
    /// Post-FEC bit error rate over the payload data bits.
    pub post_fec_ber: f64,
    /// Reed–Solomon code rate `k/n` of the link stage.
    pub code_rate: f64,
    /// Interleaver depth of the link stage, in code words per block.
    pub interleaver_depth: u64,
}

/// Per-tenant latency metrics of one stream in a multi-tenant run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantLatency {
    /// Tenant identity.
    pub tenant: String,
    /// QoS class label (`premium` / `standard` / `best_effort`).
    pub qos: String,
    /// Completed requests of this tenant.
    pub requests: u64,
    /// Mean request latency in device cycles.  A lower bound when
    /// `latency_saturated` is set.
    pub mean_latency_cycles: f64,
    /// Whether the latency sum overflowed `u64` during accumulation — the
    /// scheduler's sticky saturation flag
    /// (`TenantReport::latency_saturated`); when `true` the mean above
    /// understates the truth and must not be trusted.
    pub latency_saturated: bool,
    /// Median request latency (conservative log2-bucket bound), cycles.
    pub p50_latency_cycles: u64,
    /// 99th-percentile request latency (conservative bound), cycles.
    pub p99_latency_cycles: u64,
    /// Blocks that finished after their QoS deadline.
    pub deadline_misses: u64,
}

/// Multi-tenant scheduling results attached to a [`Record`] when the
/// scenario ran in tenant mode.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Scheduling policy label (`round_robin` / `weighted_share` / `edf`).
    pub policy: String,
    /// Number of concurrent tenant streams.
    pub streams: u32,
    /// Jain fairness index over the tenants' mean latencies, in
    /// `[1/streams, 1]`.
    pub fairness_index: f64,
    /// Worst per-tenant p50 latency in device cycles.
    pub worst_p50_cycles: u64,
    /// Worst per-tenant p99 latency in device cycles.
    pub worst_p99_cycles: u64,
    /// Deadline misses summed over all tenants.
    pub deadline_misses: u64,
    /// Per-tenant breakdown, in stream order.
    pub per_tenant: Vec<TenantLatency>,
}

/// The typed result of one scenario run.
///
/// Records compare bit-exactly ([`PartialEq`]): the DRAM simulation is
/// deterministic, so two runs of the same scenario — regardless of worker
/// count or [timing engine](tbi_dram::TimingEngine) — produce identical
/// records.  The two **wall-clock** fields ([`Record::wall_time_s`] and
/// [`Record::sim_cycles_per_second`]) are the only non-deterministic ones;
/// they are deliberately excluded from the manual [`PartialEq`]
/// implementation so that "bit-identical" remains a meaningful cross-run
/// property while speedups still get recorded.  Records serialize to JSON
/// and CSV via [`crate::serialize`].
#[derive(Debug, Clone)]
pub struct Record {
    /// Stable ID of the scenario that produced this record.
    pub scenario_id: String,
    /// DRAM configuration label, e.g. `DDR4-3200`.
    pub dram_label: String,
    /// Mapping scheme name, e.g. `optimized`.
    pub mapping: String,
    /// Requested interleaver size in bursts.
    pub bursts: u64,
    /// Dimension `n` of the triangular index space.
    pub dimension: u32,
    /// Whether DRAM refresh was disabled for the run.
    pub refresh_disabled: bool,
    /// Independent DRAM channels of the subsystem (1 for the paper's
    /// Table I device).
    pub channels: u32,
    /// Ranks per channel (1 for the paper's Table I device).
    pub ranks: u32,
    /// Write-phase (row-wise) data-bus utilization in `[0, 1]`.
    pub write_utilization: f64,
    /// Read-phase (column-wise) data-bus utilization in `[0, 1]`.
    pub read_utilization: f64,
    /// Minimum of both phases — the throughput-limiting utilization (the
    /// bold column of the paper's Table I).
    pub min_utilization: f64,
    /// Sustained interleaver throughput **per channel** in Gbit/s (for a
    /// single channel this is the whole subsystem's throughput, matching the
    /// paper).
    pub sustained_gbps: f64,
    /// Sustained aggregate interleaver throughput of the whole subsystem in
    /// Gbit/s (`sustained_gbps × channels`; equal to `sustained_gbps` on a
    /// single channel).
    pub aggregate_gbps: f64,
    /// Spread (max − min) of the per-channel bus utilizations, worst phase;
    /// 0 on a single channel.
    pub channel_utilization_spread: f64,
    /// Row-buffer hit rate during the write phase, in `[0, 1]`.
    pub write_row_hit_rate: f64,
    /// Row-buffer hit rate during the read phase, in `[0, 1]`.
    pub read_row_hit_rate: f64,
    /// Activate commands issued across both phases.
    pub activates: u64,
    /// Estimated total energy of both phases in millijoules.
    pub energy_total_mj: f64,
    /// Estimated energy per transferred byte in nanojoules.
    pub energy_nj_per_byte: f64,
    /// Simulated device clock cycles across both phases (deterministic).
    pub simulated_cycles: u64,
    /// Worker threads that drove the per-channel controllers.  A host
    /// execution knob like [`Record::wall_time_s`]: results are
    /// bit-identical for any value, so it is **excluded** from
    /// [`PartialEq`] (two runs differing only in thread count compare
    /// equal).
    pub threads: u32,
    /// Wall-clock seconds spent simulating the DRAM phases (host-dependent;
    /// **excluded** from [`PartialEq`]).
    pub wall_time_s: f64,
    /// Simulation speed in simulated cycles per wall-clock second
    /// (host-dependent; **excluded** from [`PartialEq`]).
    pub sim_cycles_per_second: f64,
    /// Error rates of the optional channel/FEC stage.
    pub link: Option<LinkRecord>,
    /// Per-tenant scheduling metrics of the optional multi-tenant mode.
    pub tenants: Option<TenantSummary>,
}

/// Equality over the *deterministic* fields only: everything except
/// [`Record::wall_time_s`], [`Record::sim_cycles_per_second`] and
/// [`Record::threads`], which describe how the host executed the run rather
/// than what the run computed.
impl PartialEq for Record {
    fn eq(&self, other: &Self) -> bool {
        self.scenario_id == other.scenario_id
            && self.dram_label == other.dram_label
            && self.mapping == other.mapping
            && self.bursts == other.bursts
            && self.dimension == other.dimension
            && self.refresh_disabled == other.refresh_disabled
            && self.channels == other.channels
            && self.ranks == other.ranks
            && self.write_utilization == other.write_utilization
            && self.read_utilization == other.read_utilization
            && self.min_utilization == other.min_utilization
            && self.sustained_gbps == other.sustained_gbps
            && self.aggregate_gbps == other.aggregate_gbps
            && self.channel_utilization_spread == other.channel_utilization_spread
            && self.write_row_hit_rate == other.write_row_hit_rate
            && self.read_row_hit_rate == other.read_row_hit_rate
            && self.activates == other.activates
            && self.energy_total_mj == other.energy_total_mj
            && self.energy_nj_per_byte == other.energy_nj_per_byte
            && self.simulated_cycles == other.simulated_cycles
            && self.link == other.link
            && self.tenants == other.tenants
    }
}

impl Record {
    /// Speedup of this record's minimum utilization over a baseline record
    /// (e.g. optimized vs. row-major), guarding against division by zero.
    #[must_use]
    pub fn speedup_over(&self, baseline: &Record) -> f64 {
        self.min_utilization / baseline.min_utilization.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(id: &str, min: f64) -> Record {
        Record {
            scenario_id: id.to_string(),
            dram_label: "DDR4-3200".to_string(),
            mapping: "optimized".to_string(),
            bursts: 1000,
            dimension: 45,
            refresh_disabled: false,
            channels: 1,
            ranks: 1,
            write_utilization: 0.97,
            read_utilization: min,
            min_utilization: min,
            sustained_gbps: 100.0 * min,
            aggregate_gbps: 100.0 * min,
            channel_utilization_spread: 0.0,
            write_row_hit_rate: 0.9,
            read_row_hit_rate: 0.8,
            activates: 123,
            energy_total_mj: 1.5,
            energy_nj_per_byte: 2.5,
            simulated_cycles: 4_000,
            threads: 1,
            wall_time_s: 0.25,
            sim_cycles_per_second: 16_000.0,
            link: None,
            tenants: None,
        }
    }

    /// The contract of the manual `PartialEq`: the host-execution fields
    /// (wall time, simulation speed, thread count) — and **only** those —
    /// are excluded from record equality.
    #[test]
    fn equality_ignores_wall_clock_fields() {
        let a = sample("a", 0.5);
        let mut b = a.clone();
        b.wall_time_s = 99.0;
        b.sim_cycles_per_second = 1.0;
        b.threads = 16;
        assert_eq!(a, b, "host-execution fields must not affect equality");
        let mut c = a.clone();
        c.simulated_cycles += 1;
        assert_ne!(a, c, "simulated cycles are deterministic and compared");
    }

    /// Every deterministic field participates in equality — mutating any
    /// one of them must break it (guards against a field being forgotten
    /// when the manual `PartialEq` is extended).
    #[test]
    fn every_deterministic_field_participates_in_equality() {
        type Mutation = (&'static str, Box<dyn Fn(&mut Record)>);
        let base = sample("a", 0.5);
        let mutations: Vec<Mutation> = vec![
            ("scenario_id", Box::new(|r| r.scenario_id.push('x'))),
            ("dram_label", Box::new(|r| r.dram_label.push('x'))),
            ("mapping", Box::new(|r| r.mapping.push('x'))),
            ("bursts", Box::new(|r| r.bursts += 1)),
            ("dimension", Box::new(|r| r.dimension += 1)),
            ("refresh_disabled", Box::new(|r| r.refresh_disabled = true)),
            ("channels", Box::new(|r| r.channels += 1)),
            ("ranks", Box::new(|r| r.ranks += 1)),
            (
                "write_utilization",
                Box::new(|r| r.write_utilization += 0.01),
            ),
            ("read_utilization", Box::new(|r| r.read_utilization += 0.01)),
            ("min_utilization", Box::new(|r| r.min_utilization += 0.01)),
            ("sustained_gbps", Box::new(|r| r.sustained_gbps += 1.0)),
            ("aggregate_gbps", Box::new(|r| r.aggregate_gbps += 1.0)),
            (
                "channel_utilization_spread",
                Box::new(|r| r.channel_utilization_spread += 0.01),
            ),
            (
                "write_row_hit_rate",
                Box::new(|r| r.write_row_hit_rate += 0.01),
            ),
            (
                "read_row_hit_rate",
                Box::new(|r| r.read_row_hit_rate += 0.01),
            ),
            ("activates", Box::new(|r| r.activates += 1)),
            ("energy_total_mj", Box::new(|r| r.energy_total_mj += 1.0)),
            (
                "energy_nj_per_byte",
                Box::new(|r| r.energy_nj_per_byte += 1.0),
            ),
            ("simulated_cycles", Box::new(|r| r.simulated_cycles += 1)),
            ("link", Box::new(|r| r.link = Some(LinkRecord::default()))),
            (
                "tenants",
                Box::new(|r| {
                    r.tenants = Some(TenantSummary {
                        policy: "round_robin".to_string(),
                        streams: 2,
                        fairness_index: 1.0,
                        worst_p50_cycles: 10,
                        worst_p99_cycles: 20,
                        deadline_misses: 0,
                        per_tenant: Vec::new(),
                    });
                }),
            ),
        ];
        for (field, mutate) in mutations {
            let mut changed = base.clone();
            mutate(&mut changed);
            assert_ne!(
                base, changed,
                "mutating `{field}` must break record equality"
            );
        }
    }

    #[test]
    fn speedup_is_ratio_of_min_utilizations() {
        let base = sample("a", 0.4);
        let opt = sample("b", 0.96);
        assert!((opt.speedup_over(&base) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn speedup_survives_zero_baseline() {
        let base = sample("a", 0.0);
        let opt = sample("b", 0.96);
        assert!(opt.speedup_over(&base).is_finite());
    }
}
