//! Structured results collected by experiments.

/// Link-level error rates from a scenario's optional channel/FEC stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkRecord {
    /// Frame (code word) error rate after decoding.
    pub frame_error_rate: f64,
    /// Symbol error rate on the channel (before decoding).
    pub channel_symbol_error_rate: f64,
    /// Residual (post-decoding) symbol error rate.
    pub residual_symbol_error_rate: f64,
}

/// The typed result of one scenario run.
///
/// Records compare bit-exactly ([`PartialEq`]): the DRAM simulation is
/// deterministic, so two runs of the same scenario — regardless of worker
/// count — produce identical records.  They serialize to JSON and CSV via
/// [`crate::serialize`].
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Stable ID of the scenario that produced this record.
    pub scenario_id: String,
    /// DRAM configuration label, e.g. `DDR4-3200`.
    pub dram_label: String,
    /// Mapping scheme name, e.g. `optimized`.
    pub mapping: String,
    /// Requested interleaver size in bursts.
    pub bursts: u64,
    /// Dimension `n` of the triangular index space.
    pub dimension: u32,
    /// Whether DRAM refresh was disabled for the run.
    pub refresh_disabled: bool,
    /// Write-phase (row-wise) data-bus utilization in `[0, 1]`.
    pub write_utilization: f64,
    /// Read-phase (column-wise) data-bus utilization in `[0, 1]`.
    pub read_utilization: f64,
    /// Minimum of both phases — the throughput-limiting utilization (the
    /// bold column of the paper's Table I).
    pub min_utilization: f64,
    /// Sustained interleaver throughput in Gbit/s.
    pub sustained_gbps: f64,
    /// Row-buffer hit rate during the write phase, in `[0, 1]`.
    pub write_row_hit_rate: f64,
    /// Row-buffer hit rate during the read phase, in `[0, 1]`.
    pub read_row_hit_rate: f64,
    /// Activate commands issued across both phases.
    pub activates: u64,
    /// Estimated total energy of both phases in millijoules.
    pub energy_total_mj: f64,
    /// Estimated energy per transferred byte in nanojoules.
    pub energy_nj_per_byte: f64,
    /// Error rates of the optional channel/FEC stage.
    pub link: Option<LinkRecord>,
}

impl Record {
    /// Speedup of this record's minimum utilization over a baseline record
    /// (e.g. optimized vs. row-major), guarding against division by zero.
    #[must_use]
    pub fn speedup_over(&self, baseline: &Record) -> f64 {
        self.min_utilization / baseline.min_utilization.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(id: &str, min: f64) -> Record {
        Record {
            scenario_id: id.to_string(),
            dram_label: "DDR4-3200".to_string(),
            mapping: "optimized".to_string(),
            bursts: 1000,
            dimension: 45,
            refresh_disabled: false,
            write_utilization: 0.97,
            read_utilization: min,
            min_utilization: min,
            sustained_gbps: 100.0 * min,
            write_row_hit_rate: 0.9,
            read_row_hit_rate: 0.8,
            activates: 123,
            energy_total_mj: 1.5,
            energy_nj_per_byte: 2.5,
            link: None,
        }
    }

    #[test]
    fn speedup_is_ratio_of_min_utilizations() {
        let base = sample("a", 0.4);
        let opt = sample("b", 0.96);
        assert!((opt.speedup_over(&base) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn speedup_survives_zero_baseline() {
        let base = sample("a", 0.0);
        let opt = sample("b", 0.96);
        assert!(opt.speedup_over(&base).is_finite());
    }
}
