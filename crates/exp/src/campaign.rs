//! End-to-end downlink campaigns: interleaver depth × code rate ×
//! mapping × device preset under a time-varying optical channel.
//!
//! A [`Campaign`] is the experiment layer's answer to "which memory system
//! and which FEC configuration should fly": it sweeps the full cross
//! product of DRAM presets, mapping schemes, interleaver depths and
//! Reed–Solomon code rates through the deterministic [`Experiment`] worker
//! pool, attaches the same time-varying [`LinkProfile`] pass to every cell,
//! and reduces the records to one post-FEC BER vs sustained aggregate
//! bandwidth **frontier** per preset.
//!
//! Two design choices make the frontier comparable and reproducible:
//!
//! * The link-stage RNG seed is derived from the campaign seed and the
//!   *(depth, code-rate)* cell only — never from the preset or mapping — so
//!   every preset/mapping sees bit-identical channel noise for the same FEC
//!   configuration and BER differences are attributable to the FEC axes
//!   alone.
//! * The link simulation is independent of the DRAM burst count, so a
//!   scaled-down re-run (CI smoke, `perf_gate`) reproduces the committed
//!   error rates exactly; only the bandwidth side rescales.
//!
//! ## Quick start
//!
//! ```
//! use tbi_dram::DramStandard;
//! use tbi_exp::CampaignConfig;
//! use tbi_satcom::{LinkProfile, Weather};
//!
//! # fn main() -> Result<(), tbi_exp::ExpError> {
//! let report = CampaignConfig::new(LinkProfile::leo_pass(25.0, Weather::Rain))
//!     .preset(DramStandard::Ddr4, 3200)?
//!     .depths([4, 16])
//!     .code_rates([(223, 255)])
//!     .size(2_000)
//!     .build()
//!     .run()?;
//! assert_eq!(report.records.len(), 2 * 2);
//! assert!(!report.frontiers[0].points.is_empty());
//! # Ok(())
//! # }
//! ```

use tbi_dram::{DramConfig, DramStandard};
use tbi_interleaver::{InterleaverSpec, MappingKind};
use tbi_satcom::link::{InterleaverChoice, LinkConfig};
use tbi_satcom::LinkProfile;

use crate::record::Record;
use crate::runner::Experiment;
use crate::scenario::{LinkStage, Scenario};
use crate::ExpError;

/// Default interleaver-depth axis (code words per interleaver block).
pub const DEFAULT_DEPTHS: [usize; 3] = [8, 32, 128];

/// Default Reed–Solomon `(k, n)` code-rate axis, from light to heavy
/// protection (8, 12 and 16 correctable symbols per code word).
pub const DEFAULT_CODE_RATES: [(usize, usize); 3] = [(239, 255), (231, 255), (223, 255)];

/// Default campaign seed (the link stages derive their per-cell seeds from
/// it, see [`CampaignConfig::seed`]).  Kept below 2^53 so the value written
/// into JSON artifacts survives the double-precision number round-trip that
/// JSON consumers (including the regression gate) are entitled to assume.
pub const DEFAULT_CAMPAIGN_SEED: u64 = 0x000C_A3BA_157B_1D5E;

/// Declarative description of a campaign: the axes of the cross product,
/// the shared pass profile, and the runner knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    presets: Vec<DramConfig>,
    mappings: Vec<MappingKind>,
    depths: Vec<usize>,
    code_rates: Vec<(usize, usize)>,
    profile: LinkProfile,
    bursts: u64,
    seed: u64,
    trials: u32,
    workers: usize,
}

impl CampaignConfig {
    /// Creates a campaign over the given pass profile with the default
    /// axes: the Table I mapping pair, depths [`DEFAULT_DEPTHS`] and code
    /// rates [`DEFAULT_CODE_RATES`].  Presets start empty — add at least
    /// one before [`CampaignConfig::build`].
    #[must_use]
    pub fn new(profile: LinkProfile) -> Self {
        Self {
            presets: Vec::new(),
            mappings: MappingKind::TABLE1.to_vec(),
            depths: DEFAULT_DEPTHS.to_vec(),
            code_rates: DEFAULT_CODE_RATES.to_vec(),
            profile,
            bursts: 20_000,
            seed: DEFAULT_CAMPAIGN_SEED,
            trials: 4,
            workers: 1,
        }
    }

    /// Adds one of the paper's (or the modern) DRAM presets to the device
    /// axis.  Modern presets keep their baked native topology (HBM2
    /// pseudo-channels, GDDR6 dual channel, DDR5-3DS ranks).
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Dram`] if the (standard, data rate) pair is not
    /// a known preset.
    pub fn preset(mut self, standard: DramStandard, data_rate_mtps: u32) -> Result<Self, ExpError> {
        self.presets
            .push(DramConfig::preset(standard, data_rate_mtps)?);
        Ok(self)
    }

    /// Adds an arbitrary (e.g. builder-produced) DRAM configuration to the
    /// device axis.
    #[must_use]
    pub fn config(mut self, dram: DramConfig) -> Self {
        self.presets.push(dram);
        self
    }

    /// Replaces the mapping axis.
    #[must_use]
    pub fn mappings(mut self, mappings: impl IntoIterator<Item = MappingKind>) -> Self {
        self.mappings = mappings.into_iter().collect();
        self
    }

    /// Replaces the interleaver-depth axis (code words per block).
    #[must_use]
    pub fn depths(mut self, depths: impl IntoIterator<Item = usize>) -> Self {
        self.depths = depths.into_iter().collect();
        self
    }

    /// Replaces the `(k, n)` code-rate axis.
    #[must_use]
    pub fn code_rates(mut self, rates: impl IntoIterator<Item = (usize, usize)>) -> Self {
        self.code_rates = rates.into_iter().collect();
        self
    }

    /// Sets the interleaver size (bursts) of the DRAM side of every cell.
    #[must_use]
    pub fn size(mut self, bursts: u64) -> Self {
        self.bursts = bursts;
        self
    }

    /// Sets the campaign seed.  Per-cell link seeds are mixed from this and
    /// the cell's `(depth, k, n)` coordinates only, so the channel noise is
    /// shared across presets and mappings.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of independent link trials at the *deepest* depth
    /// (clamped to at least 1).  Shallower cells run proportionally more
    /// blocks — `trials × max_depth / depth` — so every cell observes the
    /// same number of code words and the per-depth BER estimates carry
    /// comparable statistical weight.
    #[must_use]
    pub fn trials(mut self, trials: u32) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Sets the experiment worker count (0 = auto).  The records are
    /// bit-identical for any value.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Finalizes the configuration into a runnable [`Campaign`].
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty, a depth is zero, or a code-rate pair is
    /// not a valid Reed–Solomon configuration (`0 < k < n <= 255`) —
    /// campaign axes are programmer input, not measurement data.
    #[must_use]
    pub fn build(self) -> Campaign {
        assert!(
            !self.presets.is_empty(),
            "a campaign needs at least one preset"
        );
        assert!(
            !self.mappings.is_empty(),
            "a campaign needs at least one mapping"
        );
        assert!(
            !self.depths.is_empty(),
            "a campaign needs at least one depth"
        );
        assert!(
            !self.code_rates.is_empty(),
            "a campaign needs at least one code rate"
        );
        for &depth in &self.depths {
            assert!(depth > 0, "interleaver depth must be at least 1 code word");
        }
        for &(k, n) in &self.code_rates {
            assert!(
                k > 0 && k < n && n <= 255,
                "invalid RS code rate ({k}, {n}): need 0 < k < n <= 255"
            );
        }
        Campaign { config: self }
    }
}

/// SplitMix64 finalizer: decorrelates the per-cell link seeds derived from
/// the campaign seed.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A runnable campaign (see [`CampaignConfig`]).
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// The link-stage seed of the `(depth, k, n)` cell: a pure function of
    /// the campaign seed and the FEC coordinates, shared across presets and
    /// mappings.
    #[must_use]
    pub fn link_seed(&self, depth: usize, k: usize, n: usize) -> u64 {
        mix(self
            .config
            .seed
            .wrapping_add(mix((depth as u64) << 32 ^ (k as u64) << 16 ^ n as u64)))
    }

    /// Expands the cross product into scenarios with stable campaign IDs
    /// (`campaign/<label>/<mapping>/d<depth>/k<k>n<n>/b<bursts>`), in
    /// deterministic axis order: presets, then mappings, then depths, then
    /// code rates.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        let spec = InterleaverSpec::from_burst_count(self.config.bursts);
        let max_depth = *self
            .config
            .depths
            .iter()
            .max()
            .expect("build() requires at least one depth");
        let mut scenarios = Vec::new();
        for dram in &self.config.presets {
            for &mapping in &self.config.mappings {
                for &depth in &self.config.depths {
                    // Equal code-word budget per cell: shallower blocks run
                    // proportionally more trials.
                    let trials = self
                        .config
                        .trials
                        .saturating_mul(u32::try_from(max_depth / depth).unwrap_or(u32::MAX))
                        .max(1);
                    for &(k, n) in &self.config.code_rates {
                        let link = LinkStage::new(0.0)
                            .with_config(LinkConfig {
                                rs_code_len: n,
                                rs_data_len: k,
                                codewords: depth,
                                interleaver: InterleaverChoice::Triangular,
                            })
                            .with_profile(self.config.profile.clone())
                            .with_seed(self.link_seed(depth, k, n))
                            .with_trials(trials);
                        let id = format!(
                            "campaign/{}/{}/d{depth}/k{k}n{n}/b{}",
                            dram.label(),
                            mapping.label(),
                            self.config.bursts
                        );
                        scenarios.push(
                            Scenario::custom(dram.clone(), mapping, spec)
                                .with_link(link)
                                .with_id(id),
                        );
                    }
                }
            }
        }
        scenarios
    }

    /// Runs every cell through the deterministic experiment worker pool and
    /// reduces the records to per-preset frontiers.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] if any cell fails (the error names the cell).
    pub fn run(&self) -> Result<CampaignReport, ExpError> {
        let experiment = Experiment::new(self.scenarios());
        let experiment = if self.config.workers == 0 {
            experiment.with_auto_workers()
        } else {
            experiment.with_workers(self.config.workers)
        };
        let records = experiment.run()?;
        let frontiers = self
            .config
            .presets
            .iter()
            .map(|dram| extract_frontier(&dram.label(), &records))
            .collect();
        Ok(CampaignReport { records, frontiers })
    }
}

/// One point of a preset's BER/bandwidth frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Mapping label of the dominant cell.
    pub mapping: String,
    /// Interleaver depth (code words per block).
    pub interleaver_depth: u64,
    /// Reed–Solomon code rate `k / n`.
    pub code_rate: f64,
    /// Post-FEC bit error rate of the cell.
    pub post_fec_ber: f64,
    /// Frame (code-word) error rate of the cell.
    pub frame_error_rate: f64,
    /// Sustained aggregate DRAM bandwidth of the cell.
    pub aggregate_gbps: f64,
    /// Payload goodput: aggregate bandwidth × code rate.
    pub goodput_gbps: f64,
}

/// The non-dominated BER/goodput points of one preset, highest goodput
/// first.
#[derive(Debug, Clone, PartialEq)]
pub struct PresetFrontier {
    /// DRAM preset label (e.g. `HBM2-2400`).
    pub dram_label: String,
    /// Frontier points: goodput strictly decreasing, post-FEC BER strictly
    /// decreasing.
    pub points: Vec<FrontierPoint>,
}

/// Pareto reduction of one preset's cells: maximize payload goodput,
/// minimize post-FEC BER.
fn extract_frontier(dram_label: &str, records: &[Record]) -> PresetFrontier {
    let mut candidates: Vec<FrontierPoint> = records
        .iter()
        .filter(|r| r.dram_label == dram_label)
        .filter_map(|r| {
            let link = r.link.as_ref()?;
            Some(FrontierPoint {
                mapping: r.mapping.clone(),
                interleaver_depth: link.interleaver_depth,
                code_rate: link.code_rate,
                post_fec_ber: link.post_fec_ber,
                frame_error_rate: link.frame_error_rate,
                aggregate_gbps: r.aggregate_gbps,
                goodput_gbps: r.aggregate_gbps * link.code_rate,
            })
        })
        .collect();
    // Highest goodput first; ties resolved toward lower BER, then deeper
    // interleaving (more burst protection at equal measured rates).
    candidates.sort_by(|a, b| {
        b.goodput_gbps
            .total_cmp(&a.goodput_gbps)
            .then(a.post_fec_ber.total_cmp(&b.post_fec_ber))
            .then(b.interleaver_depth.cmp(&a.interleaver_depth))
    });
    let mut points: Vec<FrontierPoint> = Vec::new();
    for candidate in candidates {
        let dominated = points
            .last()
            .is_some_and(|kept| kept.post_fec_ber <= candidate.post_fec_ber);
        if !dominated {
            points.push(candidate);
        }
    }
    PresetFrontier {
        dram_label: dram_label.to_string(),
        points,
    }
}

/// The result of a campaign run: every cell record plus the per-preset
/// frontiers.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// One record per cell, in deterministic axis order.
    pub records: Vec<Record>,
    /// One frontier per preset, in preset order.
    pub frontiers: Vec<PresetFrontier>,
}

impl CampaignReport {
    /// The per-depth post-FEC BER curve at one code rate, depths ascending.
    ///
    /// The link seeds are shared across presets and mappings, so the curve
    /// is taken from the first cell of each `(depth, rate)` pair; every
    /// other cell of the pair carries bit-identical link numbers.
    #[must_use]
    pub fn ber_by_depth(&self, k: usize, n: usize) -> Vec<(u64, f64)> {
        #[allow(clippy::cast_precision_loss)]
        let rate = k as f64 / n as f64;
        let mut curve: Vec<(u64, f64)> = Vec::new();
        for record in &self.records {
            let Some(link) = &record.link else { continue };
            if (link.code_rate - rate).abs() > 1e-12 {
                continue;
            }
            if !curve.iter().any(|&(d, _)| d == link.interleaver_depth) {
                curve.push((link.interleaver_depth, link.post_fec_ber));
            }
        }
        curve.sort_by_key(|&(depth, _)| depth);
        curve
    }

    /// Whether, at every code rate on the axis, increasing the interleaver
    /// depth strictly reduces the post-FEC BER until it reaches the zero
    /// floor (the campaign's headline waterfall claim).  Each curve must
    /// start with residual errors — a rate whose shallowest depth already
    /// decodes cleanly pins nothing — and every deepening step must either
    /// strictly lower the BER or stay on an exact-zero plateau.
    #[must_use]
    pub fn ber_strictly_decreases_with_depth(&self, code_rates: &[(usize, usize)]) -> bool {
        code_rates.iter().all(|&(k, n)| {
            let curve = self.ber_by_depth(k, n);
            curve.len() > 1
                && curve[0].1 > 0.0
                && curve
                    .windows(2)
                    .all(|pair| pair[1].1 < pair[0].1 || (pair[0].1 == 0.0 && pair[1].1 == 0.0))
        })
    }

    /// The relative aggregate-bandwidth spread across mappings of one
    /// preset: `(max − min) / min` (0.0 if the preset has fewer than two
    /// mapping cells).
    #[must_use]
    pub fn mapping_bandwidth_shift(&self, dram_label: &str) -> f64 {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for record in self.records.iter().filter(|r| r.dram_label == dram_label) {
            min = min.min(record.aggregate_gbps);
            max = max.max(record.aggregate_gbps);
        }
        if min.is_finite() && min > 0.0 && max > min {
            (max - min) / min
        } else {
            0.0
        }
    }

    /// The mapping label achieving the highest aggregate bandwidth on one
    /// preset (`None` if the preset has no cells).
    #[must_use]
    pub fn dominant_mapping(&self, dram_label: &str) -> Option<String> {
        self.records
            .iter()
            .filter(|r| r.dram_label == dram_label)
            .max_by(|a, b| a.aggregate_gbps.total_cmp(&b.aggregate_gbps))
            .map(|r| r.mapping.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbi_satcom::Weather;

    fn small_campaign() -> Campaign {
        CampaignConfig::new(LinkProfile::leo_pass(25.0, Weather::Rain))
            .preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .preset(DramStandard::Hbm2, 2400)
            .unwrap()
            .depths([4, 16])
            .code_rates([(223, 255)])
            .size(2_000)
            .trials(2)
            .build()
    }

    #[test]
    fn cross_product_expands_in_axis_order() {
        let campaign = small_campaign();
        let scenarios = campaign.scenarios();
        // 2 presets x 2 mappings x 2 depths x 1 code rate.
        assert_eq!(scenarios.len(), 8);
        assert_eq!(
            scenarios[0].id(),
            "campaign/DDR4-3200/row-major/d4/k223n255/b2000"
        );
        let ids: std::collections::BTreeSet<String> = scenarios.iter().map(Scenario::id).collect();
        assert_eq!(ids.len(), scenarios.len(), "campaign IDs must be unique");
    }

    #[test]
    fn link_seed_ignores_preset_and_mapping_but_not_the_cell() {
        let campaign = small_campaign();
        assert_eq!(
            campaign.link_seed(4, 223, 255),
            campaign.link_seed(4, 223, 255)
        );
        assert_ne!(
            campaign.link_seed(4, 223, 255),
            campaign.link_seed(16, 223, 255)
        );
        assert_ne!(
            campaign.link_seed(4, 223, 255),
            campaign.link_seed(4, 191, 255)
        );
    }

    #[test]
    fn report_carries_frontiers_and_shared_link_cells() {
        let report = small_campaign().run().unwrap();
        assert_eq!(report.records.len(), 8);
        assert_eq!(report.frontiers.len(), 2);
        for frontier in &report.frontiers {
            assert!(!frontier.points.is_empty());
            for pair in frontier.points.windows(2) {
                assert!(pair[1].goodput_gbps < pair[0].goodput_gbps);
                assert!(pair[1].post_fec_ber < pair[0].post_fec_ber);
            }
        }
        // Same (depth, rate) cell ⇒ bit-identical link numbers everywhere.
        let links: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.link.as_ref().unwrap().interleaver_depth == 4)
            .map(|r| r.link.unwrap())
            .collect();
        assert!(links.windows(2).all(|pair| pair[0] == pair[1]));
    }

    #[test]
    fn frontier_points_come_from_existing_cells() {
        let report = small_campaign().run().unwrap();
        for frontier in &report.frontiers {
            for point in &frontier.points {
                assert!(report.records.iter().any(|r| {
                    r.dram_label == frontier.dram_label
                        && r.mapping == point.mapping
                        && r.link.as_ref().is_some_and(|l| {
                            l.interleaver_depth == point.interleaver_depth
                                && l.post_fec_ber == point.post_fec_ber
                        })
                }));
            }
        }
    }

    #[test]
    fn ber_curve_is_indexed_by_depth() {
        let report = small_campaign().run().unwrap();
        let curve = report.ber_by_depth(223, 255);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].0, 4);
        assert_eq!(curve[1].0, 16);
        assert!(report.ber_by_depth(191, 255).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one preset")]
    fn empty_preset_axis_is_rejected() {
        let _ = CampaignConfig::new(LinkProfile::leo_pass(45.0, Weather::Clear)).build();
    }

    #[test]
    #[should_panic(expected = "invalid RS code rate")]
    fn invalid_code_rate_is_rejected() {
        let _ = CampaignConfig::new(LinkProfile::leo_pass(45.0, Weather::Clear))
            .config(DramConfig::preset(DramStandard::Ddr4, 3200).unwrap())
            .code_rates([(255, 255)])
            .build();
    }
}
