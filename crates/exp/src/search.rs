//! Design-space exploration over bit-permutation address mappings.
//!
//! The paper hand-picks one optimized mapping; this module treats the
//! mapping as a **searchable space** instead, in the spirit of the
//! interleaver-DSE literature (Chavet et al.; SAGE): a [`MappingSearch`]
//! explores the design space for one DRAM configuration with one of two
//! [`SearchStrategy`]s:
//!
//! - [`SearchStrategy::Greedy`] — the original *seeded greedy bit-swap
//!   hill-climb with random restarts* over pure [`BitPermutation`]s:
//!
//!   1. every restart starts from a deterministic point — a balanced
//!      tiling heuristic, the controller's default decode chain, or a
//!      seeded random shuffle of the address bits;
//!   2. each step proposes a batch of bit-swap neighbours (two
//!      linear-address bits exchange their fields), evaluates them in
//!      parallel through the existing [`Experiment`] worker pool, and
//!      greedily moves to the best strictly-improving neighbour;
//!   3. when no neighbour improves, the climb restarts from the next start
//!      until the evaluation [`budget`](SearchSettings::budget) is
//!      exhausted.
//!
//! - [`SearchStrategy::Portfolio`] — a wider search over **hybrid
//!   candidates** `(BitPermutation, XorFold)`, reaching the XOR/ADD-folded
//!   diagonal forms pure permutations cannot express (the paper's
//!   `bank = (tile_i + tile_j) mod banks` term):
//!
//!   1. the deterministic start portfolio adds two *diagonal-fold* starts
//!      (the balanced tiling with a `bank ^= row` / `bank += row` step) and
//!      any [transfer seeds](MappingSearch::with_transfer_seeds) carried
//!      over from sibling presets, then alternates evolutionary restarts
//!      (mutated elite members) with seeded random shuffles;
//!   2. neighbourhood moves mix bit swaps with fold mutations (append,
//!      drop, or replace one [`FoldStep`]);
//!   3. a non-improving batch winner can still be **accepted** with
//!      simulated-annealing probability `exp(Δ/T)` (temperature
//!      [`sa_temp_micro`](SearchSettings::sa_temp_micro) × 10⁻⁶, cooled
//!      geometrically), so climbs tunnel through boundary-loss plateaus;
//!   4. with a [`surrogate_divisor`](SearchSettings::surrogate_divisor),
//!      every batch is pre-screened at `bursts / divisor` and only the top
//!      [`promote`](SearchSettings::promote) candidates graduate to a
//!      full-size evaluation — surrogate runs are reported separately and
//!      do not consume the budget;
//!   5. before the annealed climbs, a deterministic **free-shape tile
//!      sweep** evaluates the best `tile_h × tile_w ≤ page`
//!      [`MappingKind::GeneralTiled`] layouts (edges need not be powers of
//!      two — the family beyond every bit-sliced layout, and the only one
//!      that strictly beats the paper's optimized scheme on odd-`log₂(page)`
//!      devices such as DDR3); the best tiling competes with the hybrid
//!      winner for the reported record.
//!
//! Candidates are scored by **round-trip row-hit rate** (mean of the write-
//! and read-phase hit rates) with the throughput-limiting minimum
//! utilization as tie-breaker — the two quantities the paper's Table I
//! optimizes by hand.  All decisions depend only on deterministic
//! [`Record`]s and a [`StdRng`] derived from the seed, so a search is
//! **bit-reproducible for a fixed seed at any worker count** under either
//! strategy.  The evaluation cache is keyed on the **full scenario
//! fingerprint** (standard, topology, engine, refresh, burst count, …), not
//! the candidate alone, so surrogate- and full-size evaluations of the same
//! candidate never alias.
//!
//! ```
//! use tbi_dram::{DramConfig, DramStandard};
//! use tbi_exp::search::{MappingSearch, SearchSettings};
//! use tbi_interleaver::InterleaverSpec;
//!
//! # fn main() -> Result<(), tbi_exp::ExpError> {
//! let dram = DramConfig::preset(DramStandard::Ddr4, 3200)?;
//! let settings = SearchSettings { budget: 12, restarts: 2, ..SearchSettings::default() };
//! let search = MappingSearch::new(dram, InterleaverSpec::from_burst_count(4_000), settings);
//! let outcome = search.run()?;
//! // The climb can only improve on its deterministic starting points, and
//! // the balanced-tiling start already splits page misses between phases.
//! assert!(outcome.discovered_row_hit_rate() > 0.5);
//! assert_eq!(outcome.permutation, outcome.best.mapping.trim_start_matches("permutation:"));
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tbi_dram::{
    AddressField, BitPermutation, ChannelTopology, ControllerConfig, DecodeScheme, DramConfig,
    FoldOp, FoldStep, XorFold,
};
use tbi_interleaver::mapping::GeneralTiledMapping;
use tbi_interleaver::{InterleaverSpec, MappingKind};

use crate::record::Record;
use crate::runner::Experiment;
use crate::scenario::Scenario;
use crate::ExpError;

/// Which search algorithm a [`MappingSearch`] runs (see the [module
/// documentation](self) for both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchStrategy {
    /// Greedy bit-swap hill-climb over pure permutations (the original
    /// algorithm; restarts on the first non-improving batch).
    #[default]
    Greedy,
    /// Hybrid `(permutation, fold)` search with simulated annealing,
    /// evolutionary restarts, transfer seeds and optional surrogate
    /// pre-screening.
    Portfolio,
}

impl std::fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Greedy => "greedy",
            Self::Portfolio => "portfolio",
        })
    }
}

impl std::str::FromStr for SearchStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "greedy" => Ok(Self::Greedy),
            "portfolio" => Ok(Self::Portfolio),
            other => Err(format!("unknown search strategy `{other}`")),
        }
    }
}

/// Tuning knobs of a [`MappingSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchSettings {
    /// RNG seed; identical seeds reproduce identical searches bit-for-bit,
    /// regardless of the worker count.
    pub seed: u64,
    /// Number of hill-climb starting points (clamped to ≥ 1).  Start 0 is
    /// the balanced-tiling heuristic, start 1 the controller's default
    /// decode chain, further starts are seeded random shuffles (the
    /// portfolio strategy inserts diagonal-fold, transfer-seed and
    /// evolutionary starts — see the [module documentation](self)).
    pub restarts: u32,
    /// Maximum number of full-size candidate evaluations across all
    /// restarts (clamped to ≥ 1).  The row-major/optimized reference
    /// evaluations and surrogate pre-screens are not counted against the
    /// budget.
    pub budget: u32,
    /// Neighbours proposed per climb step (clamped to ≥ 1).
    pub neighbors: u32,
    /// Worker threads for candidate batches (0 = all cores).  Does not
    /// affect results, only wall-clock time.
    pub workers: usize,
    /// Search algorithm; [`SearchStrategy::Greedy`] preserves the original
    /// behaviour exactly.
    pub strategy: SearchStrategy,
    /// Portfolio only: when ≥ 2, candidates are pre-screened at
    /// `bursts / surrogate_divisor` bursts and only the best
    /// [`promote`](Self::promote) graduate to full evaluation.  0 or 1
    /// disables the surrogate.
    pub surrogate_divisor: u32,
    /// Portfolio only: candidates promoted from each surrogate batch to
    /// full-size evaluation (clamped to ≥ 1).
    pub promote: u32,
    /// Portfolio only: initial simulated-annealing temperature in
    /// **millionths** of round-trip row-hit rate (an integer so the
    /// settings stay `Copy + Eq`).  0 rejects every non-improving move,
    /// recovering greedy acceptance.
    pub sa_temp_micro: u32,
}

impl Default for SearchSettings {
    fn default() -> Self {
        Self {
            seed: 0xD5E_5EED,
            restarts: 4,
            budget: 400,
            neighbors: 8,
            workers: 0,
            strategy: SearchStrategy::Greedy,
            surrogate_divisor: 0,
            promote: 2,
            sa_temp_micro: 150,
        }
    }
}

/// The typed result of one [`MappingSearch::run`]: the best discovered
/// permutation with its full [`Record`], next to the row-major baseline and
/// the paper's optimized reference evaluated under identical conditions.
///
/// Serializable through [`crate::serialize::search_records_to_json`] and
/// [`crate::serialize::search_records_to_csv`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRecord {
    /// DRAM configuration label, e.g. `DDR4-3200`.
    pub dram_label: String,
    /// Seed the search ran with.
    pub seed: u64,
    /// Restart count the search ran with.
    pub restarts: u32,
    /// Evaluation budget the search ran with.
    pub budget: u32,
    /// Candidate evaluations actually spent (≤ budget; cache hits are free).
    pub evaluations: u32,
    /// Accepted hill-climb moves across all restarts.
    pub accepted_moves: u32,
    /// Interleaver size (bursts) the candidates were evaluated at.
    pub bursts: u64,
    /// Surrogate (short-burst) evaluations spent pre-screening candidates;
    /// 0 for the greedy strategy or a disabled surrogate.
    pub surrogate_evaluations: u32,
    /// MSB-first bit codes of the best discovered permutation (parseable by
    /// [`BitPermutation`]'s `FromStr`).  Empty when the winner has no
    /// bit-sliced form (a `tiled:HxW` layout from the free-shape tile
    /// sweep); `best.mapping` is then the authoritative label.
    pub permutation: String,
    /// Fold steps of the best discovered mapping (parseable by
    /// [`XorFold`]'s `FromStr`); empty for a pure permutation or a tiled
    /// winner.
    pub fold: String,
    /// Record of the best discovered permutation mapping.
    pub best: Record,
    /// Record of the row-major baseline under identical conditions.
    pub row_major: Record,
    /// Record of the paper's optimized mapping under identical conditions.
    pub optimized: Record,
}

/// Round-trip row-hit rate of a record: the mean of the write- and
/// read-phase row-buffer hit rates (both phases move every burst once, so
/// the mean weights them equally).
#[must_use]
pub fn round_trip_row_hit_rate(record: &Record) -> f64 {
    (record.write_row_hit_rate + record.read_row_hit_rate) / 2.0
}

/// Relative tolerance inside which two round-trip row-hit rates count as a
/// **match** (see [`SearchRecord::matches_or_beats_optimized`]).
///
/// One part in 10⁴ is the boundary-alignment noise floor of a full-size
/// run: it corresponds to ~1 000 of 25 000 000 row decisions, below the
/// shift the *same* mapping sees between two speed grades of the same
/// standard under refresh (e.g. the optimized scheme's round-trip hit rate
/// moves by ~8 × 10⁻⁴ between LPDDR4-2133 and LPDDR4-4266).  Exact gains
/// are always reported next to the flag ([`SearchRecord::row_hit_gain`]),
/// so nothing hides behind the tolerance.
pub const MATCH_TOLERANCE: f64 = 1e-4;

impl SearchRecord {
    /// Round-trip row-hit rate of the discovered mapping.
    #[must_use]
    pub fn discovered_row_hit_rate(&self) -> f64 {
        round_trip_row_hit_rate(&self.best)
    }

    /// Round-trip row-hit rate of the paper's optimized mapping.
    #[must_use]
    pub fn optimized_row_hit_rate(&self) -> f64 {
        round_trip_row_hit_rate(&self.optimized)
    }

    /// Whether the discovered mapping's round-trip row-hit rate matches
    /// (within the relative [`MATCH_TOLERANCE`]) or beats the paper's
    /// optimized scheme — the headline DSE claim.  Use
    /// [`SearchRecord::row_hit_gain`] for the exact ratio.
    #[must_use]
    pub fn matches_or_beats_optimized(&self) -> bool {
        self.row_hit_gain() >= 1.0 - MATCH_TOLERANCE
    }

    /// Whether the discovered mapping **strictly beats** the paper's
    /// optimized scheme on round-trip row-hit rate — no tolerance, no
    /// ties.  The headline claim of the hybrid (folded) mapping family.
    #[must_use]
    pub fn beats_optimized(&self) -> bool {
        self.discovered_row_hit_rate() > self.optimized_row_hit_rate()
    }

    /// Ratio of discovered to optimized round-trip row-hit rate.
    #[must_use]
    pub fn row_hit_gain(&self) -> f64 {
        self.discovered_row_hit_rate() / self.optimized_row_hit_rate().max(1e-9)
    }

    /// Ratio of discovered to optimized minimum utilization.
    #[must_use]
    pub fn utilization_gain(&self) -> f64 {
        self.best.min_utilization / self.optimized.min_utilization.max(1e-9)
    }
}

/// Seeded search over the address-mapping design space of one DRAM
/// configuration — greedy bit-swap hill-climbing or the hybrid
/// permutation+fold portfolio, per [`SearchSettings::strategy`].
///
/// See the [module documentation](self) for the algorithms and the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct MappingSearch {
    dram: DramConfig,
    spec: InterleaverSpec,
    controller: ControllerConfig,
    settings: SearchSettings,
    transfer: Vec<(BitPermutation, XorFold)>,
}

/// One point of the hybrid design space: a bit permutation plus a
/// (possibly identity) fold applied after decode.
type Candidate = (BitPermutation, XorFold);

/// The [`MappingKind`] a candidate evaluates as: plain `Permutation` when
/// the fold is identity (keeping greedy labels unchanged), `XorFolded`
/// otherwise.
fn candidate_kind(candidate: &Candidate) -> MappingKind {
    let (permutation, fold) = *candidate;
    if fold.is_identity() {
        MappingKind::Permutation(permutation)
    } else {
        MappingKind::XorFolded(permutation, fold)
    }
}

/// Lexicographic candidate score: round-trip row-hit rate first, minimum
/// utilization as tie-breaker.
fn score(record: &Record) -> (f64, f64) {
    (round_trip_row_hit_rate(record), record.min_utilization)
}

fn better(candidate: &Record, incumbent: &Record) -> bool {
    score(candidate) > score(incumbent)
}

impl MappingSearch {
    /// Creates a search on `dram` for an interleaver of `spec` bursts.
    #[must_use]
    pub fn new(dram: DramConfig, spec: InterleaverSpec, settings: SearchSettings) -> Self {
        Self {
            dram,
            spec,
            controller: ControllerConfig::default(),
            settings,
            transfer: Vec::new(),
        }
    }

    /// Replaces the controller configuration applied to every evaluation.
    #[must_use]
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// Seeds the portfolio start list with candidates won on *other*
    /// presets (cross-preset transfer).  Seeds that do not validate for
    /// this configuration's geometry/topology are skipped at start time,
    /// so callers can pass one winner list to every preset.  Ignored by
    /// the greedy strategy.
    #[must_use]
    pub fn with_transfer_seeds(mut self, seeds: &[(BitPermutation, XorFold)]) -> Self {
        self.transfer = seeds.to_vec();
        self
    }

    /// The settings the search runs with.
    #[must_use]
    pub fn settings(&self) -> &SearchSettings {
        &self.settings
    }

    /// Scores one explicit candidate under this search's scenario,
    /// returning `(candidate, row_major, optimized)` records — the
    /// search's own evaluation path exposed for probing tools.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] when the candidate does not validate for the
    /// configuration or a simulation fails.
    pub fn score_candidate(
        &self,
        permutation: BitPermutation,
        fold: XorFold,
    ) -> Result<(Record, Record, Record), ExpError> {
        self.score_kind(candidate_kind(&(permutation, fold)))
    }

    /// Scores one explicit [`MappingKind`] design point (any family,
    /// including the free-shape `tiled:<h>x<w>` layouts) under this
    /// search's scenario — see [`MappingSearch::score_candidate`].
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] when the mapping does not build for the
    /// configuration or a simulation fails.
    pub fn score_kind(&self, kind: MappingKind) -> Result<(Record, Record, Record), ExpError> {
        let mut cache = HashMap::new();
        let mut evaluations = 0;
        let record = self
            .evaluate_kinds(&[kind], self.spec, &mut cache, &mut evaluations)?
            .pop()
            .expect("one kind in, one record out");
        let (row_major, optimized) = self.reference_records()?;
        Ok((record, row_major, optimized))
    }

    fn scenario_at(&self, kind: MappingKind, spec: InterleaverSpec) -> Scenario {
        Scenario::custom(self.dram.clone(), kind, spec).with_controller(self.controller)
    }

    /// Evaluates a batch of candidates at `spec` bursts through the shared
    /// [`Experiment`] worker pool, consulting and filling `cache`.
    ///
    /// The cache is keyed on the full scenario fingerprint (its `Display`
    /// string: standard, topology, mapping, burst count, refresh,
    /// scheduling, engine, …), **not** the candidate alone — the same
    /// candidate evaluated under a surrogate spec and at full size are
    /// different measurements and must never alias (the pre-fix cache
    /// keyed on the permutation and silently returned whichever landed
    /// first).
    fn evaluate_at(
        &self,
        candidates: &[Candidate],
        spec: InterleaverSpec,
        cache: &mut HashMap<String, Record>,
        evaluations: &mut u32,
    ) -> Result<Vec<Record>, ExpError> {
        let kinds: Vec<MappingKind> = candidates.iter().map(candidate_kind).collect();
        self.evaluate_kinds(&kinds, spec, cache, evaluations)
    }

    /// [`Self::evaluate_at`] over arbitrary [`MappingKind`] design points
    /// (the hybrid candidates map through [`candidate_kind`]; the tiled
    /// family evaluates its kinds directly).
    fn evaluate_kinds(
        &self,
        kinds: &[MappingKind],
        spec: InterleaverSpec,
        cache: &mut HashMap<String, Record>,
        evaluations: &mut u32,
    ) -> Result<Vec<Record>, ExpError> {
        let keyed: Vec<(String, Scenario)> = kinds
            .iter()
            .map(|kind| {
                let scenario = self.scenario_at(*kind, spec);
                (scenario.to_string(), scenario)
            })
            .collect();
        let fresh: Vec<(String, Scenario)> = {
            let mut unique: Vec<(String, Scenario)> = Vec::new();
            for (key, scenario) in &keyed {
                if !cache.contains_key(key) && !unique.iter().any(|(seen, _)| seen == key) {
                    unique.push((key.clone(), scenario.clone()));
                }
            }
            unique
        };
        if !fresh.is_empty() {
            let scenarios: Vec<Scenario> = fresh.iter().map(|(_, s)| s.clone()).collect();
            let experiment = Experiment::new(scenarios);
            let experiment = if self.settings.workers == 0 {
                experiment.with_auto_workers()
            } else {
                experiment.with_workers(self.settings.workers)
            };
            let records = experiment.run()?;
            *evaluations += fresh.len() as u32;
            for ((key, _), record) in fresh.into_iter().zip(records) {
                cache.insert(key, record);
            }
        }
        Ok(keyed.iter().map(|(key, _)| cache[key].clone()).collect())
    }

    /// Evaluates the row-major and optimized references (not counted
    /// against the candidate budget).
    fn reference_records(&self) -> Result<(Record, Record), ExpError> {
        let scenarios = vec![
            self.scenario_at(MappingKind::RowMajor, self.spec),
            self.scenario_at(MappingKind::Optimized, self.spec),
        ];
        let experiment = Experiment::new(scenarios);
        let experiment = if self.settings.workers == 0 {
            experiment.with_auto_workers()
        } else {
            experiment.with_workers(self.settings.workers)
        };
        let mut records = experiment.run()?;
        let optimized = records.pop().expect("two references");
        let row_major = records.pop().expect("two references");
        Ok((row_major, optimized))
    }

    /// The reduced-size spec used for surrogate pre-screens, or `None`
    /// when the surrogate is disabled or would not actually be smaller.
    fn surrogate_spec(&self) -> Option<InterleaverSpec> {
        let divisor = self.settings.surrogate_divisor;
        if divisor < 2 {
            return None;
        }
        let bursts = (self.spec.burst_count() / u64::from(divisor)).max(1_000);
        if bursts >= self.spec.burst_count() {
            return None;
        }
        Some(InterleaverSpec::from_burst_count(bursts))
    }

    /// The deterministic free-shape tile shortlist of the portfolio: the
    /// maximal `tile_h × tile_w ≤ page` shapes with the highest interior
    /// round-trip hit rate `1 − (1/tile_w + 1/tile_h)/2`, best first.
    /// Shapes that do not fit the device at this index-space dimension are
    /// dropped.  Depends only on the geometry, so the sweep is
    /// bit-reproducible at any worker count.
    fn tiled_kinds(&self) -> Vec<MappingKind> {
        const SHORTLIST: usize = 6;
        let geometry = self.dram.geometry;
        let page = geometry.columns_per_row;
        let dimension = self.spec.dimension();
        let mut shapes: Vec<(u32, u32)> = (2..=page / 2)
            .filter_map(|tile_h| {
                let tile_w = page / tile_h;
                (tile_w >= 2).then_some((tile_h, tile_w))
            })
            .collect();
        shapes.dedup();
        // Interior miss rate (1/w + 1/h)/2, ascending; ties break on the
        // shape itself so the order is fully deterministic.
        shapes.sort_by(|&(ah, aw), &(bh, bw)| {
            let miss = |h: u32, w: u32| 1.0 / f64::from(w) + 1.0 / f64::from(h);
            miss(ah, aw)
                .partial_cmp(&miss(bh, bw))
                .expect("tile miss rates are finite")
                .then((ah, aw).cmp(&(bh, bw)))
        });
        shapes
            .into_iter()
            .filter(|&(tile_h, tile_w)| {
                GeneralTiledMapping::new(geometry, dimension, tile_h, tile_w).is_ok()
            })
            .take(SHORTLIST)
            .map(|(tile_h, tile_w)| MappingKind::GeneralTiled { tile_h, tile_w })
            .collect()
    }

    /// The deterministic starting permutation of `restart`.
    fn starting_point(&self, restart: u32, rng: &mut StdRng) -> Result<BitPermutation, ExpError> {
        let topology = self.dram.topology;
        match restart {
            0 => balanced_start(&self.dram, topology, self.spec.dimension(), false),
            1 => balanced_start(&self.dram, topology, self.spec.dimension(), true),
            2 => Ok(BitPermutation::for_scheme(
                self.dram.decode_scheme,
                &self.dram.geometry,
                topology,
            )?),
            _ => {
                let mut permutation = BitPermutation::for_scheme(
                    self.dram.decode_scheme,
                    &self.dram.geometry,
                    topology,
                )?;
                // Fisher–Yates over the bit positions, driven by the seeded
                // RNG, yields a uniform random field assignment.
                let bits = permutation.total_bits() as usize;
                for a in (1..bits).rev() {
                    let b = rng.gen_range(0..a + 1);
                    if a != b {
                        permutation = permutation.with_swap(a, b);
                    }
                }
                Ok(permutation)
            }
        }
    }

    /// Runs the search and returns the [`SearchRecord`] of the best
    /// discovered mapping.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] if the interleaver does not fit the padded
    /// permutation space of the device, or any evaluation fails.
    pub fn run(&self) -> Result<SearchRecord, ExpError> {
        match self.settings.strategy {
            SearchStrategy::Greedy => self.run_greedy(),
            SearchStrategy::Portfolio => self.run_portfolio(),
        }
    }

    /// The original greedy bit-swap hill-climb over pure permutations.
    fn run_greedy(&self) -> Result<SearchRecord, ExpError> {
        let restarts = self.settings.restarts.max(1);
        let budget = self.settings.budget.max(1);
        let neighbors = self.settings.neighbors.max(1);
        let (row_major, optimized) = self.reference_records()?;

        let mut cache: HashMap<String, Record> = HashMap::new();
        let mut evaluations = 0u32;
        let mut accepted_moves = 0u32;
        let mut best: Option<(Candidate, Record)> = None;

        'restarts: for restart in 0..restarts {
            if evaluations >= budget {
                break;
            }
            // One RNG per restart keeps restarts independent of each other's
            // step counts (and therefore insensitive to early stops).
            let mut rng = StdRng::seed_from_u64(
                self.settings.seed ^ u64::from(restart).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut current: Candidate =
                (self.starting_point(restart, &mut rng)?, XorFold::identity());
            let mut current_record = self
                .evaluate_at(&[current], self.spec, &mut cache, &mut evaluations)?
                .pop()
                .expect("one candidate in, one record out");
            let improves_best = match &best {
                None => true,
                Some((_, record)) => better(&current_record, record),
            };
            if improves_best {
                best = Some((current, current_record.clone()));
            }
            while evaluations < budget {
                let bits = current.0.total_bits() as usize;
                let batch = (neighbors as usize).min((budget - evaluations) as usize);
                let mut candidates: Vec<Candidate> = Vec::with_capacity(batch);
                let mut guard = 0;
                while candidates.len() < batch && guard < 64 * batch {
                    guard += 1;
                    let a = rng.gen_range(0..bits);
                    let b = rng.gen_range(0..bits);
                    let fields = current.0.fields();
                    if fields[a] == fields[b] {
                        continue;
                    }
                    let swapped = (current.0.with_swap(a, b), current.1);
                    if !candidates.contains(&swapped) {
                        candidates.push(swapped);
                    }
                }
                if candidates.is_empty() {
                    continue 'restarts;
                }
                let records =
                    self.evaluate_at(&candidates, self.spec, &mut cache, &mut evaluations)?;
                let winner = candidates
                    .iter()
                    .zip(&records)
                    .max_by(|(_, x), (_, y)| {
                        score(x).partial_cmp(&score(y)).expect("scores are finite")
                    })
                    .expect("non-empty batch");
                if better(winner.1, &current_record) {
                    current = *winner.0;
                    current_record = winner.1.clone();
                    accepted_moves += 1;
                    if better(&current_record, &best.as_ref().expect("seeded above").1) {
                        best = Some((current, current_record.clone()));
                    }
                } else {
                    // Local optimum: spend the rest of the budget elsewhere.
                    continue 'restarts;
                }
            }
            break;
        }

        let (candidate, best_record) = best.expect("at least one restart evaluated");
        Ok(self.finish(
            candidate.0.to_string(),
            candidate.1.to_string(),
            best_record,
            restarts,
            budget,
            evaluations,
            0,
            accepted_moves,
            row_major,
            optimized,
        ))
    }

    /// The hybrid portfolio search: annealed acceptance, fold moves,
    /// evolutionary restarts, transfer seeds and surrogate pre-screens.
    fn run_portfolio(&self) -> Result<SearchRecord, ExpError> {
        let restarts = self.settings.restarts.max(1);
        let budget = self.settings.budget.max(1);
        let neighbors = self.settings.neighbors.max(1);
        let promote = self.settings.promote.max(1) as usize;
        let temperature0 = f64::from(self.settings.sa_temp_micro) * 1e-6;
        let surrogate = self.surrogate_spec();
        let (row_major, optimized) = self.reference_records()?;

        let mut cache: HashMap<String, Record> = HashMap::new();
        let mut evaluations = 0u32;
        let mut surrogate_evaluations = 0u32;
        let mut accepted_moves = 0u32;
        let mut best: Option<(Candidate, Record)> = None;
        // Top fully-evaluated candidates, feeding evolutionary restarts.
        let mut elite: Vec<(Candidate, Record)> = Vec::new();

        // Deterministic free-shape tile sweep before the annealed climbs.
        // Capped one evaluation below the budget so the hybrid family is
        // always evaluated at least once (the restart loop below needs it).
        let mut best_tiled: Option<(MappingKind, Record)> = None;
        let tiled: Vec<MappingKind> = self
            .tiled_kinds()
            .into_iter()
            .take(budget.saturating_sub(1) as usize)
            .collect();
        if !tiled.is_empty() {
            let records = self.evaluate_kinds(&tiled, self.spec, &mut cache, &mut evaluations)?;
            for (kind, record) in tiled.into_iter().zip(records) {
                let improves = match &best_tiled {
                    None => true,
                    Some((_, incumbent)) => better(&record, incumbent),
                };
                if improves {
                    best_tiled = Some((kind, record));
                }
            }
        }

        'restarts: for restart in 0..restarts {
            if evaluations >= budget {
                break;
            }
            // Budget slicing: restart `r` may climb until the run has spent
            // `ceil(budget * (r + 1) / restarts)` full evaluations, so an
            // early climb that anneals for a long time cannot starve the
            // later deterministic starts (mimic tilings, transfer seeds);
            // unspent slices roll forward.
            let ceiling = (u64::from(budget) * u64::from(restart + 1)).div_ceil(restarts.into());
            let ceiling = u32::try_from(ceiling).unwrap_or(budget).min(budget);
            let mut rng = StdRng::seed_from_u64(
                self.settings.seed ^ u64::from(restart).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut current = self.portfolio_start(restart, &elite, &mut rng)?;
            let mut current_record = self
                .evaluate_at(&[current], self.spec, &mut cache, &mut evaluations)?
                .pop()
                .expect("one candidate in, one record out");
            update_elite(&mut elite, current, &current_record);
            let improves_best = match &best {
                None => true,
                Some((_, record)) => better(&current_record, record),
            };
            if improves_best {
                best = Some((current, current_record.clone()));
            }
            let mut temperature = temperature0;
            let mut rejections = 0u32;
            // Each step spends ≥ 1 fresh full evaluation in the common
            // case; the step cap bounds pathological all-cache-hit climbs.
            let mut steps = 0u32;
            while evaluations < ceiling && steps < budget {
                steps += 1;
                let batch = self.propose_moves(current, neighbors as usize, &mut rng);
                if batch.is_empty() {
                    continue 'restarts;
                }
                // Surrogate pre-screen: rank the batch at reduced size and
                // promote only the top-k to a full evaluation.  Ties break
                // on batch order, which is itself deterministic.
                let finalists: Vec<Candidate> = match surrogate {
                    Some(spec) if batch.len() > promote => {
                        let screened =
                            self.evaluate_at(&batch, spec, &mut cache, &mut surrogate_evaluations)?;
                        let mut order: Vec<usize> = (0..batch.len()).collect();
                        order.sort_by(|&a, &b| {
                            score(&screened[b])
                                .partial_cmp(&score(&screened[a]))
                                .expect("scores are finite")
                                .then(a.cmp(&b))
                        });
                        order.truncate(promote);
                        order.into_iter().map(|index| batch[index]).collect()
                    }
                    _ => batch,
                };
                let finalists: Vec<Candidate> = finalists
                    .into_iter()
                    .take((budget - evaluations) as usize)
                    .collect();
                if finalists.is_empty() {
                    break 'restarts;
                }
                let records =
                    self.evaluate_at(&finalists, self.spec, &mut cache, &mut evaluations)?;
                let (winner, winner_record) = finalists
                    .iter()
                    .zip(&records)
                    .max_by(|(_, x), (_, y)| {
                        score(x).partial_cmp(&score(y)).expect("scores are finite")
                    })
                    .expect("non-empty batch");
                for (candidate, record) in finalists.iter().zip(&records) {
                    update_elite(&mut elite, *candidate, record);
                }
                if better(winner_record, &current_record) {
                    current = *winner;
                    current_record = winner_record.clone();
                    accepted_moves += 1;
                    rejections = 0;
                    if better(&current_record, &best.as_ref().expect("seeded above").1) {
                        best = Some((current, current_record.clone()));
                    }
                } else {
                    // Simulated annealing: walk downhill with probability
                    // exp(Δ/T) to tunnel through boundary-loss plateaus.
                    let delta = round_trip_row_hit_rate(winner_record)
                        - round_trip_row_hit_rate(&current_record);
                    let accept =
                        temperature > 0.0 && rng.gen::<f64>() < (delta / temperature).exp();
                    if accept {
                        current = *winner;
                        current_record = winner_record.clone();
                        accepted_moves += 1;
                        rejections = 0;
                    } else {
                        rejections += 1;
                        if rejections >= 3 {
                            // Frozen: spend the rest of the budget elsewhere.
                            continue 'restarts;
                        }
                    }
                }
                temperature *= 0.85;
            }
        }

        let (candidate, best_record) = best.expect("at least one restart evaluated");
        // The best free-shape tiling competes with the hybrid winner for
        // the reported record.  A tiled winner has no bit-sliced form, so
        // `permutation`/`fold` stay empty and `best.mapping` (the
        // `tiled:HxW` label) is the authoritative description.
        let (permutation, fold, best_record) = match best_tiled {
            Some((_, tiled_record)) if better(&tiled_record, &best_record) => {
                (String::new(), String::new(), tiled_record)
            }
            _ => (
                candidate.0.to_string(),
                candidate.1.to_string(),
                best_record,
            ),
        };
        Ok(self.finish(
            permutation,
            fold,
            best_record,
            restarts,
            budget,
            evaluations,
            surrogate_evaluations,
            accepted_moves,
            row_major,
            optimized,
        ))
    }

    /// Assembles the [`SearchRecord`] shared by both strategies.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        permutation: String,
        fold: String,
        best: Record,
        restarts: u32,
        budget: u32,
        evaluations: u32,
        surrogate_evaluations: u32,
        accepted_moves: u32,
        row_major: Record,
        optimized: Record,
    ) -> SearchRecord {
        SearchRecord {
            dram_label: self.dram.label(),
            seed: self.settings.seed,
            restarts,
            budget,
            evaluations,
            accepted_moves,
            bursts: self.spec.burst_count(),
            surrogate_evaluations,
            permutation,
            fold,
            best,
            row_major,
            optimized,
        }
    }

    /// The deterministic starting candidate of a portfolio `restart`:
    /// balanced/mirrored/scheme starts, the two diagonal-fold starts, the
    /// three [optimized-mimic](Self::optimized_mimic_start) tilings,
    /// transfer seeds valid for this geometry, then alternating
    /// elite-mutation and random-shuffle starts.
    fn portfolio_start(
        &self,
        restart: u32,
        elite: &[(Candidate, Record)],
        rng: &mut StdRng,
    ) -> Result<Candidate, ExpError> {
        let topology = self.dram.topology;
        let identity = XorFold::identity();
        match restart {
            0 => Ok((
                balanced_start(&self.dram, topology, self.spec.dimension(), false)?,
                identity,
            )),
            1 => Ok((
                balanced_start(&self.dram, topology, self.spec.dimension(), true)?,
                identity,
            )),
            2 => Ok((
                BitPermutation::for_scheme(self.dram.decode_scheme, &self.dram.geometry, topology)?,
                identity,
            )),
            3 | 4 => {
                // The diagonal-fold starts: express the optimized scheme's
                // `bank = (tile_i + tile_j) mod banks` term directly — the
                // form closing the DDR3/LPDDR4 (no-bank-group) gap.
                let permutation =
                    balanced_start(&self.dram, topology, self.spec.dimension(), false)?;
                let step = FoldStep {
                    target: AddressField::Bank,
                    source: AddressField::Row,
                    shift: 0,
                    op: if restart == 3 {
                        FoldOp::Xor
                    } else {
                        FoldOp::Add
                    },
                };
                let fold = XorFold::new(&[step]).expect("one in-range step");
                if fold.validate_for(&permutation).is_ok() {
                    Ok((permutation, fold))
                } else {
                    Ok((permutation, identity))
                }
            }
            5..=7 => {
                // Optimized-mimic starts: the paper's tiling reconstructed
                // inside the `(permutation, fold)` family at the exact tile
                // aspect and one step wider/taller.  SA then climbs from a
                // tie with the paper's scheme instead of hunting for it.
                let widen = [0i32, 1, -1][(restart - 5) as usize];
                if let Some(candidate) = self.optimized_mimic_start(widen) {
                    return Ok(candidate);
                }
                self.exploration_start(restart, elite, rng)
            }
            _ => self.exploration_start(restart, elite, rng),
        }
    }

    /// Late-restart starts: transfer seeds by slot, then alternating
    /// elite-mutation and seeded random-shuffle starts.
    fn exploration_start(
        &self,
        restart: u32,
        elite: &[(Candidate, Record)],
        rng: &mut StdRng,
    ) -> Result<Candidate, ExpError> {
        let topology = self.dram.topology;
        let identity = XorFold::identity();
        let slot = restart.saturating_sub(8) as usize;
        let transfer: Vec<Candidate> = self
            .transfer
            .iter()
            .copied()
            .filter(|(permutation, fold)| {
                permutation
                    .validate_for(&self.dram.geometry, topology)
                    .is_ok()
                    && fold.validate_for(permutation).is_ok()
            })
            .collect();
        if slot < transfer.len() {
            return Ok(transfer[slot]);
        }
        if restart % 2 == 1 && !elite.is_empty() {
            // Evolutionary restart: perturb an elite member.
            let (mut candidate, _) = elite[rng.gen_range(0..elite.len())];
            for _ in 0..2 {
                if let Some(moved) = self.random_move(candidate, rng) {
                    candidate = moved;
                }
            }
            return Ok(candidate);
        }
        // Seeded random shuffle (as in greedy), occasionally with a
        // random fold bolted on for extra start diversity.
        let mut permutation =
            BitPermutation::for_scheme(self.dram.decode_scheme, &self.dram.geometry, topology)?;
        let bits = permutation.total_bits() as usize;
        for a in (1..bits).rev() {
            let b = rng.gen_range(0..a + 1);
            if a != b {
                permutation = permutation.with_swap(a, b);
            }
        }
        let fold = if rng.gen_range(0..2) == 0 {
            self.mutate_fold((permutation, identity), rng)
                .map_or(identity, |(_, fold)| fold)
        } else {
            identity
        };
        Ok((permutation, fold))
    }

    /// Reconstructs the paper's optimized tiling **inside the hybrid
    /// family**: tiles of `tile_h x tile_w = groups x page` positions with
    /// the bank chosen along the tile diagonal — as a bit assignment
    /// (`column <- [oj | oi]`, `bank <- tj`, `bank_group <- j`) plus Add
    /// folds for the diagonal terms `bank += tile_i` and `group += i`.
    ///
    /// For the no-bank-group standards (DDR3, LPDDR4) the paper's stagger
    /// is a no-op and the reconstruction's page partition is **exactly**
    /// the optimized mapping's, so this start ties the paper's scheme and
    /// every accepted SA move from it is a strict improvement.  `widen`
    /// shifts one tile-aspect bit between width and height for boundary
    /// trade-off variants.  Returns `None` when the index space or
    /// geometry cannot host the layout (the caller falls back to
    /// exploration starts).
    fn optimized_mimic_start(&self, widen: i32) -> Option<Candidate> {
        let scheme = BitPermutation::for_scheme(
            self.dram.decode_scheme,
            &self.dram.geometry,
            self.dram.topology,
        )
        .ok()?;
        let total = scheme.total_bits() as usize;
        let jbits =
            tbi_interleaver::mapping::PermutedMapping::index_bits(self.spec.dimension()) as usize;
        let group_bits = scheme.width_of(AddressField::BankGroup) as usize;
        let bank_bits = scheme.width_of(AddressField::Bank) as usize;
        let page_bits = scheme.width_of(AddressField::Column) as usize;
        // The paper's tile split: tile_w * tile_h = groups * page, as square
        // as possible, the odd factor on the height, never narrower than the
        // bank-group rotation.
        let area = group_bits + page_bits;
        let mut tile_w = area / 2;
        if tile_w < group_bits {
            tile_w = group_bits;
        }
        let tile_w = usize::try_from(i64::try_from(tile_w).ok()? + i64::from(widen)).ok()?;
        if tile_w < group_bits || tile_w > area {
            return None;
        }
        let tile_h = area - tile_w;
        // Fit: the j side holds [group | oj | bank(tj)], the i side holds
        // [oi | row(ti)]; both diagonals must leave their fold source bits
        // inside addressable rows.
        let side_i = total.checked_sub(jbits)?;
        if tile_w + bank_bits > jbits || tile_h + bank_bits > side_i || jbits > total {
            return None;
        }
        let mut fields = vec![AddressField::Row; total];
        let mut pos = 0;
        for _ in 0..group_bits {
            fields[pos] = AddressField::BankGroup;
            pos += 1;
        }
        for _ in 0..(tile_w - group_bits) {
            fields[pos] = AddressField::Column;
            pos += 1;
        }
        for _ in 0..bank_bits {
            fields[pos] = AddressField::Bank;
            pos += 1;
        }
        // Row bits between here and the i side carry tile_j's high bits;
        // the diagonal fold below shifts past them to reach tile_i.
        let tj_high = jbits - pos;
        pos = jbits;
        for _ in 0..tile_h {
            fields[pos] = AddressField::Column;
            pos += 1;
        }
        // Channel and rank rotate the topmost linear bits (whole-device
        // halves — outside the tiling, as in the paper's single-device
        // Table I runs).
        let mut top = total;
        for field in [AddressField::Channel, AddressField::Rank] {
            for _ in 0..scheme.width_of(field) {
                top = top.checked_sub(1)?;
                if top < pos + bank_bits {
                    // Would clobber the i-side columns or the tile_i row
                    // bits the bank diagonal folds in.
                    return None;
                }
                fields[top] = field;
            }
        }
        let permutation = BitPermutation::new(&fields).ok()?;
        let mut fold = XorFold::identity();
        if bank_bits > 0 {
            fold = fold
                .with_step(FoldStep {
                    target: AddressField::Bank,
                    source: AddressField::Row,
                    shift: u8::try_from(tj_high).ok()?,
                    op: FoldOp::Add,
                })
                .ok()?;
        }
        if group_bits > 0 && tile_w > group_bits {
            fold = fold
                .with_step(FoldStep {
                    target: AddressField::BankGroup,
                    source: AddressField::Column,
                    shift: u8::try_from(tile_w - group_bits).ok()?,
                    op: FoldOp::Add,
                })
                .ok()?;
        }
        fold.validate_for(&permutation).ok()?;
        Some((permutation, fold))
    }

    /// Proposes up to `count` distinct neighbourhood moves of `current`,
    /// mixing bit swaps (3 in 5) with fold mutations (2 in 5).
    fn propose_moves(&self, current: Candidate, count: usize, rng: &mut StdRng) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = Vec::with_capacity(count);
        let mut guard = 0;
        while out.len() < count && guard < 64 * count {
            guard += 1;
            let Some(candidate) = self.random_move(current, rng) else {
                continue;
            };
            if candidate != current && !out.contains(&candidate) {
                out.push(candidate);
            }
        }
        out
    }

    /// One random neighbourhood move, or `None` when the draw was
    /// degenerate (same-field swap, invalid fold step, …).
    fn random_move(&self, current: Candidate, rng: &mut StdRng) -> Option<Candidate> {
        if rng.gen_range(0..5) < 3 {
            let bits = current.0.total_bits() as usize;
            let a = rng.gen_range(0..bits);
            let b = rng.gen_range(0..bits);
            if current.0.fields()[a] == current.0.fields()[b] {
                return None;
            }
            Some((current.0.with_swap(a, b), current.1))
        } else {
            self.mutate_fold(current, rng)
        }
    }

    /// One fold mutation: drop the last step, or append a random valid
    /// step (replacing the last when the fold is full).
    fn mutate_fold(&self, current: Candidate, rng: &mut StdRng) -> Option<Candidate> {
        let (permutation, fold) = current;
        if rng.gen_range(0..3) == 0 && !fold.is_identity() {
            return Some((permutation, fold.without_last()));
        }
        const FIELDS: [AddressField; 6] = [
            AddressField::Channel,
            AddressField::Rank,
            AddressField::BankGroup,
            AddressField::Bank,
            AddressField::Row,
            AddressField::Column,
        ];
        let target = FIELDS[rng.gen_range(0..FIELDS.len())];
        let source = FIELDS[rng.gen_range(0..FIELDS.len())];
        if target == source {
            return None;
        }
        let source_width = permutation.width_of(source);
        if source_width == 0 || permutation.width_of(target) == 0 {
            return None;
        }
        let shift = rng.gen_range(0..source_width) as u8;
        let step = FoldStep {
            target,
            source,
            shift,
            op: if rng.gen_range(0..2) == 0 {
                FoldOp::Xor
            } else {
                FoldOp::Add
            },
        };
        let next = fold
            .with_step(step)
            .or_else(|_| fold.without_last().with_step(step))
            .ok()?;
        next.validate_for(&permutation).ok()?;
        Some((permutation, next))
    }
}

/// Elite pool size feeding evolutionary restarts.
const ELITE: usize = 4;

/// Inserts `candidate` into the elite pool, keeping the best [`ELITE`]
/// distinct candidates sorted best-first (ties keep the earlier arrival,
/// so the pool is deterministic).
fn update_elite(elite: &mut Vec<(Candidate, Record)>, candidate: Candidate, record: &Record) {
    if elite.iter().any(|(seen, _)| *seen == candidate) {
        return;
    }
    let position = elite
        .iter()
        .position(|(_, incumbent)| better(record, incumbent))
        .unwrap_or(elite.len());
    if position < ELITE {
        elite.insert(position, (candidate, record.clone()));
        elite.truncate(ELITE);
    }
}

/// The balanced-tiling heuristic start: DRAM **column** bits are split
/// between the low `j` (write-direction) and low `i` (read-direction) index
/// bits so that page misses are shared between the phases, bank-group bits
/// sit at the bottom of the `j` side (writes rotate groups every access)
/// and bank bits at the bottom of the `i` side (reads rotate banks) — with
/// the bank bits alternating between the sides when the standard has no
/// bank groups, so *both* phases keep enough bank parallelism to hide
/// activates (slow phases pay extra refresh-induced row closures, which
/// depresses the very hit rate the search optimizes).  Channel/rank bits
/// alternate between the sides and row bits fill the rest — a permutation
/// rendering of the paper's optimizations 1 + 2.
///
/// `mirrored` swaps the two sides (and hands the larger column half to the
/// read direction), giving the search a second deterministic start on the
/// other side of the write/read trade-off.
fn balanced_start(
    dram: &DramConfig,
    topology: ChannelTopology,
    dimension: u32,
    mirrored: bool,
) -> Result<BitPermutation, ExpError> {
    let geometry = dram.geometry;
    let scheme = BitPermutation::for_scheme(DecodeScheme::default(), &geometry, topology)?;
    let total = scheme.total_bits();
    // The `j`/`i` bit boundary of the padded linearization the permutation
    // will decode — shared with the mapping so the two can never disagree.
    let jbits = tbi_interleaver::mapping::PermutedMapping::index_bits(dimension);
    let widths = |field: AddressField| scheme.width_of(field);
    let column = widths(AddressField::Column);
    let column_j = column.div_ceil(2);
    let bank_groups = widths(AddressField::BankGroup);
    let banks = widths(AddressField::Bank);

    let mut j_side: Vec<AddressField> = Vec::new();
    let mut i_side: Vec<AddressField> = Vec::new();
    // Column bits at the very bottom of each side: a phase streams one full
    // page run per bank before switching, so an index-row end leaves at
    // most ONE partial run (bank bits below the columns would interleave
    // the banks and multiply the boundary misses by the rotation width).
    j_side.extend(std::iter::repeat(AddressField::Column).take(column_j as usize));
    i_side.extend(std::iter::repeat(AddressField::Column).take((column - column_j) as usize));
    j_side.extend(std::iter::repeat(AddressField::BankGroup).take(bank_groups as usize));
    if bank_groups == 0 {
        // No bank groups: split the bank bits themselves so both phases
        // rotate banks (write side first — it streams one row at a time and
        // otherwise serializes on a single bank).
        for t in 0..banks {
            if t % 2 == 0 { &mut j_side } else { &mut i_side }.push(AddressField::Bank);
        }
    } else {
        i_side.extend(std::iter::repeat(AddressField::Bank).take(banks as usize));
    }
    for t in 0..widths(AddressField::Channel) {
        if t % 2 == 0 { &mut j_side } else { &mut i_side }.push(AddressField::Channel);
    }
    for t in 0..widths(AddressField::Rank) {
        if t % 2 == 0 { &mut i_side } else { &mut j_side }.push(AddressField::Rank);
    }
    if mirrored {
        std::mem::swap(&mut j_side, &mut i_side);
    }

    // Assemble: j side at the bottom, i side from bit `jbits`, row bits
    // everywhere else.  Should a side outgrow its `jbits` slots (tiny index
    // spaces), the excess spills into the tail, where the bits are unused.
    let mut fields = vec![AddressField::Row; total as usize];
    let mut spill: Vec<AddressField> = Vec::new();
    let jbits = jbits.min(total / 2) as usize;
    for (offset, side) in [(0usize, &j_side), (jbits, &i_side)] {
        for (k, &field) in side.iter().enumerate() {
            if offset + k < offset + jbits && offset + k < total as usize {
                fields[offset + k] = field;
            } else {
                spill.push(field);
            }
        }
    }
    let mut tail = 2 * jbits;
    for field in spill {
        while tail < total as usize && fields[tail] != AddressField::Row {
            tail += 1;
        }
        if tail < total as usize {
            fields[tail] = field;
            tail += 1;
        }
    }
    // Row bits already fill the remaining slots; counts match by
    // construction because every non-row field was placed exactly once.
    Ok(BitPermutation::new(&fields)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbi_dram::DramStandard;

    fn settings(budget: u32) -> SearchSettings {
        SearchSettings {
            seed: 42,
            restarts: 3,
            budget,
            neighbors: 4,
            workers: 1,
            ..SearchSettings::default()
        }
    }

    fn search(budget: u32) -> MappingSearch {
        let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        MappingSearch::new(
            dram,
            InterleaverSpec::from_burst_count(3_000),
            settings(budget),
        )
    }

    #[test]
    fn optimized_mimic_start_ties_the_paper_scheme_without_bank_groups() {
        // For the no-bank-group standards the stagger is a no-op, so the
        // mimic's page partition is exactly the optimized mapping's and the
        // round-trip row-hit rates must agree to double precision (the row
        // *numbering* differs; open-row behaviour only sees row equality).
        for (standard, rate) in [(DramStandard::Ddr3, 800), (DramStandard::Lpddr4, 4266)] {
            let dram = DramConfig::preset(standard, rate).unwrap();
            let search = MappingSearch::new(
                dram,
                InterleaverSpec::from_burst_count(200_000),
                settings(4),
            );
            let (permutation, fold) = search
                .optimized_mimic_start(0)
                .expect("mimic start builds for the preset");
            assert!(!fold.is_identity(), "{standard:?}-{rate}: diagonal fold");
            let mut cache = HashMap::new();
            let mut evaluations = 0;
            let mimic = search
                .evaluate_at(
                    &[(permutation, fold)],
                    search.spec,
                    &mut cache,
                    &mut evaluations,
                )
                .unwrap()
                .pop()
                .unwrap();
            let (_, optimized) = search.reference_records().unwrap();
            let mimic_rate = round_trip_row_hit_rate(&mimic);
            let optimized_rate = round_trip_row_hit_rate(&optimized);
            assert!(
                (mimic_rate - optimized_rate).abs() < 1e-12,
                "{standard:?}-{rate}: mimic {mimic_rate} vs optimized {optimized_rate}"
            );
        }
    }

    #[test]
    fn tiled_shortlist_leads_with_the_most_square_tile() {
        // Odd log2(page): the free 11x11 square beats every power-of-two
        // split and must head the shortlist.
        let ddr3 = DramConfig::preset(DramStandard::Ddr3, 800).unwrap();
        let search = MappingSearch::new(
            ddr3,
            InterleaverSpec::from_burst_count(200_000),
            settings(4),
        );
        let kinds = search.tiled_kinds();
        assert_eq!(
            kinds.first(),
            Some(&MappingKind::GeneralTiled {
                tile_h: 11,
                tile_w: 11
            })
        );
        // Even log2(page): the best free tile IS the optimized scheme's
        // 8x8 square.
        let lpddr4 = DramConfig::preset(DramStandard::Lpddr4, 4266).unwrap();
        let search = MappingSearch::new(
            lpddr4,
            InterleaverSpec::from_burst_count(200_000),
            settings(4),
        );
        let kinds = search.tiled_kinds();
        assert_eq!(
            kinds.first(),
            Some(&MappingKind::GeneralTiled {
                tile_h: 8,
                tile_w: 8
            })
        );
    }

    #[test]
    fn portfolio_reports_the_free_tile_win_on_ddr3() {
        // On DDR3-800 the 11x11 tiling strictly beats the paper's optimized
        // mapping; the portfolio's deterministic tile sweep must find it and
        // report it with empty permutation/fold fields.
        let dram = DramConfig::preset(DramStandard::Ddr3, 800).unwrap();
        let record = MappingSearch::new(
            dram,
            InterleaverSpec::from_burst_count(200_000),
            SearchSettings {
                strategy: SearchStrategy::Portfolio,
                ..settings(10)
            },
        )
        .run()
        .unwrap();
        assert_eq!(record.best.mapping, "tiled:11x11");
        assert!(record.permutation.is_empty());
        assert!(record.fold.is_empty());
        assert!(record.beats_optimized());
    }

    #[test]
    fn balanced_start_is_valid_for_every_preset_and_topology() {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            let dram = DramConfig::preset(*standard, *rate).unwrap();
            for topology in [
                ChannelTopology::default(),
                ChannelTopology::new(2, 1),
                ChannelTopology::new(4, 2),
            ] {
                let permutation = balanced_start(&dram, topology, 5000, false).unwrap();
                permutation
                    .validate_for(&dram.geometry, topology)
                    .unwrap_or_else(|e| panic!("{standard:?}-{rate} {topology:?}: {e}"));
            }
        }
    }

    #[test]
    fn balanced_start_splits_columns_between_low_i_and_low_j_bits() {
        let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let permutation = balanced_start(&dram, ChannelTopology::default(), 1000, false).unwrap();
        let fields = permutation.fields();
        let jbits = 10usize;
        let low_j_columns = fields[..jbits]
            .iter()
            .filter(|&&f| f == AddressField::Column)
            .count();
        let low_i_columns = fields[jbits..2 * jbits]
            .iter()
            .filter(|&&f| f == AddressField::Column)
            .count();
        assert_eq!(low_j_columns, 4);
        assert_eq!(low_i_columns, 3);
        // Columns sit at the very bottom of each side, the rotation bits
        // (bank groups on j, banks on i) directly above them.
        assert_eq!(fields[0], AddressField::Column);
        assert_eq!(fields[4], AddressField::BankGroup);
        assert_eq!(fields[jbits], AddressField::Column);
        assert_eq!(fields[jbits + 3], AddressField::Bank);
    }

    #[test]
    fn search_is_reproducible_across_worker_counts() {
        let sequential = search(10).run().unwrap();
        let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let parallel = MappingSearch::new(
            dram,
            InterleaverSpec::from_burst_count(3_000),
            SearchSettings {
                workers: 4,
                ..settings(10)
            },
        )
        .run()
        .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn different_seeds_can_differ_but_stay_deterministic() {
        let a = search(8).run().unwrap();
        let b = search(8).run().unwrap();
        assert_eq!(a, b, "same seed, same outcome");
        assert_eq!(a.seed, 42);
        assert!(a.evaluations <= a.budget);
    }

    #[test]
    fn discovered_mapping_beats_the_row_major_baseline() {
        let outcome = search(12).run().unwrap();
        assert!(
            outcome.discovered_row_hit_rate() > round_trip_row_hit_rate(&outcome.row_major),
            "balanced start must beat row-major's thrashing read phase"
        );
        assert!(outcome.best.min_utilization > 0.5);
        // The permutation string replays: it parses and labels the record.
        let parsed: BitPermutation = outcome.permutation.parse().unwrap();
        assert_eq!(
            outcome.best.mapping,
            MappingKind::Permutation(parsed).label()
        );
    }

    #[test]
    fn budget_caps_candidate_evaluations() {
        let outcome = search(5).run().unwrap();
        assert!(outcome.evaluations <= 5, "spent {}", outcome.evaluations);
        assert_eq!(outcome.budget, 5);
    }

    /// Regression test for the cache-aliasing bug: the candidate cache
    /// used to key on the permutation alone, so the *same* candidate
    /// evaluated under two different scenarios (e.g. a short surrogate run
    /// vs the full-size run) silently returned whichever record landed
    /// first.  The key must cover every scenario axis.
    #[test]
    fn cache_keys_on_the_full_scenario_not_the_candidate_alone() {
        let s = search(4);
        let candidate: Candidate = (
            balanced_start(
                &DramConfig::preset(DramStandard::Ddr4, 3200).unwrap(),
                ChannelTopology::default(),
                3_000,
                false,
            )
            .unwrap(),
            XorFold::identity(),
        );
        let mut cache = HashMap::new();
        let mut evaluations = 0;
        let full = s
            .evaluate_at(&[candidate], s.spec, &mut cache, &mut evaluations)
            .unwrap();
        let short_spec = InterleaverSpec::from_burst_count(1_000);
        let short = s
            .evaluate_at(&[candidate], short_spec, &mut cache, &mut evaluations)
            .unwrap();
        assert_eq!(evaluations, 2, "two scenarios, two evaluations");
        assert_eq!(cache.len(), 2, "distinct scenario keys must not alias");
        assert_ne!(
            full[0], short[0],
            "a surrogate record must never masquerade as a full-size one"
        );
        // Re-asking for either scenario is now a pure cache hit.
        s.evaluate_at(&[candidate], s.spec, &mut cache, &mut evaluations)
            .unwrap();
        assert_eq!(evaluations, 2);
    }

    #[test]
    fn portfolio_search_is_reproducible_and_labels_round_trip() {
        let portfolio = SearchSettings {
            strategy: SearchStrategy::Portfolio,
            restarts: 6,
            surrogate_divisor: 4,
            promote: 2,
            ..settings(14)
        };
        let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let spec = InterleaverSpec::from_burst_count(3_000);
        let a = MappingSearch::new(dram.clone(), spec, portfolio)
            .run()
            .unwrap();
        let b = MappingSearch::new(
            dram,
            spec,
            SearchSettings {
                workers: 4,
                ..portfolio
            },
        )
        .run()
        .unwrap();
        assert_eq!(a, b, "portfolio must be worker-count independent");
        assert!(a.evaluations <= a.budget);
        assert!(
            a.surrogate_evaluations > 0,
            "divisor 4 on 3 000 bursts must trigger the surrogate"
        );
        // The winner replays through parse_label whichever family won: a
        // tiled winner has no bit-sliced form and empty permutation/fold.
        if a.permutation.is_empty() {
            assert!(a.best.mapping.starts_with("tiled:"), "{}", a.best.mapping);
            assert!(a.fold.is_empty());
        } else {
            let label = if a.fold.is_empty() {
                format!("permutation:{}", a.permutation)
            } else {
                format!("xorfold:{}|{}", a.permutation, a.fold)
            };
            assert_eq!(a.best.mapping, label);
        }
        let parsed = MappingKind::parse_label(&a.best.mapping).unwrap();
        assert_eq!(parsed.label(), a.best.mapping);
        assert!(
            a.discovered_row_hit_rate() > round_trip_row_hit_rate(&a.row_major),
            "the portfolio keeps the greedy starts, so it beats row-major too"
        );
    }

    #[test]
    fn transfer_seeds_skip_mismatched_geometries() {
        // A DDR3 permutation (1 bank-group bit fewer) must not poison a
        // DDR4 portfolio; an in-geometry seed must be usable as a start.
        let ddr3 = DramConfig::preset(DramStandard::Ddr3, 1600).unwrap();
        let ddr4 = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let foreign = balanced_start(&ddr3, ChannelTopology::default(), 3_000, false).unwrap();
        let native = balanced_start(&ddr4, ChannelTopology::default(), 3_000, true).unwrap();
        let seeds = vec![
            (foreign, XorFold::identity()),
            (native, XorFold::identity()),
        ];
        let portfolio = SearchSettings {
            strategy: SearchStrategy::Portfolio,
            restarts: 6,
            ..settings(8)
        };
        let spec = InterleaverSpec::from_burst_count(3_000);
        let outcome = MappingSearch::new(ddr4, spec, portfolio)
            .with_transfer_seeds(&seeds)
            .run()
            .unwrap();
        // Restart 5 consumes the first *valid* seed (the native one); the
        // foreign seed is filtered out instead of failing the run.
        assert!(outcome.evaluations <= outcome.budget);
    }

    #[test]
    fn strategy_strings_round_trip() {
        for strategy in [SearchStrategy::Greedy, SearchStrategy::Portfolio] {
            let parsed: SearchStrategy = strategy.to_string().parse().unwrap();
            assert_eq!(parsed, strategy);
        }
        assert!("annealed".parse::<SearchStrategy>().is_err());
    }

    #[test]
    fn gains_are_relative_to_the_optimized_reference() {
        let outcome = search(6).run().unwrap();
        let expected = outcome.discovered_row_hit_rate() / outcome.optimized_row_hit_rate();
        assert!((outcome.row_hit_gain() - expected).abs() < 1e-12);
        assert_eq!(
            outcome.matches_or_beats_optimized(),
            outcome.row_hit_gain() >= 1.0 - MATCH_TOLERANCE
        );
    }
}
