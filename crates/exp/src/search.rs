//! Design-space exploration over bit-permutation address mappings.
//!
//! The paper hand-picks one optimized mapping; this module treats the
//! mapping as a **searchable space** instead, in the spirit of the
//! interleaver-DSE literature (Chavet et al.; SAGE): a [`MappingSearch`]
//! explores the space of [`BitPermutation`]s for one DRAM configuration
//! with a *seeded greedy bit-swap hill-climb with random restarts*:
//!
//! 1. every restart starts from a deterministic point — a balanced
//!    tiling heuristic, the controller's default decode chain, or a seeded
//!    random shuffle of the address bits;
//! 2. each step proposes a batch of bit-swap neighbours (two linear-address
//!    bits exchange their fields), evaluates them in parallel through the
//!    existing [`Experiment`] worker pool, and greedily moves to the best
//!    strictly-improving neighbour;
//! 3. when no neighbour improves, the climb restarts from the next start
//!    until the evaluation [`budget`](SearchSettings::budget) is exhausted.
//!
//! Candidates are scored by **round-trip row-hit rate** (mean of the write-
//! and read-phase hit rates) with the throughput-limiting minimum
//! utilization as tie-breaker — the two quantities the paper's Table I
//! optimizes by hand.  All decisions depend only on deterministic
//! [`Record`]s and a [`StdRng`] derived from the seed, so a search is
//! **bit-reproducible for a fixed seed at any worker count**.
//!
//! ```
//! use tbi_dram::{DramConfig, DramStandard};
//! use tbi_exp::search::{MappingSearch, SearchSettings};
//! use tbi_interleaver::InterleaverSpec;
//!
//! # fn main() -> Result<(), tbi_exp::ExpError> {
//! let dram = DramConfig::preset(DramStandard::Ddr4, 3200)?;
//! let settings = SearchSettings { budget: 12, restarts: 2, ..SearchSettings::default() };
//! let search = MappingSearch::new(dram, InterleaverSpec::from_burst_count(4_000), settings);
//! let outcome = search.run()?;
//! // The climb can only improve on its deterministic starting points, and
//! // the balanced-tiling start already splits page misses between phases.
//! assert!(outcome.discovered_row_hit_rate() > 0.5);
//! assert_eq!(outcome.permutation, outcome.best.mapping.trim_start_matches("permutation:"));
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tbi_dram::{
    AddressField, BitPermutation, ChannelTopology, ControllerConfig, DecodeScheme, DramConfig,
};
use tbi_interleaver::{InterleaverSpec, MappingKind};

use crate::record::Record;
use crate::runner::Experiment;
use crate::scenario::Scenario;
use crate::ExpError;

/// Tuning knobs of a [`MappingSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchSettings {
    /// RNG seed; identical seeds reproduce identical searches bit-for-bit,
    /// regardless of the worker count.
    pub seed: u64,
    /// Number of hill-climb starting points (clamped to ≥ 1).  Start 0 is
    /// the balanced-tiling heuristic, start 1 the controller's default
    /// decode chain, further starts are seeded random shuffles.
    pub restarts: u32,
    /// Maximum number of candidate evaluations across all restarts (clamped
    /// to ≥ 1).  The row-major/optimized reference evaluations are not
    /// counted against the budget.
    pub budget: u32,
    /// Bit-swap neighbours proposed per climb step (clamped to ≥ 1).
    pub neighbors: u32,
    /// Worker threads for candidate batches (0 = all cores).  Does not
    /// affect results, only wall-clock time.
    pub workers: usize,
}

impl Default for SearchSettings {
    fn default() -> Self {
        Self {
            seed: 0xD5E_5EED,
            restarts: 4,
            budget: 400,
            neighbors: 8,
            workers: 0,
        }
    }
}

/// The typed result of one [`MappingSearch::run`]: the best discovered
/// permutation with its full [`Record`], next to the row-major baseline and
/// the paper's optimized reference evaluated under identical conditions.
///
/// Serializable through [`crate::serialize::search_records_to_json`] and
/// [`crate::serialize::search_records_to_csv`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRecord {
    /// DRAM configuration label, e.g. `DDR4-3200`.
    pub dram_label: String,
    /// Seed the search ran with.
    pub seed: u64,
    /// Restart count the search ran with.
    pub restarts: u32,
    /// Evaluation budget the search ran with.
    pub budget: u32,
    /// Candidate evaluations actually spent (≤ budget; cache hits are free).
    pub evaluations: u32,
    /// Accepted hill-climb moves across all restarts.
    pub accepted_moves: u32,
    /// Interleaver size (bursts) the candidates were evaluated at.
    pub bursts: u64,
    /// MSB-first bit codes of the best discovered permutation (parseable by
    /// [`BitPermutation`]'s `FromStr`).
    pub permutation: String,
    /// Record of the best discovered permutation mapping.
    pub best: Record,
    /// Record of the row-major baseline under identical conditions.
    pub row_major: Record,
    /// Record of the paper's optimized mapping under identical conditions.
    pub optimized: Record,
}

/// Round-trip row-hit rate of a record: the mean of the write- and
/// read-phase row-buffer hit rates (both phases move every burst once, so
/// the mean weights them equally).
#[must_use]
pub fn round_trip_row_hit_rate(record: &Record) -> f64 {
    (record.write_row_hit_rate + record.read_row_hit_rate) / 2.0
}

/// Relative tolerance inside which two round-trip row-hit rates count as a
/// **match** (see [`SearchRecord::matches_or_beats_optimized`]).
///
/// One part in 10⁴ is the boundary-alignment noise floor of a full-size
/// run: it corresponds to ~1 000 of 25 000 000 row decisions, below the
/// shift the *same* mapping sees between two speed grades of the same
/// standard under refresh (e.g. the optimized scheme's round-trip hit rate
/// moves by ~8 × 10⁻⁴ between LPDDR4-2133 and LPDDR4-4266).  Exact gains
/// are always reported next to the flag ([`SearchRecord::row_hit_gain`]),
/// so nothing hides behind the tolerance.
pub const MATCH_TOLERANCE: f64 = 1e-4;

impl SearchRecord {
    /// Round-trip row-hit rate of the discovered mapping.
    #[must_use]
    pub fn discovered_row_hit_rate(&self) -> f64 {
        round_trip_row_hit_rate(&self.best)
    }

    /// Round-trip row-hit rate of the paper's optimized mapping.
    #[must_use]
    pub fn optimized_row_hit_rate(&self) -> f64 {
        round_trip_row_hit_rate(&self.optimized)
    }

    /// Whether the discovered mapping's round-trip row-hit rate matches
    /// (within the relative [`MATCH_TOLERANCE`]) or beats the paper's
    /// optimized scheme — the headline DSE claim.  Use
    /// [`SearchRecord::row_hit_gain`] for the exact ratio.
    #[must_use]
    pub fn matches_or_beats_optimized(&self) -> bool {
        self.row_hit_gain() >= 1.0 - MATCH_TOLERANCE
    }

    /// Ratio of discovered to optimized round-trip row-hit rate.
    #[must_use]
    pub fn row_hit_gain(&self) -> f64 {
        self.discovered_row_hit_rate() / self.optimized_row_hit_rate().max(1e-9)
    }

    /// Ratio of discovered to optimized minimum utilization.
    #[must_use]
    pub fn utilization_gain(&self) -> f64 {
        self.best.min_utilization / self.optimized.min_utilization.max(1e-9)
    }
}

/// Greedy bit-swap hill-climb with random restarts over the
/// [`BitPermutation`] design space of one DRAM configuration.
///
/// See the [module documentation](self) for the algorithm and the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct MappingSearch {
    dram: DramConfig,
    spec: InterleaverSpec,
    controller: ControllerConfig,
    settings: SearchSettings,
}

/// Lexicographic candidate score: round-trip row-hit rate first, minimum
/// utilization as tie-breaker.
fn score(record: &Record) -> (f64, f64) {
    (round_trip_row_hit_rate(record), record.min_utilization)
}

fn better(candidate: &Record, incumbent: &Record) -> bool {
    score(candidate) > score(incumbent)
}

impl MappingSearch {
    /// Creates a search on `dram` for an interleaver of `spec` bursts.
    #[must_use]
    pub fn new(dram: DramConfig, spec: InterleaverSpec, settings: SearchSettings) -> Self {
        Self {
            dram,
            spec,
            controller: ControllerConfig::default(),
            settings,
        }
    }

    /// Replaces the controller configuration applied to every evaluation.
    #[must_use]
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// The settings the search runs with.
    #[must_use]
    pub fn settings(&self) -> &SearchSettings {
        &self.settings
    }

    fn scenario(&self, kind: MappingKind) -> Scenario {
        Scenario::custom(self.dram.clone(), kind, self.spec).with_controller(self.controller)
    }

    /// Evaluates a batch of candidate permutations through the shared
    /// [`Experiment`] worker pool, consulting and filling `cache`.
    fn evaluate(
        &self,
        candidates: &[BitPermutation],
        cache: &mut HashMap<BitPermutation, Record>,
        evaluations: &mut u32,
    ) -> Result<Vec<Record>, ExpError> {
        let fresh: Vec<BitPermutation> = {
            let mut unique = Vec::new();
            for &candidate in candidates {
                if !cache.contains_key(&candidate) && !unique.contains(&candidate) {
                    unique.push(candidate);
                }
            }
            unique
        };
        if !fresh.is_empty() {
            let scenarios: Vec<Scenario> = fresh
                .iter()
                .map(|&p| self.scenario(MappingKind::Permutation(p)))
                .collect();
            let experiment = Experiment::new(scenarios);
            let experiment = if self.settings.workers == 0 {
                experiment.with_auto_workers()
            } else {
                experiment.with_workers(self.settings.workers)
            };
            let records = experiment.run()?;
            *evaluations += fresh.len() as u32;
            for (permutation, record) in fresh.into_iter().zip(records) {
                cache.insert(permutation, record);
            }
        }
        Ok(candidates
            .iter()
            .map(|candidate| cache[candidate].clone())
            .collect())
    }

    /// The deterministic starting permutation of `restart`.
    fn starting_point(&self, restart: u32, rng: &mut StdRng) -> Result<BitPermutation, ExpError> {
        let topology = self.dram.topology;
        match restart {
            0 => balanced_start(&self.dram, topology, self.spec.dimension(), false),
            1 => balanced_start(&self.dram, topology, self.spec.dimension(), true),
            2 => Ok(BitPermutation::for_scheme(
                self.dram.decode_scheme,
                &self.dram.geometry,
                topology,
            )?),
            _ => {
                let mut permutation = BitPermutation::for_scheme(
                    self.dram.decode_scheme,
                    &self.dram.geometry,
                    topology,
                )?;
                // Fisher–Yates over the bit positions, driven by the seeded
                // RNG, yields a uniform random field assignment.
                let bits = permutation.total_bits() as usize;
                for a in (1..bits).rev() {
                    let b = rng.gen_range(0..a + 1);
                    if a != b {
                        permutation = permutation.with_swap(a, b);
                    }
                }
                Ok(permutation)
            }
        }
    }

    /// Runs the search and returns the [`SearchRecord`] of the best
    /// discovered permutation.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] if the interleaver does not fit the padded
    /// permutation space of the device, or any evaluation fails.
    pub fn run(&self) -> Result<SearchRecord, ExpError> {
        let restarts = self.settings.restarts.max(1);
        let budget = self.settings.budget.max(1);
        let neighbors = self.settings.neighbors.max(1);

        // References (not counted against the candidate budget).
        let references = {
            let scenarios = vec![
                self.scenario(MappingKind::RowMajor),
                self.scenario(MappingKind::Optimized),
            ];
            let experiment = Experiment::new(scenarios);
            let experiment = if self.settings.workers == 0 {
                experiment.with_auto_workers()
            } else {
                experiment.with_workers(self.settings.workers)
            };
            experiment.run()?
        };
        let row_major = references[0].clone();
        let optimized = references[1].clone();

        let mut cache: HashMap<BitPermutation, Record> = HashMap::new();
        let mut evaluations = 0u32;
        let mut accepted_moves = 0u32;
        let mut best: Option<(BitPermutation, Record)> = None;

        'restarts: for restart in 0..restarts {
            if evaluations >= budget {
                break;
            }
            // One RNG per restart keeps restarts independent of each other's
            // step counts (and therefore insensitive to early stops).
            let mut rng = StdRng::seed_from_u64(
                self.settings.seed ^ u64::from(restart).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut current = self.starting_point(restart, &mut rng)?;
            let mut current_record = self
                .evaluate(&[current], &mut cache, &mut evaluations)?
                .pop()
                .expect("one candidate in, one record out");
            let improves_best = match &best {
                None => true,
                Some((_, record)) => better(&current_record, record),
            };
            if improves_best {
                best = Some((current, current_record.clone()));
            }
            while evaluations < budget {
                let bits = current.total_bits() as usize;
                let batch = (neighbors as usize).min((budget - evaluations) as usize);
                let mut candidates = Vec::with_capacity(batch);
                let mut guard = 0;
                while candidates.len() < batch && guard < 64 * batch {
                    guard += 1;
                    let a = rng.gen_range(0..bits);
                    let b = rng.gen_range(0..bits);
                    let fields = current.fields();
                    if fields[a] == fields[b] {
                        continue;
                    }
                    let swapped = current.with_swap(a, b);
                    if !candidates.contains(&swapped) {
                        candidates.push(swapped);
                    }
                }
                if candidates.is_empty() {
                    continue 'restarts;
                }
                let records = self.evaluate(&candidates, &mut cache, &mut evaluations)?;
                let winner = candidates
                    .iter()
                    .zip(&records)
                    .max_by(|(_, x), (_, y)| {
                        score(x).partial_cmp(&score(y)).expect("scores are finite")
                    })
                    .expect("non-empty batch");
                if better(winner.1, &current_record) {
                    current = *winner.0;
                    current_record = winner.1.clone();
                    accepted_moves += 1;
                    if better(&current_record, &best.as_ref().expect("seeded above").1) {
                        best = Some((current, current_record.clone()));
                    }
                } else {
                    // Local optimum: spend the rest of the budget elsewhere.
                    continue 'restarts;
                }
            }
            break;
        }

        let (permutation, best_record) = best.expect("at least one restart evaluated");
        Ok(SearchRecord {
            dram_label: self.dram.label(),
            seed: self.settings.seed,
            restarts,
            budget,
            evaluations,
            accepted_moves,
            bursts: self.spec.burst_count(),
            permutation: permutation.to_string(),
            best: best_record,
            row_major,
            optimized,
        })
    }
}

/// The balanced-tiling heuristic start: DRAM **column** bits are split
/// between the low `j` (write-direction) and low `i` (read-direction) index
/// bits so that page misses are shared between the phases, bank-group bits
/// sit at the bottom of the `j` side (writes rotate groups every access)
/// and bank bits at the bottom of the `i` side (reads rotate banks) — with
/// the bank bits alternating between the sides when the standard has no
/// bank groups, so *both* phases keep enough bank parallelism to hide
/// activates (slow phases pay extra refresh-induced row closures, which
/// depresses the very hit rate the search optimizes).  Channel/rank bits
/// alternate between the sides and row bits fill the rest — a permutation
/// rendering of the paper's optimizations 1 + 2.
///
/// `mirrored` swaps the two sides (and hands the larger column half to the
/// read direction), giving the search a second deterministic start on the
/// other side of the write/read trade-off.
fn balanced_start(
    dram: &DramConfig,
    topology: ChannelTopology,
    dimension: u32,
    mirrored: bool,
) -> Result<BitPermutation, ExpError> {
    let geometry = dram.geometry;
    let scheme = BitPermutation::for_scheme(DecodeScheme::default(), &geometry, topology)?;
    let total = scheme.total_bits();
    // The `j`/`i` bit boundary of the padded linearization the permutation
    // will decode — shared with the mapping so the two can never disagree.
    let jbits = tbi_interleaver::mapping::PermutedMapping::index_bits(dimension);
    let widths = |field: AddressField| scheme.width_of(field);
    let column = widths(AddressField::Column);
    let column_j = column.div_ceil(2);
    let bank_groups = widths(AddressField::BankGroup);
    let banks = widths(AddressField::Bank);

    let mut j_side: Vec<AddressField> = Vec::new();
    let mut i_side: Vec<AddressField> = Vec::new();
    // Column bits at the very bottom of each side: a phase streams one full
    // page run per bank before switching, so an index-row end leaves at
    // most ONE partial run (bank bits below the columns would interleave
    // the banks and multiply the boundary misses by the rotation width).
    j_side.extend(std::iter::repeat(AddressField::Column).take(column_j as usize));
    i_side.extend(std::iter::repeat(AddressField::Column).take((column - column_j) as usize));
    j_side.extend(std::iter::repeat(AddressField::BankGroup).take(bank_groups as usize));
    if bank_groups == 0 {
        // No bank groups: split the bank bits themselves so both phases
        // rotate banks (write side first — it streams one row at a time and
        // otherwise serializes on a single bank).
        for t in 0..banks {
            if t % 2 == 0 { &mut j_side } else { &mut i_side }.push(AddressField::Bank);
        }
    } else {
        i_side.extend(std::iter::repeat(AddressField::Bank).take(banks as usize));
    }
    for t in 0..widths(AddressField::Channel) {
        if t % 2 == 0 { &mut j_side } else { &mut i_side }.push(AddressField::Channel);
    }
    for t in 0..widths(AddressField::Rank) {
        if t % 2 == 0 { &mut i_side } else { &mut j_side }.push(AddressField::Rank);
    }
    if mirrored {
        std::mem::swap(&mut j_side, &mut i_side);
    }

    // Assemble: j side at the bottom, i side from bit `jbits`, row bits
    // everywhere else.  Should a side outgrow its `jbits` slots (tiny index
    // spaces), the excess spills into the tail, where the bits are unused.
    let mut fields = vec![AddressField::Row; total as usize];
    let mut spill: Vec<AddressField> = Vec::new();
    let jbits = jbits.min(total / 2) as usize;
    for (offset, side) in [(0usize, &j_side), (jbits, &i_side)] {
        for (k, &field) in side.iter().enumerate() {
            if offset + k < offset + jbits && offset + k < total as usize {
                fields[offset + k] = field;
            } else {
                spill.push(field);
            }
        }
    }
    let mut tail = 2 * jbits;
    for field in spill {
        while tail < total as usize && fields[tail] != AddressField::Row {
            tail += 1;
        }
        if tail < total as usize {
            fields[tail] = field;
            tail += 1;
        }
    }
    // Row bits already fill the remaining slots; counts match by
    // construction because every non-row field was placed exactly once.
    Ok(BitPermutation::new(&fields)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbi_dram::DramStandard;

    fn settings(budget: u32) -> SearchSettings {
        SearchSettings {
            seed: 42,
            restarts: 3,
            budget,
            neighbors: 4,
            workers: 1,
        }
    }

    fn search(budget: u32) -> MappingSearch {
        let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        MappingSearch::new(
            dram,
            InterleaverSpec::from_burst_count(3_000),
            settings(budget),
        )
    }

    #[test]
    fn balanced_start_is_valid_for_every_preset_and_topology() {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            let dram = DramConfig::preset(*standard, *rate).unwrap();
            for topology in [
                ChannelTopology::default(),
                ChannelTopology::new(2, 1),
                ChannelTopology::new(4, 2),
            ] {
                let permutation = balanced_start(&dram, topology, 5000, false).unwrap();
                permutation
                    .validate_for(&dram.geometry, topology)
                    .unwrap_or_else(|e| panic!("{standard:?}-{rate} {topology:?}: {e}"));
            }
        }
    }

    #[test]
    fn balanced_start_splits_columns_between_low_i_and_low_j_bits() {
        let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let permutation = balanced_start(&dram, ChannelTopology::default(), 1000, false).unwrap();
        let fields = permutation.fields();
        let jbits = 10usize;
        let low_j_columns = fields[..jbits]
            .iter()
            .filter(|&&f| f == AddressField::Column)
            .count();
        let low_i_columns = fields[jbits..2 * jbits]
            .iter()
            .filter(|&&f| f == AddressField::Column)
            .count();
        assert_eq!(low_j_columns, 4);
        assert_eq!(low_i_columns, 3);
        // Columns sit at the very bottom of each side, the rotation bits
        // (bank groups on j, banks on i) directly above them.
        assert_eq!(fields[0], AddressField::Column);
        assert_eq!(fields[4], AddressField::BankGroup);
        assert_eq!(fields[jbits], AddressField::Column);
        assert_eq!(fields[jbits + 3], AddressField::Bank);
    }

    #[test]
    fn search_is_reproducible_across_worker_counts() {
        let sequential = search(10).run().unwrap();
        let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let parallel = MappingSearch::new(
            dram,
            InterleaverSpec::from_burst_count(3_000),
            SearchSettings {
                workers: 4,
                ..settings(10)
            },
        )
        .run()
        .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn different_seeds_can_differ_but_stay_deterministic() {
        let a = search(8).run().unwrap();
        let b = search(8).run().unwrap();
        assert_eq!(a, b, "same seed, same outcome");
        assert_eq!(a.seed, 42);
        assert!(a.evaluations <= a.budget);
    }

    #[test]
    fn discovered_mapping_beats_the_row_major_baseline() {
        let outcome = search(12).run().unwrap();
        assert!(
            outcome.discovered_row_hit_rate() > round_trip_row_hit_rate(&outcome.row_major),
            "balanced start must beat row-major's thrashing read phase"
        );
        assert!(outcome.best.min_utilization > 0.5);
        // The permutation string replays: it parses and labels the record.
        let parsed: BitPermutation = outcome.permutation.parse().unwrap();
        assert_eq!(
            outcome.best.mapping,
            MappingKind::Permutation(parsed).label()
        );
    }

    #[test]
    fn budget_caps_candidate_evaluations() {
        let outcome = search(5).run().unwrap();
        assert!(outcome.evaluations <= 5, "spent {}", outcome.evaluations);
        assert_eq!(outcome.budget, 5);
    }

    #[test]
    fn gains_are_relative_to_the_optimized_reference() {
        let outcome = search(6).run().unwrap();
        let expected = outcome.discovered_row_hit_rate() / outcome.optimized_row_hit_rate();
        assert!((outcome.row_hit_gain() - expected).abs() < 1e-12);
        assert_eq!(
            outcome.matches_or_beats_optimized(),
            outcome.row_hit_gain() >= 1.0 - MATCH_TOLERANCE
        );
    }
}
