//! Parallel scenario execution with deterministic result ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::record::Record;
use crate::scenario::Scenario;
use crate::ExpError;

/// Runs a batch of scenarios and collects their records.
///
/// Scenarios are distributed over `std::thread` workers via an atomic work
/// queue; each record is stored at its scenario's index, so the output order
/// equals the input order **regardless of worker count** — a 1-worker and an
/// N-worker run of the same experiment produce identical record vectors.
///
/// # Examples
///
/// ```
/// use tbi_dram::DramStandard;
/// use tbi_interleaver::{InterleaverSpec, MappingKind};
/// use tbi_exp::{Experiment, Scenario};
///
/// # fn main() -> Result<(), tbi_exp::ExpError> {
/// let spec = InterleaverSpec::from_burst_count(2_000);
/// let scenarios = vec![
///     Scenario::preset(DramStandard::Ddr4, 3200, MappingKind::RowMajor, spec)?,
///     Scenario::preset(DramStandard::Ddr4, 3200, MappingKind::Optimized, spec)?,
/// ];
/// let records = Experiment::new(scenarios).with_workers(2).run()?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].mapping, "row-major");
/// assert_eq!(records[1].mapping, "optimized");
/// assert!(records.iter().all(|r| r.min_utilization > 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    scenarios: Vec<Scenario>,
    workers: usize,
}

impl Experiment {
    /// Creates an experiment running `scenarios` on a single worker.
    #[must_use]
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        Self {
            scenarios,
            workers: 1,
        }
    }

    /// Sets the worker count (clamped to at least 1).  The result order does
    /// not depend on this value.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the worker count to the available hardware parallelism (capped
    /// at the scenario count).
    #[must_use]
    pub fn with_auto_workers(self) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let cap = self.scenarios.len().max(1);
        self.with_workers(parallelism.min(cap))
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The scenarios in execution (and result) order.
    #[must_use]
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Runs every scenario and returns the records in scenario order.
    ///
    /// # Examples
    ///
    /// ```
    /// use tbi_dram::DramStandard;
    /// use tbi_exp::{Experiment, Scenario};
    /// use tbi_interleaver::{InterleaverSpec, MappingKind};
    ///
    /// # fn main() -> Result<(), tbi_exp::ExpError> {
    /// let scenario = Scenario::preset(
    ///     DramStandard::Ddr4,
    ///     3200,
    ///     MappingKind::Optimized,
    ///     InterleaverSpec::from_burst_count(2_000),
    /// )?;
    /// let records = Experiment::new(vec![scenario]).run()?;
    /// assert_eq!(records.len(), 1);
    /// assert!(records[0].min_utilization > 0.5);
    /// assert!(records[0].simulated_cycles > 0);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Scenario`] naming the first failing scenario in
    /// scenario order (not completion order, so the reported error is also
    /// deterministic across worker counts).
    pub fn run(&self) -> Result<Vec<Record>, ExpError> {
        let n = self.scenarios.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut slots: Vec<Option<Result<Record, ExpError>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        if self.workers == 1 || n == 1 {
            for (slot, scenario) in slots.iter_mut().zip(&self.scenarios) {
                *slot = Some(run_one(scenario));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let results = Mutex::new(&mut slots);
            std::thread::scope(|scope| {
                for _ in 0..self.workers.min(n) {
                    scope.spawn(|| loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let outcome = run_one(&self.scenarios[index]);
                        results.lock().expect("result mutex poisoned")[index] = Some(outcome);
                    });
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every scenario index was executed"))
            .collect()
    }
}

/// Runs one scenario, wrapping failures with the scenario's ID and its full
/// axis-value display (so a failing sweep cell is diagnosable from the log).
fn run_one(scenario: &Scenario) -> Result<Record, ExpError> {
    scenario.run().map_err(|source| ExpError::Scenario {
        id: scenario.id(),
        detail: scenario.to_string(),
        source: Box::new(source),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;
    use tbi_dram::DramStandard;
    use tbi_interleaver::{InterleaverSpec, MappingKind};

    fn small_grid() -> SweepGrid {
        SweepGrid::new()
            .preset(DramStandard::Ddr3, 800)
            .unwrap()
            .preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .sizes([1_000, 3_000])
            .mappings(MappingKind::TABLE1)
    }

    #[test]
    fn empty_experiment_yields_no_records() {
        let records = Experiment::new(Vec::new()).with_workers(4).run().unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let sequential = small_grid().into_experiment().run().unwrap();
        let parallel = small_grid()
            .into_experiment()
            .with_workers(4)
            .run()
            .unwrap();
        assert_eq!(sequential.len(), 8);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn records_follow_scenario_order() {
        let experiment = small_grid().into_experiment().with_workers(3);
        let ids: Vec<String> = experiment.scenarios().iter().map(Scenario::id).collect();
        let records = experiment.run().unwrap();
        let record_ids: Vec<&str> = records.iter().map(|r| r.scenario_id.as_str()).collect();
        assert_eq!(ids, record_ids);
    }

    #[test]
    fn first_failing_scenario_is_reported_in_order() {
        // Index 0 and 2 both fail (the interleaver cannot fit); the reported
        // scenario must be index 0 for any worker count.
        let spec = InterleaverSpec::from_burst_count(100_000_000_000);
        let ok_spec = InterleaverSpec::from_burst_count(1_000);
        let scenarios = vec![
            Scenario::preset(DramStandard::Ddr3, 800, MappingKind::RowMajor, spec).unwrap(),
            Scenario::preset(DramStandard::Ddr3, 800, MappingKind::RowMajor, ok_spec).unwrap(),
            Scenario::preset(DramStandard::Ddr4, 3200, MappingKind::RowMajor, spec).unwrap(),
        ];
        let first_id = scenarios[0].id();
        for workers in [1, 4] {
            let err = Experiment::new(scenarios.clone())
                .with_workers(workers)
                .run()
                .unwrap_err();
            match err {
                ExpError::Scenario { id, .. } => assert_eq!(id, first_id),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn auto_workers_is_at_least_one() {
        let experiment = Experiment::new(Vec::new()).with_auto_workers();
        assert!(experiment.workers() >= 1);
        let experiment = small_grid().into_experiment().with_auto_workers();
        assert!(experiment.workers() >= 1);
        assert!(experiment.workers() <= 8);
    }

    #[test]
    fn with_workers_clamps_zero() {
        assert_eq!(Experiment::new(Vec::new()).with_workers(0).workers(), 1);
    }
}
