//! Property tests for the DRAM address mappings: every [`MappingKind`] must
//! be a bijection from the whole triangular index space onto *distinct*
//! (bank, row, column) addresses that lie within the device bounds, for
//! randomized interleaver sizes and every DRAM preset of the paper.
//!
//! This is the exhaustive counterpart to the sampled in-crate property test:
//! instead of probing random positions it walks the complete index space, so
//! an off-by-one at the triangle edge or a collision between tile boundaries
//! cannot hide.

use proptest::prelude::*;
use std::collections::HashSet;
use tbi_dram::standards::{ALL_CONFIGS, MODERN_CONFIGS};
use tbi_dram::{
    AddressDecoder, AddressField, BitPermutation, ChannelTopology, DecodeScheme, DramConfig,
    DramStandard, FoldOp, FoldStep, XorFold,
};
use tbi_interleaver::mapping::{ChannelMapping, PermutedMapping};
use tbi_interleaver::{InterleaverSpec, MappingKind, RowMajorMapping, TileOrder};

/// One combined preset axis: the paper's Table I configurations followed by
/// the modern scale-out presets (HBM2 pseudo-channel, GDDR6, DDR5-3DS), so
/// every property below covers the campaign devices alongside the paper's.
fn preset_at(index: usize) -> (DramStandard, u32) {
    if index < ALL_CONFIGS.len() {
        ALL_CONFIGS[index]
    } else {
        MODERN_CONFIGS[index - ALL_CONFIGS.len()]
    }
}

/// Length of the combined preset axis for strategy ranges.
fn preset_count() -> usize {
    ALL_CONFIGS.len() + MODERN_CONFIGS.len()
}

/// Every campaign device must hold the paper's full-size interleaver under
/// both Table I mappings, baked topology included.  This is a construction
/// (capacity) check, not a simulation: the optimized mapping's padded
/// square footprint is roughly twice the triangular burst count, and the
/// channel stripe router interleaves accesses — not capacity — so each
/// channel must address the whole padded frame.
#[test]
fn modern_presets_hold_the_full_size_interleaver_under_both_mappings() {
    let n = InterleaverSpec::from_burst_count(12_500_000).dimension();
    for &(standard, rate) in MODERN_CONFIGS {
        let dram = DramConfig::preset(standard, rate).unwrap();
        for kind in MappingKind::TABLE1 {
            ChannelMapping::new(kind, &dram, n).unwrap_or_else(|e| {
                panic!(
                    "{} / {kind} rejects the full-size interleaver: {e}",
                    dram.label()
                )
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_mapping_is_a_bijection_within_device_bounds(
        preset_idx in 0usize..preset_count(),
        kind_idx in 0usize..MappingKind::ALL.len(),
        bursts in 64u64..20_000,
    ) {
        let (standard, rate) = preset_at(preset_idx);
        let dram = DramConfig::preset(standard, rate).unwrap();
        let spec = InterleaverSpec::from_burst_count(bursts);
        let n = spec.dimension();
        let kind = MappingKind::ALL[kind_idx];
        let mapping = kind.build(&dram, n).unwrap();

        let mut addresses = HashSet::with_capacity(spec.total_positions() as usize);
        for i in 0..n {
            for j in 0..n - i {
                let addr = mapping.map(i, j);
                prop_assert!(
                    addr.is_valid_for(&dram.geometry),
                    "{kind} on {}: ({i},{j}) mapped out of bounds to {addr:?}",
                    dram.label()
                );
                prop_assert!(
                    addresses.insert(addr),
                    "{kind} on {}: address collision at ({i},{j})",
                    dram.label()
                );
            }
        }
        prop_assert_eq!(addresses.len() as u64, spec.total_positions());
    }

    #[test]
    fn mappings_agree_with_spec_capacity_check(
        kind_idx in 0usize..MappingKind::ALL.len(),
        bursts in 64u64..50_000,
    ) {
        // If the spec says the interleaver fits the device, the mapping must
        // build; the smallest paper preset (DDR3-800) is the tightest case.
        let dram = DramConfig::preset(tbi_dram::DramStandard::Ddr3, 800).unwrap();
        let spec = InterleaverSpec::from_burst_count(bursts);
        let fits = spec.check_capacity(dram.geometry.total_bursts()).is_ok();
        let built = MappingKind::ALL[kind_idx].build(&dram, spec.dimension()).is_ok();
        prop_assert!(
            !fits || built,
            "spec fits ({} bursts) but mapping failed to build",
            spec.total_positions()
        );
    }

    /// Permutation ↔ existing-scheme equivalence classes: for every preset
    /// geometry, decode scheme and channel/rank topology, the scheme's
    /// permutation form ([`BitPermutation::for_scheme`]) must decode
    /// bit-identically to the classic chain — rank-aware
    /// [`AddressDecoder`] splicing plus bottom channel bits.
    #[test]
    fn scheme_permutations_decode_bit_identically_across_geometries_and_topologies(
        preset_idx in 0usize..preset_count(),
        scheme_idx in 0usize..DecodeScheme::ALL.len(),
        channels_log2 in 0u32..3,
        ranks_log2 in 0u32..3,
        start in 0u64..(1u64 << 24),
    ) {
        let (standard, rate) = preset_at(preset_idx);
        let geometry = DramConfig::preset(standard, rate).unwrap().geometry;
        let scheme = DecodeScheme::ALL[scheme_idx];
        let channels = 1u32 << channels_log2;
        let ranks = 1u32 << ranks_log2;
        let topology = ChannelTopology::new(channels, ranks);
        let permutation = BitPermutation::for_scheme(scheme, &geometry, topology).unwrap();
        let mapping =
            tbi_dram::PermutationMapping::new(geometry, topology, permutation).unwrap();
        let decoder = AddressDecoder::with_ranks(geometry, scheme, ranks);
        for linear in start..start + 512 {
            let (channel, address) = mapping.decode(linear);
            prop_assert_eq!(channel, (linear % u64::from(channels)) as u32);
            let expected = decoder.decode(linear / u64::from(channels));
            prop_assert_eq!(
                address,
                expected,
                "{:?}-{} {:?} c{}r{} linear={}",
                standard, rate, scheme, channels, ranks, linear
            );
            prop_assert_eq!(mapping.encode(channel, address), linear);
        }
    }

    /// The row-major baseline's permutation form, driven through the
    /// interleaver layer: a [`PermutedMapping`] of the default scheme's
    /// permutation agrees with [`RowMajorMapping`] wherever the two
    /// linearizations coincide (the full first index row, where the compact
    /// triangular rank equals the padded linear index).
    #[test]
    fn row_major_permutation_form_matches_on_the_first_row(
        preset_idx in 0usize..preset_count(),
        n in 64u32..2000,
    ) {
        let (standard, rate) = preset_at(preset_idx);
        let geometry = DramConfig::preset(standard, rate).unwrap().geometry;
        let permutation = BitPermutation::for_scheme(
            DecodeScheme::default(),
            &geometry,
            ChannelTopology::default(),
        )
        .unwrap();
        let permuted =
            PermutedMapping::new(geometry, ChannelTopology::default(), permutation, n).unwrap();
        let row_major = RowMajorMapping::new(geometry, n).unwrap();
        use tbi_interleaver::DramMapping;
        for j in 0..n.min(512) {
            prop_assert_eq!(permuted.map(0, j), row_major.map(0, j), "j={}", j);
        }
    }

    /// Batched address generation: `map_batch` must fill lanes bit-identical
    /// to per-element `map()` for every preset, every decode scheme (the
    /// row-major baseline honours it), every named kind, and both
    /// permutation decode plans — including the non-contiguous "gather"
    /// permutation that exercises the scatter-table slow path.
    #[test]
    fn map_batch_lanes_equal_scalar_map_for_all_presets_schemes_and_kinds(
        preset_idx in 0usize..preset_count(),
        scheme_idx in 0usize..DecodeScheme::ALL.len(),
        kind_idx in 0usize..MappingKind::ALL.len() + 2,
        n in 64u32..300,
    ) {
        let (standard, rate) = preset_at(preset_idx);
        let mut dram = DramConfig::preset(standard, rate).unwrap();
        dram.decode_scheme = DecodeScheme::ALL[scheme_idx];
        let kind = if kind_idx < MappingKind::ALL.len() {
            MappingKind::ALL[kind_idx]
        } else {
            let contiguous = BitPermutation::for_scheme(
                dram.decode_scheme,
                &dram.geometry,
                ChannelTopology::default(),
            )
            .unwrap();
            if kind_idx == MappingKind::ALL.len() {
                MappingKind::Permutation(contiguous)
            } else {
                // Swapping low against high bits breaks every field's
                // contiguity: the scalar decode takes the per-bit gather
                // loop, the batch kernel its multi-segment scatter plan.
                let top = contiguous.fields().len() - 1;
                MappingKind::Permutation(contiguous.with_swap(0, top).with_swap(1, top / 2))
            }
        };
        let mapping = kind.build(&dram, n).unwrap();

        let coords: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| (0..n - i).map(move |j| (i, j)))
            .collect();
        let mut batch = tbi_dram::AddressBatch::new();
        mapping.map_batch(&coords, &mut batch);
        prop_assert_eq!(batch.len(), coords.len());
        for (index, &(i, j)) in coords.iter().enumerate() {
            let (channel, address) = batch.get(index);
            prop_assert_eq!(channel, 0, "single-channel batch at ({},{})", i, j);
            prop_assert_eq!(
                address,
                mapping.map(i, j),
                "{} on {}: batch diverges at ({},{})",
                kind, dram.label(), i, j
            );
        }
    }

    /// Batched channel routing: `route_batch` must agree with per-element
    /// `route()` for every preset, decode scheme, channel/rank topology and
    /// router (linear-splice, stripe-tile, permutation — contiguous and
    /// gather forms).
    #[test]
    fn route_batch_equals_scalar_route_across_topologies_and_schemes(
        preset_idx in 0usize..preset_count(),
        scheme_idx in 0usize..DecodeScheme::ALL.len(),
        kind_idx in 0usize..MappingKind::ALL.len() + 2,
        channels_log2 in 0u32..3,
        ranks_log2 in 0u32..2,
        n in 64u32..250,
    ) {
        let (standard, rate) = preset_at(preset_idx);
        let mut dram = DramConfig::preset(standard, rate).unwrap();
        dram.decode_scheme = DecodeScheme::ALL[scheme_idx];
        let topology = ChannelTopology::new(1 << channels_log2, 1 << ranks_log2);
        let dram = dram.with_topology(topology);
        let kind = if kind_idx < MappingKind::ALL.len() {
            MappingKind::ALL[kind_idx]
        } else {
            let contiguous =
                BitPermutation::for_scheme(dram.decode_scheme, &dram.geometry, topology)
                    .unwrap();
            if kind_idx == MappingKind::ALL.len() {
                MappingKind::Permutation(contiguous)
            } else {
                let top = contiguous.fields().len() - 1;
                MappingKind::Permutation(contiguous.with_swap(0, top).with_swap(1, top / 2))
            }
        };
        let mapping = ChannelMapping::new(kind, &dram, n).unwrap();

        let coords: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| (0..n - i).map(move |j| (i, j)))
            .collect();
        let mut batch = tbi_dram::AddressBatch::new();
        mapping.route_batch(&coords, &mut batch);
        prop_assert_eq!(batch.len(), coords.len());
        for (index, &(i, j)) in coords.iter().enumerate() {
            prop_assert_eq!(
                batch.get(index),
                mapping.route(i, j),
                "{} on {} {}x{}: batch route diverges at ({},{})",
                kind, dram.label(), topology.channels, topology.ranks, i, j
            );
        }
    }

    /// The stripe-tile (tile-rotate) router's batched kernel: `route_batch`
    /// must be bit-identical to per-element `route()` for the wrapped
    /// coordinate mappings on **non-pow2** channel counts too — those take
    /// the generic divide-chain lane computation instead of the shift/mask
    /// fast path, which the pow2-only topology proptest above never reaches.
    #[test]
    fn tile_rotate_route_batch_equals_scalar_route_including_non_pow2_lanes(
        preset_idx in 0usize..preset_count(),
        kind_idx in 0usize..MappingKind::ALL.len(),
        channels in 1u32..7,
        ranks in 1u32..3,
        n in 64u32..250,
    ) {
        // The stripe-tile router backs every kind except the row-major
        // linear splice; keep row-major out so the test name stays honest.
        let tile_kinds: Vec<MappingKind> = MappingKind::ALL
            .iter()
            .copied()
            .filter(|&kind| kind != MappingKind::RowMajor)
            .collect();
        let kind = tile_kinds[kind_idx % tile_kinds.len()];
        let (standard, rate) = preset_at(preset_idx);
        let dram = DramConfig::preset(standard, rate)
            .unwrap()
            .with_topology(ChannelTopology::new(channels, ranks));
        let mapping = ChannelMapping::new(kind, &dram, n).unwrap();

        let coords: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| (0..n - i).map(move |j| (i, j)))
            .collect();
        let mut batch = tbi_dram::AddressBatch::new();
        mapping.route_batch(&coords, &mut batch);
        prop_assert_eq!(batch.len(), coords.len());
        for (index, &(i, j)) in coords.iter().enumerate() {
            prop_assert_eq!(
                batch.get(index),
                mapping.route(i, j),
                "{} on {} {}x{}: tile-rotate batch diverges at ({},{})",
                kind, dram.label(), channels, ranks, i, j
            );
        }
    }

    /// Scaled-out topologies: the permutation variant of a scenario routes
    /// through [`ChannelMapping`] injectively, covers every channel, and
    /// respects the rank bounds — for random (channels, ranks) and sizes.
    #[test]
    fn permutation_channel_routing_is_injective_across_topologies(
        channels_log2 in 0u32..3,
        ranks_log2 in 0u32..2,
        n in 64u32..400,
    ) {
        let channels = 1u32 << channels_log2;
        let ranks = 1u32 << ranks_log2;
        let config = DramConfig::preset(tbi_dram::DramStandard::Ddr4, 3200)
            .unwrap()
            .with_topology(ChannelTopology::new(channels, ranks));
        let permutation = BitPermutation::for_scheme(
            DecodeScheme::default(),
            &config.geometry,
            config.topology,
        )
        .unwrap();
        let mapping =
            ChannelMapping::new(MappingKind::Permutation(permutation), &config, n).unwrap();
        let mut seen = HashSet::new();
        let mut used_channels = HashSet::new();
        for i in 0..n {
            for j in 0..n - i {
                let (channel, address) = mapping.route(i, j);
                prop_assert!(channel < channels);
                prop_assert!(address.is_valid_for_ranks(&config.geometry, ranks));
                prop_assert!(seen.insert((channel, address)), "collision at ({},{})", i, j);
                used_channels.insert(channel);
            }
        }
        prop_assert_eq!(used_channels.len() as u32, channels);
    }

    /// XOR/ADD-folded mappings: for every Table I preset, decode scheme,
    /// channel/rank topology and fold op, the hybrid
    /// [`MappingKind::XorFolded`] routes the whole triangle injectively to
    /// in-bounds addresses, and its batched kernel stays bit-identical to
    /// per-element `route()`.  Each fold step masks its target to the
    /// field's width and targets a field distinct from its source, so the
    /// composite must stay a bijection — this test walks the complete
    /// index space so a collision at a tile or triangle boundary cannot
    /// hide.
    #[test]
    fn folded_mappings_are_injective_and_batch_consistent_everywhere(
        preset_idx in 0usize..preset_count(),
        scheme_idx in 0usize..DecodeScheme::ALL.len(),
        channels_log2 in 0u32..3,
        ranks_log2 in 0u32..2,
        op_idx in 0usize..2,
        shift in 0u8..2,
        n in 64u32..250,
    ) {
        let (standard, rate) = preset_at(preset_idx);
        let mut dram = DramConfig::preset(standard, rate).unwrap();
        dram.decode_scheme = DecodeScheme::ALL[scheme_idx];
        let topology = ChannelTopology::new(1 << channels_log2, 1 << ranks_log2);
        let dram = dram.with_topology(topology);
        let permutation =
            BitPermutation::for_scheme(dram.decode_scheme, &dram.geometry, topology).unwrap();
        let op = if op_idx == 0 { FoldOp::Xor } else { FoldOp::Add };
        // A two-step fold: the diagonal bank term plus a column scramble,
        // exercising both the fold chain and both operators.
        let fold = XorFold::new(&[
            FoldStep { target: AddressField::Bank, source: AddressField::Row, shift, op },
            FoldStep {
                target: AddressField::Column,
                source: AddressField::Bank,
                shift: 0,
                op: FoldOp::Xor,
            },
        ])
        .unwrap();
        // Both steps are always valid here (bank and row bits exist with
        // width > shift on every preset) — assert rather than assume.
        prop_assert!(fold.validate_for(&permutation).is_ok());
        let kind = MappingKind::XorFolded(permutation, fold);
        let mapping = ChannelMapping::new(kind, &dram, n).unwrap();

        let mut seen = HashSet::new();
        for i in 0..n {
            for j in 0..n - i {
                let (channel, address) = mapping.route(i, j);
                prop_assert!(channel < topology.channels);
                prop_assert!(address.is_valid_for_ranks(&dram.geometry, topology.ranks));
                prop_assert!(
                    seen.insert((channel, address)),
                    "{} on {} {}x{} {:?} shift {}: collision at ({},{})",
                    kind, dram.label(), topology.channels, topology.ranks, op, shift, i, j
                );
            }
        }

        let coords: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| (0..n - i).map(move |j| (i, j)))
            .collect();
        let mut batch = tbi_dram::AddressBatch::new();
        mapping.route_batch(&coords, &mut batch);
        prop_assert_eq!(batch.len(), coords.len());
        for (index, &(i, j)) in coords.iter().enumerate() {
            prop_assert_eq!(
                batch.get(index),
                mapping.route(i, j),
                "{} on {}: folded batch diverges at ({},{})",
                kind, dram.label(), i, j
            );
        }
    }

    /// Free-shape tilings: for every Table I preset, tile height (width
    /// derived as `page / tile_h`, so the tile always fits one page) and
    /// channel/rank topology, [`MappingKind::GeneralTiled`] routes the
    /// whole triangle injectively to in-bounds addresses and its batched
    /// kernel matches per-element `route()`.  Non-power-of-two edges (the
    /// 11 × 11 page-prefix tile and ragged splits like 3 × 42) leave page
    /// columns unused, so a collision can only come from the tile/row
    /// packing arithmetic — which this walks completely.
    #[test]
    fn general_tiled_routes_injectively_for_every_preset_shape_and_topology(
        preset_idx in 0usize..preset_count(),
        tile_h in 2u32..33,
        channels_log2 in 0u32..3,
        ranks_log2 in 0u32..2,
        n in 64u32..250,
    ) {
        let (standard, rate) = preset_at(preset_idx);
        let topology = ChannelTopology::new(1 << channels_log2, 1 << ranks_log2);
        let dram = DramConfig::preset(standard, rate)
            .unwrap()
            .with_topology(topology);
        // The smallest page (64 columns) over the largest tile_h (32)
        // still yields a two-column tile, so every draw is constructible.
        let tile_w = dram.geometry.columns_per_row / tile_h;
        prop_assert!(tile_w >= 2);
        let kind = MappingKind::GeneralTiled { tile_h, tile_w };
        let mapping = ChannelMapping::new(kind, &dram, n).unwrap();

        let mut seen = HashSet::new();
        for i in 0..n {
            for j in 0..n - i {
                let (channel, address) = mapping.route(i, j);
                prop_assert!(channel < topology.channels);
                prop_assert!(address.is_valid_for_ranks(&dram.geometry, topology.ranks));
                prop_assert!(
                    seen.insert((channel, address)),
                    "{} on {} {}x{}: collision at ({},{})",
                    kind, dram.label(), topology.channels, topology.ranks, i, j
                );
            }
        }

        let coords: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| (0..n - i).map(move |j| (i, j)))
            .collect();
        let mut batch = tbi_dram::AddressBatch::new();
        mapping.route_batch(&coords, &mut batch);
        prop_assert_eq!(batch.len(), coords.len());
        for (index, &(i, j)) in coords.iter().enumerate() {
            prop_assert_eq!(
                batch.get(index),
                mapping.route(i, j),
                "{} on {}: tiled batch diverges at ({},{})",
                kind, dram.label(), i, j
            );
        }
    }

    /// Tile-rotation / lane-ordering schemes: for every Table I preset,
    /// tile-routed mapping kind, [`TileOrder`] and channel/rank topology,
    /// the generalized stripe-tile router stays injective over the whole
    /// triangle and its batched kernel matches per-element `route()`.  The
    /// non-compacting orders (Y-major, rotated) must be covered: they
    /// bypass the per-channel column compaction whose blanket application
    /// would break their injectivity.
    #[test]
    fn tile_orders_route_injectively_for_every_kind_preset_and_topology(
        preset_idx in 0usize..preset_count(),
        kind_idx in 0usize..4,
        order_idx in 0usize..TileOrder::ALL.len(),
        channels_log2 in 0u32..3,
        ranks_log2 in 0u32..2,
        n in 64u32..250,
    ) {
        // Every kind on the stripe-tile router (all but the row-major
        // linear splice and the full-permutation forms).
        let tile_kinds = [
            MappingKind::BankRoundRobin,
            MappingKind::Tiled,
            MappingKind::OptimizedNoStagger,
            MappingKind::Optimized,
        ];
        let kind = tile_kinds[kind_idx];
        let order = TileOrder::ALL[order_idx];
        let (standard, rate) = preset_at(preset_idx);
        let topology = ChannelTopology::new(1 << channels_log2, 1 << ranks_log2);
        let dram = DramConfig::preset(standard, rate)
            .unwrap()
            .with_topology(topology);
        let mapping = ChannelMapping::with_tile_order(kind, &dram, n, order).unwrap();

        let mut seen = HashSet::new();
        for i in 0..n {
            for j in 0..n - i {
                let (channel, address) = mapping.route(i, j);
                prop_assert!(channel < topology.channels);
                prop_assert!(address.is_valid_for_ranks(&dram.geometry, topology.ranks));
                prop_assert!(
                    seen.insert((channel, address)),
                    "{}@{} on {} {}x{}: collision at ({},{})",
                    kind, order, dram.label(), topology.channels, topology.ranks, i, j
                );
            }
        }

        let coords: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| (0..n - i).map(move |j| (i, j)))
            .collect();
        let mut batch = tbi_dram::AddressBatch::new();
        mapping.route_batch(&coords, &mut batch);
        prop_assert_eq!(batch.len(), coords.len());
        for (index, &(i, j)) in coords.iter().enumerate() {
            prop_assert_eq!(
                batch.get(index),
                mapping.route(i, j),
                "{}@{} on {}: tile-order batch diverges at ({},{})",
                kind, order, dram.label(), i, j
            );
        }
    }
}
