//! Property tests for the DRAM address mappings: every [`MappingKind`] must
//! be a bijection from the whole triangular index space onto *distinct*
//! (bank, row, column) addresses that lie within the device bounds, for
//! randomized interleaver sizes and every DRAM preset of the paper.
//!
//! This is the exhaustive counterpart to the sampled in-crate property test:
//! instead of probing random positions it walks the complete index space, so
//! an off-by-one at the triangle edge or a collision between tile boundaries
//! cannot hide.

use proptest::prelude::*;
use std::collections::HashSet;
use tbi_dram::standards::ALL_CONFIGS;
use tbi_dram::DramConfig;
use tbi_interleaver::{InterleaverSpec, MappingKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_mapping_is_a_bijection_within_device_bounds(
        preset_idx in 0usize..ALL_CONFIGS.len(),
        kind_idx in 0usize..MappingKind::ALL.len(),
        bursts in 64u64..20_000,
    ) {
        let (standard, rate) = ALL_CONFIGS[preset_idx];
        let dram = DramConfig::preset(standard, rate).unwrap();
        let spec = InterleaverSpec::from_burst_count(bursts);
        let n = spec.dimension();
        let kind = MappingKind::ALL[kind_idx];
        let mapping = kind.build(&dram, n).unwrap();

        let mut addresses = HashSet::with_capacity(spec.total_positions() as usize);
        for i in 0..n {
            for j in 0..n - i {
                let addr = mapping.map(i, j);
                prop_assert!(
                    addr.is_valid_for(&dram.geometry),
                    "{kind} on {}: ({i},{j}) mapped out of bounds to {addr:?}",
                    dram.label()
                );
                prop_assert!(
                    addresses.insert(addr),
                    "{kind} on {}: address collision at ({i},{j})",
                    dram.label()
                );
            }
        }
        prop_assert_eq!(addresses.len() as u64, spec.total_positions());
    }

    #[test]
    fn mappings_agree_with_spec_capacity_check(
        kind_idx in 0usize..MappingKind::ALL.len(),
        bursts in 64u64..50_000,
    ) {
        // If the spec says the interleaver fits the device, the mapping must
        // build; the smallest paper preset (DDR3-800) is the tightest case.
        let dram = DramConfig::preset(tbi_dram::DramStandard::Ddr3, 800).unwrap();
        let spec = InterleaverSpec::from_burst_count(bursts);
        let fits = spec.check_capacity(dram.geometry.total_bursts()).is_ok();
        let built = MappingKind::ALL[kind_idx].build(&dram, spec.dimension()).is_ok();
        prop_assert!(
            !fits || built,
            "spec fits ({} bursts) but mapping failed to build",
            spec.total_positions()
        );
    }
}
