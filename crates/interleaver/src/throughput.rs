//! Bandwidth-utilization evaluation: drives the DRAM model with interleaver
//! traces and reports per-phase results (the machinery behind Table I).

use tbi_dram::channel::{ChannelRouter, CombinedStats};
use tbi_dram::{ControllerConfig, DramConfig, MemorySystem, RefreshMode, Stats};

use crate::config::InterleaverSpec;
use crate::mapping::{ChannelMapping, ChannelTraceGenerator, DramMapping, MappingKind};
use crate::trace::{AccessPhase, TraceGenerator};
use crate::InterleaverError;

/// Result of simulating one access phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Which phase was simulated.
    pub phase: AccessPhase,
    /// Raw controller statistics for the phase.
    pub stats: Stats,
    /// Data-bus utilization in `[0, 1]`.
    pub utilization: f64,
    /// Achieved bandwidth in Gbit/s.
    pub bandwidth_gbps: f64,
}

/// Result of simulating both phases of one (DRAM configuration, mapping)
/// pair — one cell pair of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// DRAM configuration label, e.g. `DDR4-3200`.
    pub config_label: String,
    /// Mapping scheme name.
    pub mapping_name: String,
    /// Write-phase (row-wise) result.
    pub write: PhaseReport,
    /// Read-phase (column-wise) result.
    pub read: PhaseReport,
}

impl UtilizationReport {
    /// Write-phase utilization in `[0, 1]`.
    #[must_use]
    pub fn write_utilization(&self) -> f64 {
        self.write.utilization
    }

    /// Read-phase utilization in `[0, 1]`.
    #[must_use]
    pub fn read_utilization(&self) -> f64 {
        self.read.utilization
    }

    /// The minimum of both phases — this is what limits the interleaver
    /// throughput (bold column of Table I).
    #[must_use]
    pub fn min_utilization(&self) -> f64 {
        self.write.utilization.min(self.read.utilization)
    }

    /// The sustained interleaver throughput in Gbit/s, i.e. the peak DRAM
    /// bandwidth scaled by the minimum phase utilization.
    #[must_use]
    pub fn sustained_throughput_gbps(&self) -> f64 {
        self.write.bandwidth_gbps.min(self.read.bandwidth_gbps)
    }
}

/// Result of simulating one access phase on a multi-channel subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPhaseReport {
    /// Which phase was simulated.
    pub phase: AccessPhase,
    /// Per-channel controller statistics for the phase.
    pub stats: CombinedStats,
    /// Aggregate data-bus utilization in `[0, 1]` (total busy cycles over
    /// `channels × max elapsed`).
    pub utilization: f64,
    /// Aggregate achieved bandwidth in Gbit/s across all channels.
    pub aggregate_bandwidth_gbps: f64,
    /// Spread (max − min) of the per-channel utilizations.
    pub utilization_spread: f64,
}

/// Result of simulating both phases of one (DRAM configuration, mapping)
/// pair on a multi-channel, multi-rank subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelUtilizationReport {
    /// DRAM configuration label, e.g. `DDR4-3200`.
    pub config_label: String,
    /// Mapping scheme name.
    pub mapping_name: String,
    /// Channel count of the subsystem.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Write-phase (row-wise) result.
    pub write: ChannelPhaseReport,
    /// Read-phase (column-wise) result.
    pub read: ChannelPhaseReport,
}

impl ChannelUtilizationReport {
    /// The minimum of both phases' aggregate utilizations — what limits the
    /// interleaver throughput.
    #[must_use]
    pub fn min_utilization(&self) -> f64 {
        self.write.utilization.min(self.read.utilization)
    }

    /// The sustained aggregate interleaver throughput in Gbit/s.
    #[must_use]
    pub fn sustained_aggregate_gbps(&self) -> f64 {
        self.write
            .aggregate_bandwidth_gbps
            .min(self.read.aggregate_bandwidth_gbps)
    }

    /// The worse (larger) per-channel utilization spread of the two phases.
    #[must_use]
    pub fn utilization_spread(&self) -> f64 {
        self.write
            .utilization_spread
            .max(self.read.utilization_spread)
    }
}

/// Evaluates mapping schemes on a DRAM configuration for a given interleaver
/// size.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
/// use tbi_interleaver::{InterleaverSpec, MappingKind, ThroughputEvaluator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dram = DramConfig::preset(DramStandard::Lpddr4, 4266)?;
/// let evaluator = ThroughputEvaluator::new(dram, InterleaverSpec::from_burst_count(10_000));
/// let report = evaluator.evaluate(MappingKind::Optimized)?;
/// assert!(report.min_utilization() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputEvaluator {
    dram: DramConfig,
    spec: InterleaverSpec,
    controller: ControllerConfig,
    threads: usize,
}

impl ThroughputEvaluator {
    /// Creates an evaluator with the default controller configuration (the
    /// standard's default refresh mode, FR-FCFS, open-page).
    #[must_use]
    pub fn new(dram: DramConfig, spec: InterleaverSpec) -> Self {
        Self {
            dram,
            spec,
            controller: ControllerConfig::default(),
            threads: 1,
        }
    }

    /// Creates an evaluator with an explicit controller configuration.
    #[must_use]
    pub fn with_controller(
        dram: DramConfig,
        spec: InterleaverSpec,
        controller: ControllerConfig,
    ) -> Self {
        Self {
            dram,
            spec,
            controller,
            threads: 1,
        }
    }

    /// Sets the worker-thread count used by
    /// [`ThroughputEvaluator::evaluate_channels`] (clamped to at least 1).
    /// Results are bit-identical for any value; threading only changes
    /// wall-clock time.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The DRAM configuration under evaluation.
    #[must_use]
    pub fn dram(&self) -> &DramConfig {
        &self.dram
    }

    /// The interleaver sizing under evaluation.
    #[must_use]
    pub fn spec(&self) -> &InterleaverSpec {
        &self.spec
    }

    /// Returns a copy of this evaluator with refresh disabled, modelling the
    /// paper's "refresh disabled" experiment (legal when the interleaver data
    /// lifetime is below the DRAM refresh period).
    #[must_use]
    pub fn without_refresh(&self) -> Self {
        let mut clone = self.clone();
        clone.controller.refresh_mode = Some(RefreshMode::Disabled);
        clone
    }

    /// Evaluates a named mapping scheme.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if the mapping cannot be built for this
    /// device/interleaver combination.
    pub fn evaluate(&self, kind: MappingKind) -> Result<UtilizationReport, InterleaverError> {
        let mapping = kind.build(&self.dram, self.spec.dimension())?;
        self.evaluate_mapping(mapping.as_ref())
    }

    /// Evaluates an arbitrary mapping implementation.
    ///
    /// The write phase is simulated first (row-wise writes), statistics are
    /// then reset while preserving bank state, and the read phase follows —
    /// matching the paper's measurement where both phases are reported
    /// separately and the minimum limits throughput.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if the index space does not fit the
    /// device or the DRAM configuration is invalid.
    pub fn evaluate_mapping(
        &self,
        mapping: &dyn DramMapping,
    ) -> Result<UtilizationReport, InterleaverError> {
        self.spec
            .check_capacity(self.dram.geometry.total_bursts())?;
        let interleaver = self.spec.triangular();
        let generator = TraceGenerator::new(interleaver, mapping);
        let mut system = MemorySystem::with_controller(self.dram.clone(), self.controller)?;

        // The batched source path: mapping work runs in slices through
        // `PhaseTrace::fill_batch`, with statistics bit-identical to feeding
        // the scalar iterator (pinned by the source-equivalence tests).
        let write_stats = system.run_source(generator.requests(AccessPhase::Write));
        system.reset_stats();
        let read_stats = system.run_source(generator.requests(AccessPhase::Read));

        Ok(UtilizationReport {
            config_label: self.dram.label(),
            mapping_name: mapping.name().to_string(),
            write: self.phase_report(AccessPhase::Write, write_stats),
            read: self.phase_report(AccessPhase::Read, read_stats),
        })
    }

    /// Evaluates a named mapping scheme on the configuration's full
    /// channel/rank topology: traffic is striped over the channels by the
    /// scheme's [`ChannelMapping`] variant, each channel runs its stream
    /// through its own controller under the
    /// [`ChannelRouter`]'s shared clock, and the per-channel statistics are
    /// aggregated.
    ///
    /// With the default `1 × 1` topology this reproduces
    /// [`ThroughputEvaluator::evaluate`] exactly (same addresses, same
    /// single controller, same statistics).
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if the mapping cannot be built for this
    /// subsystem/interleaver combination.
    pub fn evaluate_channels(
        &self,
        kind: MappingKind,
    ) -> Result<ChannelUtilizationReport, InterleaverError> {
        let topology = self.dram.topology;
        let mapping = ChannelMapping::new(kind, &self.dram, self.spec.dimension())?;
        let generator = ChannelTraceGenerator::new(&mapping);
        let mut router = ChannelRouter::new(self.dram.clone(), self.controller)
            .map_err(InterleaverError::Dram)?;

        let threads = self.threads;
        let phase_stats = |router: &mut ChannelRouter, phase: AccessPhase| {
            let traces: Vec<_> = (0..topology.channels)
                .map(|channel| generator.channel_requests(phase, channel))
                .collect();
            // Batched per-channel sources (`ChannelTrace::fill_batch`);
            // request sequences and statistics match the scalar iterators.
            // With `threads > 1` channels run on workers; the per-channel
            // drive schedule — and therefore every statistic — is identical
            // to the sequential laggard loop (see the threaded-drive notes
            // on `ChannelRouter`).
            if threads > 1 {
                router.run_phase_sources_threaded(traces, threads)
            } else {
                router.run_phase_sources(traces)
            }
        };
        let write_stats = phase_stats(&mut router, AccessPhase::Write);
        router.reset_stats();
        let read_stats = phase_stats(&mut router, AccessPhase::Read);

        Ok(ChannelUtilizationReport {
            config_label: self.dram.label(),
            mapping_name: mapping.name().to_string(),
            channels: topology.channels,
            ranks: topology.ranks,
            write: self.channel_phase_report(AccessPhase::Write, write_stats),
            read: self.channel_phase_report(AccessPhase::Read, read_stats),
        })
    }

    fn channel_phase_report(&self, phase: AccessPhase, stats: CombinedStats) -> ChannelPhaseReport {
        let utilization = stats.utilization();
        let aggregate_bandwidth_gbps = stats
            .aggregate_bandwidth_gbps(self.dram.clock_mhz(), self.dram.geometry.bus_width_bits);
        let utilization_spread = stats.utilization_spread();
        ChannelPhaseReport {
            phase,
            stats,
            utilization,
            aggregate_bandwidth_gbps,
            utilization_spread,
        }
    }

    /// Evaluates the paper's Table I pair (row-major and optimized) and
    /// returns both reports.
    ///
    /// # Errors
    ///
    /// See [`ThroughputEvaluator::evaluate`].
    pub fn evaluate_table1_pair(
        &self,
    ) -> Result<(UtilizationReport, UtilizationReport), InterleaverError> {
        Ok((
            self.evaluate(MappingKind::RowMajor)?,
            self.evaluate(MappingKind::Optimized)?,
        ))
    }

    fn phase_report(&self, phase: AccessPhase, stats: Stats) -> PhaseReport {
        let utilization = stats.bus_utilization();
        let bandwidth_gbps =
            stats.achieved_bandwidth_gbps(self.dram.clock_mhz(), self.dram.geometry.bus_width_bits);
        PhaseReport {
            phase,
            stats,
            utilization,
            bandwidth_gbps,
        }
    }
}

/// Runs a sweep over several interleaver sizes for one mapping kind,
/// returning `(burst_count, report)` pairs.  Used to reproduce the paper's
/// remark that other interleaver dimensions "differ only slightly".
///
/// # Errors
///
/// Returns [`InterleaverError`] if any single evaluation fails.
pub fn size_sweep(
    dram: &DramConfig,
    kind: MappingKind,
    burst_counts: &[u64],
) -> Result<Vec<(u64, UtilizationReport)>, InterleaverError> {
    burst_counts
        .iter()
        .map(|&bursts| {
            let evaluator =
                ThroughputEvaluator::new(dram.clone(), InterleaverSpec::from_burst_count(bursts));
            Ok((bursts, evaluator.evaluate(kind)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbi_dram::DramStandard;

    fn evaluator(standard: DramStandard, rate: u32, bursts: u64) -> ThroughputEvaluator {
        let dram = DramConfig::preset(standard, rate).unwrap();
        ThroughputEvaluator::new(dram, InterleaverSpec::from_burst_count(bursts))
    }

    #[test]
    fn optimized_beats_row_major_on_fast_ddr4() {
        let eval = evaluator(DramStandard::Ddr4, 3200, 60_000);
        let (baseline, optimized) = eval.evaluate_table1_pair().unwrap();
        assert!(
            optimized.min_utilization() > baseline.min_utilization(),
            "optimized {} must beat row-major {}",
            optimized.min_utilization(),
            baseline.min_utilization()
        );
        assert!(optimized.min_utilization() > 0.85);
        // The baseline's weak phase is the column-wise read phase.
        assert!(baseline.read_utilization() < baseline.write_utilization());
    }

    #[test]
    fn reports_carry_labels_and_counts() {
        let eval = evaluator(DramStandard::Ddr3, 800, 5_000);
        let report = eval.evaluate(MappingKind::Optimized).unwrap();
        assert_eq!(report.config_label, "DDR3-800");
        assert_eq!(report.mapping_name, "optimized");
        assert_eq!(
            report.write.stats.completed_requests,
            eval.spec().total_positions()
        );
        assert_eq!(
            report.read.stats.completed_requests,
            eval.spec().total_positions()
        );
        assert!(report.sustained_throughput_gbps() > 0.0);
        assert!(report.min_utilization() <= report.write_utilization());
        assert!(report.min_utilization() <= report.read_utilization());
    }

    #[test]
    fn disabling_refresh_improves_utilization() {
        let eval = evaluator(DramStandard::Ddr4, 1600, 40_000);
        let with_refresh = eval.evaluate(MappingKind::Optimized).unwrap();
        let without_refresh = eval
            .without_refresh()
            .evaluate(MappingKind::Optimized)
            .unwrap();
        assert!(without_refresh.min_utilization() >= with_refresh.min_utilization());
        assert!(
            without_refresh.min_utilization() > 0.9,
            "refresh-free optimized mapping should be >90%, got {}",
            without_refresh.min_utilization()
        );
    }

    #[test]
    fn size_sweep_returns_one_report_per_size() {
        let dram = DramConfig::preset(DramStandard::Lpddr4, 2133).unwrap();
        let sweep = size_sweep(&dram, MappingKind::Optimized, &[2_000, 8_000]).unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].0, 2_000);
        assert!(sweep[1].1.min_utilization() > 0.0);
    }

    #[test]
    fn single_topology_channel_evaluation_matches_legacy_path() {
        let eval = evaluator(DramStandard::Ddr4, 3200, 20_000);
        for kind in MappingKind::TABLE1 {
            let legacy = eval.evaluate(kind).unwrap();
            let channels = eval.evaluate_channels(kind).unwrap();
            assert_eq!(channels.channels, 1);
            assert_eq!(channels.ranks, 1);
            // One channel: the per-channel stats are exactly the legacy
            // single-controller stats, phase by phase.
            assert_eq!(
                channels.write.stats.per_channel(),
                std::slice::from_ref(&legacy.write.stats)
            );
            assert_eq!(
                channels.read.stats.per_channel(),
                std::slice::from_ref(&legacy.read.stats)
            );
            assert_eq!(channels.min_utilization(), legacy.min_utilization());
            assert_eq!(
                channels.sustained_aggregate_gbps(),
                legacy.sustained_throughput_gbps()
            );
            assert_eq!(channels.utilization_spread(), 0.0);
        }
    }

    #[test]
    fn two_channels_nearly_double_aggregate_bandwidth() {
        let dram = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let spec = InterleaverSpec::from_burst_count(100_000);
        let single = ThroughputEvaluator::new(dram.clone(), spec)
            .evaluate_channels(MappingKind::Optimized)
            .unwrap();
        let dual = ThroughputEvaluator::new(
            dram.with_topology(tbi_dram::ChannelTopology::new(2, 1)),
            spec,
        )
        .evaluate_channels(MappingKind::Optimized)
        .unwrap();
        let scaling = dual.sustained_aggregate_gbps() / single.sustained_aggregate_gbps();
        assert!(
            scaling > 1.8,
            "2-channel aggregate bandwidth should scale ≥1.8x, got {scaling} \
             ({} vs {})",
            single.sustained_aggregate_gbps(),
            dual.sustained_aggregate_gbps()
        );
        assert!(
            dual.utilization_spread() < 0.1,
            "channel load should be balanced, spread {}",
            dual.utilization_spread()
        );
    }

    #[test]
    fn threaded_channel_evaluation_is_bit_identical() {
        let dram = DramConfig::preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .with_topology(tbi_dram::ChannelTopology::new(4, 1));
        let spec = InterleaverSpec::from_burst_count(40_000);
        let sequential = ThroughputEvaluator::new(dram.clone(), spec)
            .evaluate_channels(MappingKind::Optimized)
            .unwrap();
        for threads in [2, 3, 4, 8] {
            let threaded = ThroughputEvaluator::new(dram.clone(), spec)
                .with_threads(threads)
                .evaluate_channels(MappingKind::Optimized)
                .unwrap();
            assert_eq!(
                threaded, sequential,
                "threads={threads} must match the sequential evaluation"
            );
        }
    }

    #[test]
    fn capacity_errors_propagate() {
        let dram = DramConfig::preset(DramStandard::Lpddr4, 2133).unwrap();
        let eval =
            ThroughputEvaluator::new(dram, InterleaverSpec::from_burst_count(100_000_000_000));
        assert!(matches!(
            eval.evaluate(MappingKind::RowMajor),
            Err(InterleaverError::CapacityExceeded { .. })
        ));
    }
}
