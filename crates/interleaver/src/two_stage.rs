//! The two-stage interleaver: SRAM block stage plus DRAM triangular stage.
//!
//! A single DRAM burst (512 bits) carries many symbols (e.g. 170 three-bit
//! LLR values), far more than one code word should contribute to a burst if
//! burst losses are to remain correctable.  The paper therefore splits
//! interleaving into two stages:
//!
//! 1. a small **SRAM block interleaver** rearranges symbols so that the
//!    symbols inside one DRAM burst belong to different code words, and
//! 2. the large **triangular DRAM interleaver** permutes whole bursts.
//!
//! This module composes the two stages into a single symbol-level permutation
//! so that the end-to-end behaviour can be verified and used by the
//! `tbi-satcom` link simulation.

use crate::block::BlockInterleaver;
use crate::triangular::TriangularInterleaver;
use crate::InterleaverError;

/// A two-stage (SRAM + DRAM) interleaver operating on symbols.
///
/// # Examples
///
/// ```
/// use tbi_interleaver::TwoStageInterleaver;
///
/// # fn main() -> Result<(), tbi_interleaver::InterleaverError> {
/// // 4 symbols per burst, 8 code words per SRAM block, triangular dimension 15.
/// let il = TwoStageInterleaver::new(15, 8, 4)?;
/// let data: Vec<u32> = (0..il.symbol_count() as u32).collect();
/// let tx = il.interleave(&data)?;
/// assert_eq!(il.deinterleave(&tx)?, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoStageInterleaver {
    sram: BlockInterleaver,
    dram: TriangularInterleaver,
    symbols_per_burst: u32,
}

impl TwoStageInterleaver {
    /// Creates a two-stage interleaver.
    ///
    /// * `dram_dimension` — dimension of the triangular (burst-level) stage;
    /// * `codewords_per_block` — number of code words interleaved by the SRAM
    ///   stage (must be a multiple of `symbols_per_burst` so that every burst
    ///   carries symbols from distinct code words);
    /// * `symbols_per_burst` — how many symbols fit into one DRAM burst.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if any parameter is
    /// zero, if `codewords_per_block` is not a multiple of
    /// `symbols_per_burst`, or if the burst-level stage does not evenly cover
    /// the SRAM blocks.
    pub fn new(
        dram_dimension: u32,
        codewords_per_block: u32,
        symbols_per_burst: u32,
    ) -> Result<Self, InterleaverError> {
        if symbols_per_burst == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: "symbols_per_burst must be non-zero".to_string(),
            });
        }
        if codewords_per_block == 0 || codewords_per_block % symbols_per_burst != 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: format!(
                    "codewords_per_block ({codewords_per_block}) must be a non-zero multiple of symbols_per_burst ({symbols_per_burst})"
                ),
            });
        }
        let sram = BlockInterleaver::for_burst_spreading(codewords_per_block, symbols_per_burst)?;
        let dram = TriangularInterleaver::new(dram_dimension)?;
        let total_symbols = dram.len() * u64::from(symbols_per_burst);
        if total_symbols % sram.len() as u64 != 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: format!(
                    "total symbol count {total_symbols} is not a multiple of the SRAM block size {}",
                    sram.len()
                ),
            });
        }
        Ok(Self {
            sram,
            dram,
            symbols_per_burst,
        })
    }

    /// The SRAM first stage.
    #[must_use]
    pub fn sram_stage(&self) -> BlockInterleaver {
        self.sram
    }

    /// The triangular (burst-level) DRAM stage.
    #[must_use]
    pub fn dram_stage(&self) -> TriangularInterleaver {
        self.dram
    }

    /// Number of symbols carried by one DRAM burst.
    #[must_use]
    pub fn symbols_per_burst(&self) -> u32 {
        self.symbols_per_burst
    }

    /// Total number of symbols processed per interleaver fill.
    #[must_use]
    pub fn symbol_count(&self) -> u64 {
        self.dram.len() * u64::from(self.symbols_per_burst)
    }

    /// Interleaves `data` through both stages.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if `data.len()` does not
    /// equal [`symbol_count`](Self::symbol_count).
    pub fn interleave<T: Clone>(&self, data: &[T]) -> Result<Vec<T>, InterleaverError> {
        self.check_len(data.len())?;
        // Stage 1: SRAM block interleaving of consecutive chunks.
        let mut spread = Vec::with_capacity(data.len());
        for chunk in data.chunks(self.sram.len()) {
            spread.extend(self.sram.interleave(chunk)?);
        }
        // Stage 2: burst-level triangular interleaving.
        let bursts: Vec<&[T]> = spread.chunks(self.symbols_per_burst as usize).collect();
        let permuted = self.dram.interleave(&bursts)?;
        Ok(permuted.into_iter().flatten().cloned().collect())
    }

    /// Reverses [`interleave`](Self::interleave).
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if `data.len()` does not
    /// equal [`symbol_count`](Self::symbol_count).
    pub fn deinterleave<T: Clone>(&self, data: &[T]) -> Result<Vec<T>, InterleaverError> {
        self.check_len(data.len())?;
        // Undo stage 2.
        let bursts: Vec<&[T]> = data.chunks(self.symbols_per_burst as usize).collect();
        let restored_bursts = self.dram.deinterleave(&bursts)?;
        let spread: Vec<T> = restored_bursts.into_iter().flatten().cloned().collect();
        // Undo stage 1.
        let mut out = Vec::with_capacity(spread.len());
        for chunk in spread.chunks(self.sram.len()) {
            out.extend(self.sram.deinterleave(chunk)?);
        }
        Ok(out)
    }

    fn check_len(&self, len: usize) -> Result<(), InterleaverError> {
        if len as u64 != self.symbol_count() {
            return Err(InterleaverError::InvalidDimension {
                reason: format!("expected {} symbols, got {len}", self.symbol_count()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(TwoStageInterleaver::new(7, 8, 0).is_err());
        assert!(TwoStageInterleaver::new(7, 0, 4).is_err());
        // codewords not a multiple of symbols per burst
        assert!(TwoStageInterleaver::new(7, 6, 4).is_err());
        // burst count not a multiple of the SRAM block's code word count
        assert!(TwoStageInterleaver::new(7, 8, 4).is_err());
    }

    #[test]
    fn round_trip() {
        let il = TwoStageInterleaver::new(7, 4, 4).unwrap();
        let data: Vec<u32> = (0..il.symbol_count() as u32).collect();
        let tx = il.interleave(&data).unwrap();
        assert_eq!(il.deinterleave(&tx).unwrap(), data);
        // It must actually permute something.
        assert_ne!(tx, data);
    }

    #[test]
    fn bursts_carry_distinct_codewords_after_stage_one() {
        // Tag symbols with their code word index inside each SRAM block and
        // verify every burst carries distinct tags.
        let symbols_per_burst = 4u32;
        let codewords = 8u32;
        let il = TwoStageInterleaver::new(15, codewords, symbols_per_burst).unwrap();
        let block = il.sram_stage().len() as u32;
        let data: Vec<u32> = (0..il.symbol_count() as u32)
            .map(|i| (i % block) / symbols_per_burst)
            .collect();
        let tx = il.interleave(&data).unwrap();
        for burst in tx.chunks(symbols_per_burst as usize) {
            let mut tags = burst.to_vec();
            tags.sort_unstable();
            tags.dedup();
            assert_eq!(
                tags.len(),
                symbols_per_burst as usize,
                "burst carries repeated code words: {burst:?}"
            );
        }
    }

    #[test]
    fn wrong_length_is_rejected() {
        let il = TwoStageInterleaver::new(3, 2, 2).unwrap();
        assert!(il.interleave(&[1u8, 2, 3]).is_err());
        assert!(il.deinterleave(&[1u8]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn round_trip_random_parameters(dim in 2u32..12, spb in 1u32..5, factor in 1u32..4) {
            let codewords = spb * factor;
            let il = match TwoStageInterleaver::new(dim, codewords, spb) {
                Ok(il) => il,
                Err(_) => return Ok(()), // divisibility not satisfied; skip
            };
            let data: Vec<u64> = (0..il.symbol_count()).collect();
            let tx = il.interleave(&data).unwrap();
            let mut sorted = tx.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, data.clone());
            prop_assert_eq!(il.deinterleave(&tx).unwrap(), data);
        }
    }
}
