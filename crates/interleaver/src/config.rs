//! Interleaver sizing helpers.

use crate::triangular::TriangularInterleaver;
use crate::InterleaverError;

/// Number of payload bits carried by one DRAM burst in all preset
/// configurations (512 bits = 64 bytes).
pub const BURST_BITS: u32 = 512;

/// Sizing of the DRAM-resident triangular interleaver stage.
///
/// The DRAM stage works at *burst* granularity: each position of its
/// triangular index space is one DRAM burst of [`BURST_BITS`] bits, filled
/// with symbols from different code words by the SRAM first stage.
///
/// # Examples
///
/// ```
/// use tbi_interleaver::InterleaverSpec;
///
/// // The paper's Table I interleaver: 12.5 M elements.
/// let spec = InterleaverSpec::paper_table1();
/// assert_eq!(spec.dimension(), 5000);
///
/// // Size from a symbol count: 3-bit LLR-quantised symbols.
/// let spec = InterleaverSpec::from_symbols(100_000_000, 3);
/// assert!(spec.burst_count() >= 100_000_000 * 3 / 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterleaverSpec {
    bursts: u64,
    dimension: u32,
}

impl InterleaverSpec {
    /// Creates a spec whose triangular index space holds at least
    /// `bursts` DRAM bursts.
    ///
    /// # Panics
    ///
    /// Panics if `bursts == 0`.
    #[must_use]
    pub fn from_burst_count(bursts: u64) -> Self {
        let triangular =
            TriangularInterleaver::with_capacity(bursts).expect("burst count must be non-zero");
        Self {
            bursts,
            dimension: triangular.dimension(),
        }
    }

    /// Creates a spec sized for `symbols` symbols of `symbol_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `symbols == 0` or `symbol_bits == 0`.
    #[must_use]
    pub fn from_symbols(symbols: u64, symbol_bits: u32) -> Self {
        assert!(
            symbols > 0 && symbol_bits > 0,
            "symbols and symbol_bits must be non-zero"
        );
        let bits = symbols * u64::from(symbol_bits);
        let bursts = bits.div_ceil(u64::from(BURST_BITS));
        Self::from_burst_count(bursts.max(1))
    }

    /// The 12.5 M-element interleaver evaluated in the paper's Table I.
    #[must_use]
    pub fn paper_table1() -> Self {
        Self::from_burst_count(12_500_000)
    }

    /// Requested number of bursts (the triangle may hold slightly more).
    #[must_use]
    pub fn burst_count(&self) -> u64 {
        self.bursts
    }

    /// Dimension `n` of the triangular index space.
    #[must_use]
    pub fn dimension(&self) -> u32 {
        self.dimension
    }

    /// The triangular interleaver for this spec.
    #[must_use]
    pub fn triangular(&self) -> TriangularInterleaver {
        TriangularInterleaver::new(self.dimension).expect("dimension is validated at construction")
    }

    /// Total number of positions of the triangular index space
    /// (`>= burst_count`).
    #[must_use]
    pub fn total_positions(&self) -> u64 {
        self.triangular().len()
    }

    /// Interleaver storage requirement in bytes (positions × burst size).
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        self.total_positions() * u64::from(BURST_BITS / 8)
    }

    /// The time in milliseconds a symbol stays inside the interleaver when the
    /// link sustains `data_rate_gbps`, i.e. the interleaver fill time.
    ///
    /// The paper notes refresh may be disabled when this lifetime stays below
    /// the DRAM refresh period (32–64 ms).
    #[must_use]
    pub fn fill_time_ms(&self, data_rate_gbps: f64) -> f64 {
        let bits = self.total_positions() as f64 * f64::from(BURST_BITS);
        bits / (data_rate_gbps * 1e9) * 1e3
    }

    /// Checks that the index space fits into a device with `available_bursts`
    /// addressable bursts.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::CapacityExceeded`] if it does not fit.
    pub fn check_capacity(&self, available_bursts: u64) -> Result<(), InterleaverError> {
        let required = self.total_positions();
        if required > available_bursts {
            return Err(InterleaverError::CapacityExceeded {
                required_bursts: required,
                available_bursts,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_table1() {
        let spec = InterleaverSpec::paper_table1();
        assert_eq!(spec.burst_count(), 12_500_000);
        assert_eq!(spec.dimension(), 5000);
        assert!(spec.total_positions() >= 12_500_000);
        // 12.5 M bursts of 64 B = 800 MB of interleaver storage.
        assert!(spec.storage_bytes() >= 800_000_000);
    }

    #[test]
    fn from_symbols_rounds_up_to_bursts() {
        let spec = InterleaverSpec::from_symbols(1000, 3);
        // 3000 bits -> 6 bursts.
        assert!(spec.burst_count() >= 6);
        assert!(spec.total_positions() >= spec.burst_count());
    }

    #[test]
    fn fill_time_scales_inversely_with_rate() {
        let spec = InterleaverSpec::paper_table1();
        let at_100g = spec.fill_time_ms(100.0);
        let at_200g = spec.fill_time_ms(200.0);
        assert!(at_100g > at_200g);
        // 12.5 M * 512 bit = 6.4 Gbit -> 64 ms at 100 Gbit/s.
        assert!((at_100g - 64.0).abs() < 1.0);
    }

    #[test]
    fn capacity_check() {
        let spec = InterleaverSpec::from_burst_count(1000);
        assert!(spec.check_capacity(10_000).is_ok());
        let err = spec.check_capacity(10).unwrap_err();
        assert!(matches!(err, InterleaverError::CapacityExceeded { .. }));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_burst_count_panics() {
        let _ = InterleaverSpec::from_burst_count(0);
    }
}
