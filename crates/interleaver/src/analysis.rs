//! Analytic access-pattern statistics for a mapping, computed without the
//! cycle-accurate simulator.
//!
//! The cycle-accurate model in [`tbi_dram`] answers "what bandwidth does this
//! mapping achieve"; this module answers the cheaper architectural questions
//! behind that number: how many row activations does a sweep need, how often
//! do consecutive accesses change bank group, and how evenly is the load
//! spread over the banks.  The `mapping_explorer` example and several tests
//! use it to explain *why* one mapping beats another.

use std::collections::HashMap;

use tbi_dram::DeviceGeometry;

use crate::mapping::DramMapping;
use crate::trace::AccessPhase;
use crate::triangular::TriangularInterleaver;

/// Access-pattern statistics of one sweep (write or read phase) of a mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStats {
    /// The analysed phase.
    pub phase: AccessPhase,
    /// Total number of accesses in the sweep.
    pub accesses: u64,
    /// Row activations needed assuming one open row per bank and no
    /// reordering (a lower bound on ACT commands).
    pub activations: u64,
    /// Accesses that hit the currently open row of their bank.
    pub row_hits: u64,
    /// Consecutive access pairs that target different bank groups.
    pub bank_group_switches: u64,
    /// Consecutive access pairs that target the same bank.
    pub same_bank_pairs: u64,
    /// Number of accesses per flat bank.
    pub per_bank_accesses: Vec<u64>,
}

impl PatternStats {
    /// Row-buffer hit rate of the sweep, in `[0, 1]`.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Average number of accesses served per activation.
    #[must_use]
    pub fn accesses_per_activation(&self) -> f64 {
        if self.activations == 0 {
            self.accesses as f64
        } else {
            self.accesses as f64 / self.activations as f64
        }
    }

    /// Fraction of consecutive access pairs that switch bank group, in
    /// `[0, 1]`.  Values near 1.0 mean the short `t_ccd_s` gap applies almost
    /// always.
    #[must_use]
    pub fn bank_group_switch_rate(&self) -> f64 {
        if self.accesses <= 1 {
            0.0
        } else {
            self.bank_group_switches as f64 / (self.accesses - 1) as f64
        }
    }

    /// Ratio between the most-loaded and least-loaded bank (1.0 = perfectly
    /// balanced).  Banks with zero accesses are ignored unless all are zero.
    #[must_use]
    pub fn bank_imbalance(&self) -> f64 {
        let max = self.per_bank_accesses.iter().copied().max().unwrap_or(0);
        let min = self
            .per_bank_accesses
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .min()
            .unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }
}

/// Analyses both phases of a mapping over a triangular index space.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
/// use tbi_interleaver::analysis::analyse_phase;
/// use tbi_interleaver::trace::AccessPhase;
/// use tbi_interleaver::MappingKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dram = DramConfig::preset(DramStandard::Ddr4, 3200)?;
/// let optimized = MappingKind::Optimized.build(&dram, 256)?;
/// let baseline = MappingKind::RowMajor.build(&dram, 256)?;
/// let opt = analyse_phase(optimized.as_ref(), AccessPhase::Read);
/// let base = analyse_phase(baseline.as_ref(), AccessPhase::Read);
/// // The optimized mapping needs far fewer activations in the read phase.
/// assert!(opt.activations * 4 < base.activations);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn analyse_phase(mapping: &dyn DramMapping, phase: AccessPhase) -> PatternStats {
    let geometry = *mapping.geometry();
    let interleaver = TriangularInterleaver::new(mapping.dimension())
        .expect("mapping dimension is validated at construction");
    analyse_order(mapping, &geometry, phase, positions(&interleaver, phase))
}

/// Analyses an arbitrary position order against a mapping.
fn analyse_order(
    mapping: &dyn DramMapping,
    geometry: &DeviceGeometry,
    phase: AccessPhase,
    order: impl Iterator<Item = (u32, u32)>,
) -> PatternStats {
    let banks = geometry.total_banks() as usize;
    let mut open_row: Vec<Option<u32>> = vec![None; banks];
    let mut per_bank_accesses = vec![0u64; banks];
    let mut stats = PatternStats {
        phase,
        accesses: 0,
        activations: 0,
        row_hits: 0,
        bank_group_switches: 0,
        same_bank_pairs: 0,
        per_bank_accesses: Vec::new(),
    };
    let mut previous: Option<(u32, u32)> = None; // (bank_group, flat_bank)
    for (i, j) in order {
        let addr = mapping.map(i, j);
        let flat = addr.flat_bank(geometry) as usize;
        stats.accesses += 1;
        per_bank_accesses[flat] += 1;
        if open_row[flat] == Some(addr.row) {
            stats.row_hits += 1;
        } else {
            stats.activations += 1;
            open_row[flat] = Some(addr.row);
        }
        if let Some((prev_group, prev_bank)) = previous {
            if prev_group != addr.bank_group {
                stats.bank_group_switches += 1;
            }
            if prev_bank == flat as u32 {
                stats.same_bank_pairs += 1;
            }
        }
        previous = Some((addr.bank_group, flat as u32));
    }
    stats.per_bank_accesses = per_bank_accesses;
    stats
}

fn positions(
    interleaver: &TriangularInterleaver,
    phase: AccessPhase,
) -> Box<dyn Iterator<Item = (u32, u32)> + '_> {
    match phase {
        AccessPhase::Write => Box::new(interleaver.write_order()),
        AccessPhase::Read => Box::new(interleaver.read_order()),
    }
}

/// Summary comparing several mappings on the same device and index space.
#[derive(Debug, Clone, Default)]
pub struct MappingComparison {
    entries: HashMap<String, (PatternStats, PatternStats)>,
}

impl MappingComparison {
    /// Creates an empty comparison.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyses `mapping` in both phases and stores the result under its
    /// name.
    pub fn add(&mut self, mapping: &dyn DramMapping) {
        let write = analyse_phase(mapping, AccessPhase::Write);
        let read = analyse_phase(mapping, AccessPhase::Read);
        self.entries
            .insert(mapping.name().to_string(), (write, read));
    }

    /// The stored (write, read) statistics for a mapping name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&(PatternStats, PatternStats)> {
        self.entries.get(name)
    }

    /// Names of all analysed mappings.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// The mapping whose worst phase needs the fewest activations per access
    /// — a cheap architectural predictor of the Table I winner.
    #[must_use]
    pub fn best_by_activation_reuse(&self) -> Option<&str> {
        self.entries
            .iter()
            .max_by(|a, b| {
                let reuse = |entry: &(PatternStats, PatternStats)| {
                    entry
                        .0
                        .accesses_per_activation()
                        .min(entry.1.accesses_per_activation())
                };
                reuse(a.1)
                    .partial_cmp(&reuse(b.1))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(name, _)| name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingKind;
    use tbi_dram::{DramConfig, DramStandard};

    fn dram() -> DramConfig {
        DramConfig::preset(DramStandard::Ddr4, 3200).unwrap()
    }

    #[test]
    fn row_major_write_phase_is_activation_friendly_but_read_is_not() {
        let dram = dram();
        let mapping = MappingKind::RowMajor.build(&dram, 300).unwrap();
        let write = analyse_phase(mapping.as_ref(), AccessPhase::Write);
        let read = analyse_phase(mapping.as_ref(), AccessPhase::Read);
        assert_eq!(write.accesses, read.accesses);
        assert!(write.accesses_per_activation() > 20.0);
        assert!(read.accesses_per_activation() < 2.0);
        assert!(read.row_hit_rate() < 0.2);
        assert!(write.row_hit_rate() > 0.9);
    }

    #[test]
    fn optimized_mapping_balances_both_phases() {
        let dram = dram();
        let mapping = MappingKind::Optimized.build(&dram, 300).unwrap();
        let write = analyse_phase(mapping.as_ref(), AccessPhase::Write);
        let read = analyse_phase(mapping.as_ref(), AccessPhase::Read);
        assert!(write.accesses_per_activation() > 3.0);
        assert!(read.accesses_per_activation() > 3.0);
        // Consecutive accesses switch bank group essentially always.
        assert!(write.bank_group_switch_rate() > 0.95);
        assert!(read.bank_group_switch_rate() > 0.95);
        // And the load is spread evenly over the banks.
        assert!(write.bank_imbalance() < 1.5);
    }

    #[test]
    fn row_major_read_phase_rarely_switches_bank_groups_compared_to_optimized() {
        let dram = dram();
        let row_major = MappingKind::RowMajor.build(&dram, 300).unwrap();
        let optimized = MappingKind::Optimized.build(&dram, 300).unwrap();
        let base = analyse_phase(row_major.as_ref(), AccessPhase::Read);
        let opt = analyse_phase(optimized.as_ref(), AccessPhase::Read);
        assert!(
            opt.bank_group_switch_rate() > base.bank_group_switch_rate(),
            "optimized read sweep must switch bank groups more often: {} vs {}",
            opt.bank_group_switch_rate(),
            base.bank_group_switch_rate()
        );
        assert!(opt.same_bank_pairs <= base.same_bank_pairs);
    }

    #[test]
    fn comparison_prefers_the_optimized_mapping() {
        let dram = dram();
        let mut comparison = MappingComparison::new();
        for kind in [
            MappingKind::RowMajor,
            MappingKind::BankRoundRobin,
            MappingKind::Optimized,
        ] {
            let mapping = kind.build(&dram, 256).unwrap();
            comparison.add(mapping.as_ref());
        }
        assert_eq!(comparison.names().count(), 3);
        assert!(comparison.get("optimized").is_some());
        assert_eq!(comparison.best_by_activation_reuse(), Some("optimized"));
    }

    #[test]
    fn stats_helpers_handle_empty_input() {
        let stats = PatternStats {
            phase: AccessPhase::Write,
            accesses: 0,
            activations: 0,
            row_hits: 0,
            bank_group_switches: 0,
            same_bank_pairs: 0,
            per_bank_accesses: vec![0; 4],
        };
        assert_eq!(stats.row_hit_rate(), 0.0);
        assert_eq!(stats.bank_group_switch_rate(), 0.0);
        assert_eq!(stats.bank_imbalance(), 1.0);
    }
}
