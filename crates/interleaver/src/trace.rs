//! DRAM request trace generation for the two interleaver access phases.

use tbi_dram::Request;

use crate::mapping::DramMapping;
use crate::triangular::TriangularInterleaver;

/// The two access phases of a triangular block interleaver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPhase {
    /// Row-wise writing of incoming symbols.
    Write,
    /// Column-wise reading of interleaved symbols.
    Read,
}

impl AccessPhase {
    /// Both phases in their natural order.
    pub const ALL: [AccessPhase; 2] = [AccessPhase::Write, AccessPhase::Read];

    /// Human-readable name ("write" / "read").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AccessPhase::Write => "write",
            AccessPhase::Read => "read",
        }
    }
}

impl std::fmt::Display for AccessPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the burst-level DRAM request stream of an interleaver phase.
///
/// The generator is lazy: requests are produced on the fly so even the
/// paper's 12.5 M-burst interleaver does not need to be materialised.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
/// use tbi_interleaver::{AccessPhase, MappingKind, TraceGenerator};
/// use tbi_interleaver::triangular::TriangularInterleaver;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 1600)?;
/// let mapping = MappingKind::Optimized.build(&config, 64)?;
/// let interleaver = TriangularInterleaver::new(64)?;
/// let gen = TraceGenerator::new(interleaver, mapping.as_ref());
/// let writes: Vec<_> = gen.requests(AccessPhase::Write).collect();
/// assert_eq!(writes.len() as u64, interleaver.len());
/// assert!(writes.iter().all(|r| r.is_write()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy)]
pub struct TraceGenerator<'a> {
    interleaver: TriangularInterleaver,
    mapping: &'a dyn DramMapping,
}

impl std::fmt::Debug for TraceGenerator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceGenerator")
            .field("interleaver", &self.interleaver)
            .field("mapping", &self.mapping.name())
            .finish()
    }
}

impl<'a> TraceGenerator<'a> {
    /// Creates a trace generator for `interleaver` using `mapping`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping was built for a smaller index space than the
    /// interleaver dimension.
    #[must_use]
    pub fn new(interleaver: TriangularInterleaver, mapping: &'a dyn DramMapping) -> Self {
        assert!(
            mapping.dimension() >= interleaver.dimension(),
            "mapping dimension {} smaller than interleaver dimension {}",
            mapping.dimension(),
            interleaver.dimension()
        );
        Self {
            interleaver,
            mapping,
        }
    }

    /// The interleaver whose accesses are generated.
    #[must_use]
    pub fn interleaver(&self) -> TriangularInterleaver {
        self.interleaver
    }

    /// Lazily yields the request stream of `phase` in its natural order.
    pub fn requests(&self, phase: AccessPhase) -> impl Iterator<Item = Request> + '_ {
        let mapping = self.mapping;
        let write_iter = match phase {
            AccessPhase::Write => Some(self.interleaver.write_order()),
            AccessPhase::Read => None,
        };
        let read_iter = match phase {
            AccessPhase::Write => None,
            AccessPhase::Read => Some(self.interleaver.read_order()),
        };
        write_iter
            .into_iter()
            .flatten()
            .map(move |(i, j)| Request::write(mapping.map(i, j)))
            .chain(
                read_iter
                    .into_iter()
                    .flatten()
                    .map(move |(i, j)| Request::read(mapping.map(i, j))),
            )
    }

    /// Number of requests per phase (equal to the interleaver length).
    #[must_use]
    pub fn requests_per_phase(&self) -> u64 {
        self.interleaver.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingKind;
    use std::collections::HashSet;
    use tbi_dram::{DramConfig, DramStandard};

    fn setup(n: u32) -> (DramConfig, TriangularInterleaver) {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let interleaver = TriangularInterleaver::new(n).unwrap();
        (config, interleaver)
    }

    #[test]
    fn phases_have_names() {
        assert_eq!(AccessPhase::Write.to_string(), "write");
        assert_eq!(AccessPhase::Read.to_string(), "read");
        assert_eq!(AccessPhase::ALL.len(), 2);
    }

    #[test]
    fn write_and_read_traces_cover_the_same_addresses() {
        let (config, interleaver) = setup(48);
        for kind in MappingKind::ALL {
            let mapping = kind.build(&config, 48).unwrap();
            let gen = TraceGenerator::new(interleaver, mapping.as_ref());
            let writes: HashSet<_> = gen
                .requests(AccessPhase::Write)
                .map(|r| r.address)
                .collect();
            let reads: HashSet<_> = gen.requests(AccessPhase::Read).map(|r| r.address).collect();
            assert_eq!(writes, reads, "{kind}");
            assert_eq!(writes.len() as u64, interleaver.len(), "{kind}");
        }
    }

    #[test]
    fn request_kinds_match_phase() {
        let (config, interleaver) = setup(16);
        let mapping = MappingKind::RowMajor.build(&config, 16).unwrap();
        let gen = TraceGenerator::new(interleaver, mapping.as_ref());
        assert!(gen.requests(AccessPhase::Write).all(|r| r.is_write()));
        assert!(gen.requests(AccessPhase::Read).all(|r| !r.is_write()));
        assert_eq!(gen.requests_per_phase(), interleaver.len());
    }

    #[test]
    #[should_panic(expected = "smaller than interleaver dimension")]
    fn mismatched_dimensions_panic() {
        let (config, _) = setup(16);
        let mapping = MappingKind::Optimized.build(&config, 8).unwrap();
        let interleaver = TriangularInterleaver::new(16).unwrap();
        let _ = TraceGenerator::new(interleaver, mapping.as_ref());
    }
}
