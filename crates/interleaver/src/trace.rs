//! DRAM request trace generation for the two interleaver access phases.

use tbi_dram::{AddressBatch, Request, RequestSource};

use crate::mapping::{DramMapping, BATCH_CHUNK};
use crate::triangular::TriangularInterleaver;

/// The two access phases of a triangular block interleaver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPhase {
    /// Row-wise writing of incoming symbols.
    Write,
    /// Column-wise reading of interleaved symbols.
    Read,
}

impl AccessPhase {
    /// Both phases in their natural order.
    pub const ALL: [AccessPhase; 2] = [AccessPhase::Write, AccessPhase::Read];

    /// Human-readable name ("write" / "read").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AccessPhase::Write => "write",
            AccessPhase::Read => "read",
        }
    }
}

impl std::fmt::Display for AccessPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the burst-level DRAM request stream of an interleaver phase.
///
/// The generator is lazy: requests are produced on the fly so even the
/// paper's 12.5 M-burst interleaver does not need to be materialised.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
/// use tbi_interleaver::{AccessPhase, MappingKind, TraceGenerator};
/// use tbi_interleaver::triangular::TriangularInterleaver;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 1600)?;
/// let mapping = MappingKind::Optimized.build(&config, 64)?;
/// let interleaver = TriangularInterleaver::new(64)?;
/// let gen = TraceGenerator::new(interleaver, mapping.as_ref());
/// let writes: Vec<_> = gen.requests(AccessPhase::Write).collect();
/// assert_eq!(writes.len() as u64, interleaver.len());
/// assert!(writes.iter().all(|r| r.is_write()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy)]
pub struct TraceGenerator<'a> {
    interleaver: TriangularInterleaver,
    mapping: &'a dyn DramMapping,
}

impl std::fmt::Debug for TraceGenerator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceGenerator")
            .field("interleaver", &self.interleaver)
            .field("mapping", &self.mapping.name())
            .finish()
    }
}

impl<'a> TraceGenerator<'a> {
    /// Creates a trace generator for `interleaver` using `mapping`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping was built for a smaller index space than the
    /// interleaver dimension.
    #[must_use]
    pub fn new(interleaver: TriangularInterleaver, mapping: &'a dyn DramMapping) -> Self {
        assert!(
            mapping.dimension() >= interleaver.dimension(),
            "mapping dimension {} smaller than interleaver dimension {}",
            mapping.dimension(),
            interleaver.dimension()
        );
        Self {
            interleaver,
            mapping,
        }
    }

    /// The interleaver whose accesses are generated.
    #[must_use]
    pub fn interleaver(&self) -> TriangularInterleaver {
        self.interleaver
    }

    /// Lazily yields the request stream of `phase` in its natural order.
    ///
    /// The returned [`PhaseTrace`] streams one [`Request`] at a time —
    /// nothing is materialised, so even the paper's 12.5 M-burst interleaver
    /// costs O(1) memory, and the DRAM engines consume requests exactly as
    /// fast as they can retire them (back-pressure through
    /// [`MemorySystem::run_trace`](tbi_dram::MemorySystem::run_trace)).
    #[must_use]
    pub fn requests(&self, phase: AccessPhase) -> PhaseTrace<'a> {
        PhaseTrace {
            mapping: self.mapping,
            phase,
            n: self.interleaver.dimension(),
            outer: 0,
            inner: 0,
            remaining: self.interleaver.len(),
            scratch: AddressBatch::new(),
        }
    }

    /// Number of requests per phase (equal to the interleaver length).
    #[must_use]
    pub fn requests_per_phase(&self) -> u64 {
        self.interleaver.len()
    }
}

/// A streaming iterator over the burst-level DRAM requests of one interleaver
/// access phase.
///
/// Produced by [`TraceGenerator::requests`].  Write phases walk the triangle
/// row-wise and yield [`Request::write`]s; read phases walk it column-wise
/// and yield [`Request::read`]s.  The iterator is exact-sized and fused.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
/// use tbi_interleaver::triangular::TriangularInterleaver;
/// use tbi_interleaver::{AccessPhase, MappingKind, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 1600)?;
/// let mapping = MappingKind::Optimized.build(&config, 32)?;
/// let interleaver = TriangularInterleaver::new(32)?;
/// let gen = TraceGenerator::new(interleaver, mapping.as_ref());
/// let mut trace = gen.requests(AccessPhase::Read);
/// assert_eq!(trace.len(), interleaver.len() as usize);
/// let first = trace.next().expect("non-empty trace");
/// assert!(!first.is_write());
/// assert_eq!(trace.len() as u64, interleaver.len() - 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct PhaseTrace<'a> {
    mapping: &'a dyn DramMapping,
    phase: AccessPhase,
    n: u32,
    /// Row index (write phase) or column index (read phase).
    outer: u32,
    /// Position within the current row/column, `0..n - outer`.
    inner: u32,
    remaining: u64,
    /// Scratch SoA buffer for [`PhaseTrace::fill_batch`] (reused across
    /// calls; empty until the batched path is used).
    scratch: AddressBatch,
}

impl PhaseTrace<'_> {
    /// Appends up to roughly `max` of the remaining requests to `out` (the
    /// last mapping chunk may overshoot slightly; fewer when the trace ends
    /// first) and returns how many were appended.
    ///
    /// Positions are mapped in [`DramMapping::map_batch`] slices, so the
    /// per-request mapping cost is the batched kernel's instead of a scalar
    /// `map` call.  The appended sequence is exactly the iterator's — mixing
    /// `next` and `fill_batch` calls is allowed and never reorders or drops
    /// requests.
    ///
    /// Returns `0` if and only if the trace is exhausted.
    pub fn fill_batch(&mut self, out: &mut Vec<Request>, max: usize) -> usize {
        let before = out.len();
        let mut coords = [(0u32, 0u32); BATCH_CHUNK];
        while out.len() - before < max && self.remaining > 0 {
            let take = self.remaining.min(BATCH_CHUNK as u64) as usize;
            for slot in coords.iter_mut().take(take) {
                *slot = match self.phase {
                    AccessPhase::Write => (self.outer, self.inner),
                    AccessPhase::Read => (self.inner, self.outer),
                };
                self.inner += 1;
                if self.inner >= self.n - self.outer {
                    self.inner = 0;
                    self.outer += 1;
                }
            }
            self.remaining -= take as u64;
            self.scratch.clear();
            self.mapping.map_batch(&coords[..take], &mut self.scratch);
            out.reserve(take);
            for index in 0..take {
                let address = self.scratch.address(index);
                out.push(match self.phase {
                    AccessPhase::Write => Request::write(address),
                    AccessPhase::Read => Request::read(address),
                });
            }
        }
        out.len() - before
    }
}

impl RequestSource for PhaseTrace<'_> {
    fn fill(&mut self, out: &mut Vec<Request>, max: usize) -> usize {
        self.fill_batch(out, max)
    }
}

impl std::fmt::Debug for PhaseTrace<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseTrace")
            .field("mapping", &self.mapping.name())
            .field("phase", &self.phase)
            .field("n", &self.n)
            .field("remaining", &self.remaining)
            .finish()
    }
}

impl Iterator for PhaseTrace<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Both phases sweep lines of length `n - outer`; they only differ in
        // which coordinate is the line index.
        let (i, j) = match self.phase {
            AccessPhase::Write => (self.outer, self.inner),
            AccessPhase::Read => (self.inner, self.outer),
        };
        self.inner += 1;
        if self.inner >= self.n - self.outer {
            self.inner = 0;
            self.outer += 1;
        }
        let address = self.mapping.map(i, j);
        Some(match self.phase {
            AccessPhase::Write => Request::write(address),
            AccessPhase::Read => Request::read(address),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // On targets where `usize` cannot hold the 64-bit remaining count
        // (paper-sized traces exceed 2^32 positions on 32-bit hosts), report
        // an honest "at least usize::MAX, upper bound unknown" instead of
        // silently saturating both bounds to a wrong exact size.
        match usize::try_from(self.remaining) {
            Ok(remaining) => (remaining, Some(remaining)),
            Err(_) => (usize::MAX, None),
        }
    }
}

// `len()` must equal the exact element count, which only fits in `usize` on
// 64-bit targets; 32-bit consumers get the honest `size_hint` above instead.
#[cfg(target_pointer_width = "64")]
impl ExactSizeIterator for PhaseTrace<'_> {}

impl std::iter::FusedIterator for PhaseTrace<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingKind;
    use std::collections::HashSet;
    use tbi_dram::{DramConfig, DramStandard};

    fn setup(n: u32) -> (DramConfig, TriangularInterleaver) {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        let interleaver = TriangularInterleaver::new(n).unwrap();
        (config, interleaver)
    }

    #[test]
    fn phases_have_names() {
        assert_eq!(AccessPhase::Write.to_string(), "write");
        assert_eq!(AccessPhase::Read.to_string(), "read");
        assert_eq!(AccessPhase::ALL.len(), 2);
    }

    #[test]
    fn write_and_read_traces_cover_the_same_addresses() {
        let (config, interleaver) = setup(48);
        for kind in MappingKind::ALL {
            let mapping = kind.build(&config, 48).unwrap();
            let gen = TraceGenerator::new(interleaver, mapping.as_ref());
            let writes: HashSet<_> = gen
                .requests(AccessPhase::Write)
                .map(|r| r.address)
                .collect();
            let reads: HashSet<_> = gen.requests(AccessPhase::Read).map(|r| r.address).collect();
            assert_eq!(writes, reads, "{kind}");
            assert_eq!(writes.len() as u64, interleaver.len(), "{kind}");
        }
    }

    #[test]
    fn request_kinds_match_phase() {
        let (config, interleaver) = setup(16);
        let mapping = MappingKind::RowMajor.build(&config, 16).unwrap();
        let gen = TraceGenerator::new(interleaver, mapping.as_ref());
        assert!(gen.requests(AccessPhase::Write).all(|r| r.is_write()));
        assert!(gen.requests(AccessPhase::Read).all(|r| !r.is_write()));
        assert_eq!(gen.requests_per_phase(), interleaver.len());
    }

    #[test]
    fn phase_trace_matches_the_reference_index_orders() {
        let (config, interleaver) = setup(33);
        let mapping = MappingKind::Optimized.build(&config, 33).unwrap();
        let gen = TraceGenerator::new(interleaver, mapping.as_ref());
        let writes: Vec<_> = gen.requests(AccessPhase::Write).collect();
        let expected: Vec<_> = interleaver
            .write_order()
            .map(|(i, j)| Request::write(mapping.map(i, j)))
            .collect();
        assert_eq!(writes, expected);
        let reads: Vec<_> = gen.requests(AccessPhase::Read).collect();
        let expected: Vec<_> = interleaver
            .read_order()
            .map(|(i, j)| Request::read(mapping.map(i, j)))
            .collect();
        assert_eq!(reads, expected);
    }

    #[test]
    fn phase_trace_is_exact_sized_and_fused() {
        let (config, interleaver) = setup(12);
        let mapping = MappingKind::RowMajor.build(&config, 12).unwrap();
        let gen = TraceGenerator::new(interleaver, mapping.as_ref());
        let mut trace = gen.requests(AccessPhase::Write);
        let mut remaining = interleaver.len() as usize;
        assert_eq!(trace.len(), remaining);
        while trace.next().is_some() {
            remaining -= 1;
            assert_eq!(trace.len(), remaining);
        }
        assert_eq!(trace.len(), 0);
        assert!(trace.next().is_none(), "fused after exhaustion");
        assert!(trace.next().is_none());
    }

    #[test]
    fn size_hint_is_exact_at_every_step() {
        let (config, interleaver) = setup(12);
        let mapping = MappingKind::RowMajor.build(&config, 12).unwrap();
        let gen = TraceGenerator::new(interleaver, mapping.as_ref());
        let mut trace = gen.requests(AccessPhase::Write);
        let mut expected = interleaver.len() as usize;
        assert_eq!(trace.size_hint(), (expected, Some(expected)));
        while trace.next().is_some() {
            expected -= 1;
            let (lower, upper) = trace.size_hint();
            assert_eq!(lower, expected, "lower bound must stay exact");
            assert_eq!(upper, Some(expected), "upper bound must stay exact");
        }
        assert_eq!(trace.size_hint(), (0, Some(0)));
    }

    #[test]
    fn fill_batch_yields_the_iterator_sequence() {
        let (config, interleaver) = setup(37);
        for kind in MappingKind::ALL {
            let mapping = kind.build(&config, 37).unwrap();
            let gen = TraceGenerator::new(interleaver, mapping.as_ref());
            for phase in AccessPhase::ALL {
                let scalar: Vec<_> = gen.requests(phase).collect();
                for max in [1usize, 64, 1000] {
                    let mut trace = gen.requests(phase);
                    let mut batched = Vec::new();
                    loop {
                        let appended = trace.fill_batch(&mut batched, max);
                        if appended == 0 {
                            break;
                        }
                    }
                    assert_eq!(batched, scalar, "{kind} {phase} max={max}");
                    assert_eq!(trace.fill_batch(&mut batched, max), 0, "stays exhausted");
                }
            }
        }
    }

    #[test]
    fn fill_batch_and_next_can_be_mixed() {
        let (config, interleaver) = setup(29);
        let mapping = MappingKind::Optimized.build(&config, 29).unwrap();
        let gen = TraceGenerator::new(interleaver, mapping.as_ref());
        let scalar: Vec<_> = gen.requests(AccessPhase::Read).collect();
        let mut trace = gen.requests(AccessPhase::Read);
        let mut mixed = Vec::new();
        while mixed.len() < scalar.len() {
            if let Some(request) = trace.next() {
                mixed.push(request);
            } else {
                break;
            }
            trace.fill_batch(&mut mixed, 10);
        }
        assert_eq!(mixed, scalar);
    }

    #[test]
    #[should_panic(expected = "smaller than interleaver dimension")]
    fn mismatched_dimensions_panic() {
        let (config, _) = setup(16);
        let mapping = MappingKind::Optimized.build(&config, 8).unwrap();
        let interleaver = TriangularInterleaver::new(16).unwrap();
        let _ = TraceGenerator::new(interleaver, mapping.as_ref());
    }
}
