//! Rectangular block interleaver — the small SRAM-resident first stage.
//!
//! The paper splits interleaving into two stages: a small SRAM block
//! interleaver first rearranges symbols so that the symbols inside one DRAM
//! burst belong to *different* code words, and the large triangular DRAM
//! interleaver then operates at burst granularity.  This module provides the
//! first stage.

use crate::InterleaverError;

/// A classic `rows × columns` block interleaver: symbols are written row-wise
/// and read column-wise.
///
/// # Examples
///
/// ```
/// use tbi_interleaver::BlockInterleaver;
///
/// # fn main() -> Result<(), tbi_interleaver::InterleaverError> {
/// let il = BlockInterleaver::new(2, 3)?;
/// let interleaved = il.interleave(&[1, 2, 3, 4, 5, 6])?;
/// assert_eq!(interleaved, vec![1, 4, 2, 5, 3, 6]);
/// assert_eq!(il.deinterleave(&interleaved)?, vec![1, 2, 3, 4, 5, 6]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockInterleaver {
    rows: u32,
    columns: u32,
}

impl BlockInterleaver {
    /// Creates a block interleaver with the given number of rows and columns.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if either dimension is
    /// zero.
    pub fn new(rows: u32, columns: u32) -> Result<Self, InterleaverError> {
        if rows == 0 || columns == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: format!(
                    "block interleaver dimensions must be non-zero, got {rows}x{columns}"
                ),
            });
        }
        Ok(Self { rows, columns })
    }

    /// Creates the SRAM pre-interleaver used in front of a DRAM burst of
    /// `symbols_per_burst` symbols, interleaving over `codewords` code words:
    /// each output burst then carries one symbol from `symbols_per_burst`
    /// different code words.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if either argument is
    /// zero.
    pub fn for_burst_spreading(
        codewords: u32,
        symbols_per_burst: u32,
    ) -> Result<Self, InterleaverError> {
        Self::new(codewords, symbols_per_burst)
    }

    /// Number of rows (written first).
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn columns(&self) -> u32 {
        self.columns
    }

    /// Total number of symbols held by the interleaver.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows as usize * self.columns as usize
    }

    /// Whether the interleaver holds no symbols (never true for valid
    /// dimensions).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Output rank of the symbol written at input rank `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()`.
    #[must_use]
    pub fn permute(&self, rank: usize) -> usize {
        assert!(rank < self.len(), "rank {rank} out of range");
        let r = rank / self.columns as usize;
        let c = rank % self.columns as usize;
        c * self.rows as usize + r
    }

    /// Interleaves `data` (write row-wise, read column-wise).
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if `data.len()` does not
    /// match [`len`](Self::len).
    pub fn interleave<T: Clone>(&self, data: &[T]) -> Result<Vec<T>, InterleaverError> {
        self.check_len(data.len())?;
        let mut out = Vec::with_capacity(data.len());
        for c in 0..self.columns as usize {
            for r in 0..self.rows as usize {
                out.push(data[r * self.columns as usize + c].clone());
            }
        }
        Ok(out)
    }

    /// Reverses [`interleave`](Self::interleave).
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if `data.len()` does not
    /// match [`len`](Self::len).
    pub fn deinterleave<T: Clone>(&self, data: &[T]) -> Result<Vec<T>, InterleaverError> {
        self.check_len(data.len())?;
        let mut out = Vec::with_capacity(data.len());
        for r in 0..self.rows as usize {
            for c in 0..self.columns as usize {
                out.push(data[c * self.rows as usize + r].clone());
            }
        }
        Ok(out)
    }

    fn check_len(&self, len: usize) -> Result<(), InterleaverError> {
        if len != self.len() {
            return Err(InterleaverError::InvalidDimension {
                reason: format!("expected {} symbols, got {len}", self.len()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_zero_dimensions() {
        assert!(BlockInterleaver::new(0, 4).is_err());
        assert!(BlockInterleaver::new(4, 0).is_err());
        assert!(BlockInterleaver::for_burst_spreading(0, 1).is_err());
    }

    #[test]
    fn round_trip_small() {
        let il = BlockInterleaver::new(3, 4).unwrap();
        let data: Vec<u32> = (0..12).collect();
        let interleaved = il.interleave(&data).unwrap();
        assert_eq!(il.deinterleave(&interleaved).unwrap(), data);
        assert_eq!(interleaved[0], 0);
        assert_eq!(interleaved[1], 4);
        assert_eq!(interleaved[2], 8);
    }

    #[test]
    fn permute_matches_interleave() {
        let il = BlockInterleaver::new(5, 7).unwrap();
        let data: Vec<usize> = (0..35).collect();
        let interleaved = il.interleave(&data).unwrap();
        for (input_rank, &value) in data.iter().enumerate() {
            assert_eq!(interleaved[il.permute(input_rank)], value);
        }
    }

    #[test]
    fn burst_spreading_separates_codewords() {
        // 8 code words, 4 symbols per burst: each output group of 8 contains
        // one symbol from each code word.
        let il = BlockInterleaver::for_burst_spreading(8, 4).unwrap();
        // Tag each symbol by its code word (row).
        let data: Vec<u32> = (0..32).map(|i| i / 4).collect();
        let interleaved = il.interleave(&data).unwrap();
        for burst in interleaved.chunks(8) {
            let mut cw: Vec<u32> = burst.to_vec();
            cw.sort_unstable();
            cw.dedup();
            assert_eq!(cw.len(), 8, "burst must contain 8 distinct code words");
        }
    }

    #[test]
    fn rejects_wrong_lengths() {
        let il = BlockInterleaver::new(2, 2).unwrap();
        assert!(il.interleave(&[1, 2, 3]).is_err());
        assert!(il.deinterleave(&[1]).is_err());
    }

    proptest! {
        #[test]
        fn round_trip_random_dims(rows in 1u32..20, cols in 1u32..20) {
            let il = BlockInterleaver::new(rows, cols).unwrap();
            let data: Vec<u32> = (0..il.len() as u32).collect();
            let interleaved = il.interleave(&data).unwrap();
            prop_assert_eq!(il.deinterleave(&interleaved).unwrap(), data.clone());
            // Permutation property.
            let mut sorted = interleaved;
            sorted.sort_unstable();
            prop_assert_eq!(sorted, data);
        }

        #[test]
        fn permute_is_bijective(rows in 1u32..16, cols in 1u32..16) {
            let il = BlockInterleaver::new(rows, cols).unwrap();
            let mut seen = vec![false; il.len()];
            for rank in 0..il.len() {
                let out = il.permute(rank);
                prop_assert!(!seen[out]);
                seen[out] = true;
            }
        }
    }
}
