//! The triangular block interleaver index space.
//!
//! A triangular block interleaver of dimension `n` stores its symbols in the
//! upper-left half of an `n × n` square: row `i` holds `n - i` symbols at
//! positions `(i, j)` with `j < n - i`.  Symbols of consecutive code words are
//! **written row-wise** and later **read column-wise**, which separates
//! originally-adjacent symbols by large, varying distances and thereby breaks
//! up channel burst errors.

use crate::InterleaverError;

/// A triangular block interleaver of dimension `n`.
///
/// The struct itself only captures the index-space arithmetic (sizes, write
/// and read orders, position/rank conversions).  Reference interleaving of
/// actual symbol slices is provided by [`TriangularInterleaver::interleave`]
/// and [`TriangularInterleaver::deinterleave`]; the DRAM-mapped data path is
/// built on top of the same index space by the [`mapping`](crate::mapping)
/// and [`trace`](crate::trace) modules.
///
/// # Examples
///
/// ```
/// use tbi_interleaver::TriangularInterleaver;
///
/// # fn main() -> Result<(), tbi_interleaver::InterleaverError> {
/// let il = TriangularInterleaver::new(4)?;
/// assert_eq!(il.len(), 10); // 4 + 3 + 2 + 1
/// let data: Vec<u32> = (0..10).collect();
/// let interleaved = il.interleave(&data)?;
/// let restored = il.deinterleave(&interleaved)?;
/// assert_eq!(restored, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriangularInterleaver {
    n: u32,
}

impl TriangularInterleaver {
    /// Creates a triangular interleaver of dimension `n` (the length of the
    /// first row).
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if `n == 0`.
    pub fn new(n: u32) -> Result<Self, InterleaverError> {
        if n == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: "triangular interleaver dimension must be at least 1".to_string(),
            });
        }
        Ok(Self { n })
    }

    /// Smallest triangular interleaver holding at least `elements` symbols.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if `elements == 0`.
    pub fn with_capacity(elements: u64) -> Result<Self, InterleaverError> {
        if elements == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: "capacity must be at least 1 element".to_string(),
            });
        }
        // Solve n(n+1)/2 >= elements.
        let mut n = ((2.0 * elements as f64).sqrt()).floor() as u64;
        while n * (n + 1) / 2 < elements {
            n += 1;
        }
        while n > 1 && (n - 1) * n / 2 >= elements {
            n -= 1;
        }
        Self::new(n as u32)
    }

    /// The dimension `n` (length of the first row and of the first column).
    #[must_use]
    pub fn dimension(&self) -> u32 {
        self.n
    }

    /// Total number of positions, `n (n + 1) / 2`.
    #[must_use]
    pub fn len(&self) -> u64 {
        u64::from(self.n) * (u64::from(self.n) + 1) / 2
    }

    /// Whether the interleaver is empty (never true for a valid instance).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of row `i` (`n - i`), or 0 if `i >= n`.
    #[must_use]
    pub fn row_len(&self, i: u32) -> u32 {
        self.n.saturating_sub(i)
    }

    /// Length of column `j` (`n - j`), or 0 if `j >= n`.
    #[must_use]
    pub fn column_len(&self, j: u32) -> u32 {
        self.n.saturating_sub(j)
    }

    /// Whether `(i, j)` is a valid position of the triangle.
    #[must_use]
    pub fn contains(&self, i: u32, j: u32) -> bool {
        i < self.n && j < self.row_len(i)
    }

    /// The rank of position `(i, j)` in **write order** (row-wise), i.e. the
    /// index of the symbol that is stored there.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the triangle.
    #[must_use]
    pub fn write_rank(&self, i: u32, j: u32) -> u64 {
        assert!(self.contains(i, j), "position ({i}, {j}) outside triangle");
        let n = u64::from(self.n);
        let i64 = u64::from(i);
        // Elements in rows 0..i: sum_{k=0}^{i-1} (n - k) = i*n - i(i-1)/2
        i64 * n - i64 * (i64.saturating_sub(1)) / 2 + u64::from(j)
    }

    /// The rank of position `(i, j)` in **read order** (column-wise).
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the triangle.
    #[must_use]
    pub fn read_rank(&self, i: u32, j: u32) -> u64 {
        assert!(self.contains(i, j), "position ({i}, {j}) outside triangle");
        let n = u64::from(self.n);
        let j64 = u64::from(j);
        // Elements in columns 0..j: sum_{k=0}^{j-1} (n - k)
        j64 * n - j64 * (j64.saturating_sub(1)) / 2 + u64::from(i)
    }

    /// The position written by the `rank`-th input symbol (inverse of
    /// [`write_rank`](Self::write_rank)).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()`.
    #[must_use]
    pub fn write_position(&self, rank: u64) -> (u32, u32) {
        assert!(rank < self.len(), "rank {rank} out of range");
        // Find the row by walking; rows shrink so use the quadratic formula as
        // a starting guess and correct locally.
        let n = u64::from(self.n);
        let mut i = self.guess_row(rank, n);
        loop {
            let start = i * n - i * i.saturating_sub(1) / 2;
            let len = n - i;
            if rank < start {
                i -= 1;
            } else if rank >= start + len {
                i += 1;
            } else {
                return (i as u32, (rank - start) as u32);
            }
        }
    }

    /// The position read at output `rank` (inverse of
    /// [`read_rank`](Self::read_rank)).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()`.
    #[must_use]
    pub fn read_position(&self, rank: u64) -> (u32, u32) {
        assert!(rank < self.len(), "rank {rank} out of range");
        let n = u64::from(self.n);
        let mut j = self.guess_row(rank, n);
        loop {
            let start = j * n - j * j.saturating_sub(1) / 2;
            let len = n - j;
            if rank < start {
                j -= 1;
            } else if rank >= start + len {
                j += 1;
            } else {
                return ((rank - start) as u32, j as u32);
            }
        }
    }

    fn guess_row(&self, rank: u64, n: u64) -> u64 {
        // Solve i*n - i(i-1)/2 <= rank for i (approximately).
        let nf = n as f64;
        let r = rank as f64;
        let disc = (nf + 0.5) * (nf + 0.5) - 2.0 * r;
        let guess = if disc <= 0.0 {
            n - 1
        } else {
            ((nf + 0.5) - disc.sqrt()).floor() as u64
        };
        guess.min(n - 1)
    }

    /// Iterator over all positions in write (row-wise) order.
    pub fn write_order(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |i| (0..n - i).map(move |j| (i, j)))
    }

    /// Iterator over all positions in read (column-wise) order.
    pub fn read_order(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |j| (0..n - j).map(move |i| (i, j)))
    }

    /// Interleaves `data`: symbols are written row-wise and read column-wise.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if `data.len()` does not
    /// equal [`len`](Self::len).
    pub fn interleave<T: Clone>(&self, data: &[T]) -> Result<Vec<T>, InterleaverError> {
        self.check_len(data.len())?;
        let mut out = Vec::with_capacity(data.len());
        for (i, j) in self.read_order() {
            out.push(data[self.write_rank(i, j) as usize].clone());
        }
        Ok(out)
    }

    /// Reverses [`interleave`](Self::interleave).
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if `data.len()` does not
    /// equal [`len`](Self::len).
    pub fn deinterleave<T: Clone>(&self, data: &[T]) -> Result<Vec<T>, InterleaverError> {
        self.check_len(data.len())?;
        let mut out = vec![None; data.len()];
        for (rank, (i, j)) in self.read_order().enumerate() {
            out[self.write_rank(i, j) as usize] = Some(data[rank].clone());
        }
        Ok(out.into_iter().map(|x| x.expect("bijective")).collect())
    }

    /// The minimum output separation between two symbols that were adjacent at
    /// the input, considering the first `probe` symbols (or all if `None`).
    ///
    /// This is the property that gives the interleaver its burst-error
    /// resilience: adjacent input symbols end up far apart in the transmitted
    /// stream.
    #[must_use]
    pub fn min_adjacent_separation(&self, probe: Option<u64>) -> u64 {
        let limit = probe.unwrap_or(self.len()).min(self.len());
        let mut min_sep = u64::MAX;
        let mut prev_read: Option<u64> = None;
        for rank in 0..limit {
            let (i, j) = self.write_position(rank);
            let read = self.read_rank(i, j);
            if let Some(prev) = prev_read {
                let sep = prev.abs_diff(read);
                min_sep = min_sep.min(sep);
            }
            prev_read = Some(read);
        }
        if min_sep == u64::MAX {
            0
        } else {
            min_sep
        }
    }

    fn check_len(&self, len: usize) -> Result<(), InterleaverError> {
        if len as u64 != self.len() {
            return Err(InterleaverError::InvalidDimension {
                reason: format!("expected {} symbols, got {len}", self.len()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_zero_dimension() {
        assert!(TriangularInterleaver::new(0).is_err());
        assert!(TriangularInterleaver::with_capacity(0).is_err());
    }

    #[test]
    fn len_is_triangular_number() {
        for n in 1..50u32 {
            let il = TriangularInterleaver::new(n).unwrap();
            assert_eq!(il.len(), u64::from(n) * u64::from(n + 1) / 2);
            assert!(!il.is_empty());
        }
    }

    #[test]
    fn with_capacity_is_tight() {
        for elements in [1u64, 2, 3, 10, 11, 100, 5050, 5051, 12_500_000] {
            let il = TriangularInterleaver::with_capacity(elements).unwrap();
            assert!(il.len() >= elements, "{elements}");
            if il.dimension() > 1 {
                let smaller = TriangularInterleaver::new(il.dimension() - 1).unwrap();
                assert!(smaller.len() < elements, "{elements}");
            }
        }
    }

    #[test]
    fn paper_size_has_dimension_5000() {
        // 12.5 M elements as in the paper's Table I.
        let il = TriangularInterleaver::with_capacity(12_500_000).unwrap();
        assert_eq!(il.dimension(), 5000);
    }

    #[test]
    fn row_and_column_lengths() {
        let il = TriangularInterleaver::new(5).unwrap();
        assert_eq!(il.row_len(0), 5);
        assert_eq!(il.row_len(4), 1);
        assert_eq!(il.row_len(5), 0);
        assert_eq!(il.column_len(0), 5);
        assert_eq!(il.column_len(4), 1);
        assert!(il.contains(0, 4));
        assert!(!il.contains(0, 5));
        assert!(!il.contains(4, 1));
    }

    #[test]
    fn write_order_matches_write_rank() {
        let il = TriangularInterleaver::new(7).unwrap();
        for (rank, (i, j)) in il.write_order().enumerate() {
            assert_eq!(il.write_rank(i, j), rank as u64);
            assert_eq!(il.write_position(rank as u64), (i, j));
        }
    }

    #[test]
    fn read_order_matches_read_rank() {
        let il = TriangularInterleaver::new(7).unwrap();
        for (rank, (i, j)) in il.read_order().enumerate() {
            assert_eq!(il.read_rank(i, j), rank as u64);
            assert_eq!(il.read_position(rank as u64), (i, j));
        }
    }

    #[test]
    fn small_interleave_by_hand() {
        // n = 3: positions (write order): (0,0)(0,1)(0,2)(1,0)(1,1)(2,0)
        // read order: (0,0)(1,0)(2,0)(0,1)(1,1)(0,2)
        let il = TriangularInterleaver::new(3).unwrap();
        let data = vec![0, 1, 2, 3, 4, 5];
        let interleaved = il.interleave(&data).unwrap();
        assert_eq!(interleaved, vec![0, 3, 5, 1, 4, 2]);
        assert_eq!(il.deinterleave(&interleaved).unwrap(), data);
    }

    #[test]
    fn interleave_rejects_wrong_length() {
        let il = TriangularInterleaver::new(3).unwrap();
        assert!(il.interleave(&[1, 2, 3]).is_err());
        assert!(il.deinterleave(&[1, 2, 3, 4, 5, 6, 7]).is_err());
    }

    #[test]
    fn adjacent_symbols_are_separated() {
        let il = TriangularInterleaver::new(64).unwrap();
        // Within the first row, adjacent input symbols are a full column
        // length apart at the output: symbol j and j+1 are separated by n - j.
        let first_row_sep = il.min_adjacent_separation(Some(2));
        assert_eq!(first_row_sep, 64);
        // Towards the triangle's diagonal the separation shrinks (that corner
        // is protected by the SRAM pre-interleaver instead), but it never
        // vanishes.
        let sep = il.min_adjacent_separation(Some(1000));
        assert!(sep >= 1, "separation vanished: {sep}");
    }

    proptest! {
        #[test]
        fn write_and_read_positions_round_trip(n in 1u32..200, seed in 0u64..1000) {
            let il = TriangularInterleaver::new(n).unwrap();
            let rank = seed % il.len();
            let (i, j) = il.write_position(rank);
            prop_assert!(il.contains(i, j));
            prop_assert_eq!(il.write_rank(i, j), rank);
            let (ri, rj) = il.read_position(rank);
            prop_assert!(il.contains(ri, rj));
            prop_assert_eq!(il.read_rank(ri, rj), rank);
        }

        #[test]
        fn interleave_is_a_permutation(n in 1u32..40) {
            let il = TriangularInterleaver::new(n).unwrap();
            let data: Vec<u64> = (0..il.len()).collect();
            let interleaved = il.interleave(&data).unwrap();
            let mut sorted = interleaved.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, data.clone());
            prop_assert_eq!(il.deinterleave(&interleaved).unwrap(), data);
        }
    }
}
