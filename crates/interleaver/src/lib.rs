//! # tbi-interleaver — triangular block interleavers mapped to DRAM
//!
//! This crate implements the core contribution of *"A Mapping of Triangular
//! Block Interleavers to DRAM for Optical Satellite Communication"*
//! (DATE 2024): the interleaver data structures and, most importantly, the
//! address mappings that place the interleaver's two-dimensional index space
//! onto the (bank, row, column) coordinates of a JEDEC DRAM device.
//!
//! ## Why this exists
//!
//! Optical LEO-satellite downlinks beyond 100 Gbit/s need interleavers with
//! tens of millions of symbols to break up burst errors — far too large for
//! on-chip SRAM, so the symbols live in DRAM.  A triangular block interleaver
//! is written **row-wise** and read **column-wise**; one of the two phases is
//! always hostile to DRAM if the index space is simply laid out linearly
//! ("row-major"), and the interleaver throughput is set by the *slower*
//! phase.  The [`mapping::OptimizedMapping`] combines three optimizations to
//! keep both phases above 90 % bandwidth utilization:
//!
//! 1. **bank round-robin** — the bank index advances with every access in
//!    both directions, so consecutive bursts land in different bank groups;
//! 2. **page tiling** — the index space is partitioned into rectangles owned
//!    by one DRAM page each, splitting page misses evenly between phases;
//! 3. **bank-staggered offsets** — the tile boundaries of different banks are
//!    shifted against each other so their page misses never coincide.
//!
//! ## Quick start
//!
//! ```
//! use tbi_dram::{DramConfig, DramStandard};
//! use tbi_interleaver::{InterleaverSpec, MappingKind, ThroughputEvaluator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dram = DramConfig::preset(DramStandard::Ddr4, 3200)?;
//! // A small interleaver so the example runs quickly.
//! let spec = InterleaverSpec::from_burst_count(20_000);
//! let evaluator = ThroughputEvaluator::new(dram, spec);
//!
//! let baseline = evaluator.evaluate(MappingKind::RowMajor)?;
//! let optimized = evaluator.evaluate(MappingKind::Optimized)?;
//! assert!(optimized.min_utilization() >= baseline.min_utilization());
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`triangular`] | triangular index space, write/read order, reference (de)interleaving |
//! | [`block`] | rectangular block interleaver (the SRAM first stage) |
//! | [`two_stage`] | SRAM + DRAM two-stage interleaver composition |
//! | [`mapping`] | the [`DramMapping`] trait and all mapping schemes |
//! | [`trace`] | write-phase / read-phase DRAM request generation |
//! | [`throughput`] | drives `tbi-dram` and reports per-phase utilization |
//! | [`config`] | interleaver sizing helpers |
//! | [`analysis`] | analytic access-pattern statistics (activations, hit rates, bank balance) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod block;
pub mod config;
pub mod mapping;
pub mod throughput;
pub mod trace;
pub mod triangular;
pub mod two_stage;

pub use block::BlockInterleaver;
pub use config::InterleaverSpec;
pub use mapping::{
    ChannelMapping, ChannelTraceGenerator, DramMapping, MappingKind, OptimizedMapping,
    RowMajorMapping, TileOrder,
};
pub use throughput::{
    ChannelPhaseReport, ChannelUtilizationReport, PhaseReport, ThroughputEvaluator,
    UtilizationReport,
};
pub use trace::{AccessPhase, PhaseTrace, TraceGenerator};
pub use triangular::TriangularInterleaver;
pub use two_stage::TwoStageInterleaver;

/// Errors produced by interleaver construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum InterleaverError {
    /// The interleaver does not fit into the DRAM device.
    CapacityExceeded {
        /// Bursts required by the index space mapping.
        required_bursts: u64,
        /// Bursts available in the device.
        available_bursts: u64,
    },
    /// An invalid dimension (zero rows/columns) was requested.
    InvalidDimension {
        /// Explanation of the problem.
        reason: String,
    },
    /// The underlying DRAM configuration was rejected.
    Dram(tbi_dram::ConfigError),
}

impl std::fmt::Display for InterleaverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterleaverError::CapacityExceeded {
                required_bursts,
                available_bursts,
            } => write!(
                f,
                "interleaver needs {required_bursts} bursts but the device only has {available_bursts}"
            ),
            InterleaverError::InvalidDimension { reason } => {
                write!(f, "invalid interleaver dimension: {reason}")
            }
            InterleaverError::Dram(e) => write!(f, "DRAM configuration error: {e}"),
        }
    }
}

impl std::error::Error for InterleaverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InterleaverError::Dram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tbi_dram::ConfigError> for InterleaverError {
    fn from(value: tbi_dram::ConfigError) -> Self {
        InterleaverError::Dram(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let err = InterleaverError::CapacityExceeded {
            required_bursts: 100,
            available_bursts: 10,
        };
        assert!(err.to_string().contains("100"));
        let err = InterleaverError::InvalidDimension {
            reason: "zero".to_string(),
        };
        assert!(err.to_string().contains("zero"));
    }

    #[test]
    fn dram_errors_convert() {
        let dram_err = tbi_dram::ConfigError::UnknownPreset {
            standard: "DDR9".to_string(),
            data_rate: 1,
        };
        let err: InterleaverError = dram_err.into();
        assert!(matches!(err, InterleaverError::Dram(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
