//! Channel-interleaved mapping variants: striping triangular-block traffic
//! across the channels and ranks of a [`ChannelTopology`].
//!
//! A [`ChannelMapping`] wraps one of the [`MappingKind`] schemes and routes
//! every index-space position to a `(channel, PhysicalAddress)` pair:
//!
//! * **Row-major** (the paper's baseline) splices the channel bits into the
//!   bottom of the linear decode chain (`channel = linear mod C`) and the
//!   rank bits into the controller's decode scheme directly above the bank
//!   bits — the classic channel/rank-interleaved controller mapping.
//! * **Coordinate schemes** (bank round-robin, tiled, optimized) rotate
//!   `channel` and `rank` along the diagonal of a coarse *stripe-tile* grid
//!   (`lane = (i/T + j/T) mod (C·R)`), so both the row-wise write phase and
//!   the column-wise read phase spread evenly over all channels while each
//!   channel still sees long contiguous runs (a stripe tile is at least as
//!   tall as the underlying mapping's page tile, so no extra page misses are
//!   introduced).  The column coordinate is compacted per channel
//!   (`j' = (j / (T·C))·T + j mod T`), which keeps the per-channel stream
//!   exactly as page-local as the single-channel stream.
//!
//! All divisors are powers of two for preset topologies, so routing has a
//! shift/mask fast path next to the generic divide chain (same pattern as
//! [`AddressDecoder`](tbi_dram::AddressDecoder) and
//! [`OptimizedMapping`](crate::mapping::OptimizedMapping)); the two paths
//! are equivalence-tested.
//!
//! With the default `1 × 1` topology every position routes to channel 0,
//! rank 0 and the wrapped scheme's exact single-channel address — the legacy
//! path is reproduced bit-identically.

use tbi_dram::{
    AddressBatch, AddressDecoder, ChannelTopology, DramConfig, PhysicalAddress, Request,
    RequestSource,
};

use crate::config::InterleaverSpec;
use crate::mapping::{DramMapping, MappingKind, PermutedMapping, BATCH_CHUNK};
use crate::triangular::TriangularInterleaver;
use crate::InterleaverError;

/// Default stripe-tile edge in index-space positions (clamped down for
/// small index spaces).  128 is at least four underlying page tiles for
/// every preset geometry, so channel/rank switches always land on page-tile
/// boundaries that were misses anyway.
const STRIPE_TILE: u32 = 128;

/// Pow2 parameters of the stripe-tile router.
#[derive(Debug, Clone, Copy)]
struct StripeShifts {
    /// log2 of the stripe-tile edge.
    tile: u32,
    /// log2 of the channel count.
    channels: u32,
}

/// The lane-ordering scheme of the stripe-tile router: which function of the
/// tile coordinates `(i/T, j/T)` picks the `(channel, rank)` lane.
///
/// [`TileOrder::Diagonal`] is the legacy order (and the default): both
/// phases rotate lanes along the anti-diagonal.  The other orders enlarge
/// the searchable lane-ordering family: X-major stripes lanes along rows,
/// Y-major along columns, and a rotated order shears the diagonal by an
/// arbitrary factor.
///
/// The per-channel column compaction (`j' = (j/(T·C))·T + j mod T`) is only
/// applied for orders where the channel determines `(j/T) mod C` (diagonal
/// and X-major); Y-major and rotated orders route the uncompacted column so
/// routing stays injective for every rotation factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum TileOrder {
    /// `lane = (i/T + j/T) mod L` — the legacy anti-diagonal rotation.
    #[default]
    Diagonal,
    /// `lane = (j/T) mod L` — lanes stripe along the row (write) direction.
    XMajor,
    /// `lane = (i/T) mod L` — lanes stripe along the column (read)
    /// direction.
    YMajor,
    /// `lane = (i/T + r·(j/T)) mod L` — the diagonal sheared by rotation
    /// factor `r` (`r = 1` is the uncompacted diagonal).
    Rotated(u32),
}

impl TileOrder {
    /// All fixed orders plus two representative rotations (for tests and
    /// search enumeration).
    pub const ALL: [TileOrder; 5] = [
        TileOrder::Diagonal,
        TileOrder::XMajor,
        TileOrder::YMajor,
        TileOrder::Rotated(1),
        TileOrder::Rotated(3),
    ];

    /// Whether the per-channel column compaction is sound for this order
    /// (the channel must pin down `(j/T) mod C`).
    fn compacts(self) -> bool {
        matches!(self, TileOrder::Diagonal | TileOrder::XMajor)
    }

    /// Lane of tile coordinates, generic divide chain.
    fn lane_generic(self, i: u32, j: u32, tile: u32, lanes: u32) -> u32 {
        let (ti, tj) = (u64::from(i / tile), u64::from(j / tile));
        let mixed = match self {
            TileOrder::Diagonal => ti + tj,
            TileOrder::XMajor => tj,
            TileOrder::YMajor => ti,
            TileOrder::Rotated(r) => ti + u64::from(r) * tj,
        };
        (mixed % u64::from(lanes)) as u32
    }

    /// Lane of tile coordinates, pow2 shift/mask fast path.
    fn lane_shift(self, i: u32, j: u32, tile_shift: u32, lanes_mask: u32) -> u32 {
        let (ti, tj) = (i >> tile_shift, j >> tile_shift);
        let mixed = match self {
            TileOrder::Diagonal => ti.wrapping_add(tj),
            TileOrder::XMajor => tj,
            TileOrder::YMajor => ti,
            TileOrder::Rotated(r) => ti.wrapping_add(r.wrapping_mul(tj)),
        };
        mixed & lanes_mask
    }
}

impl std::fmt::Display for TileOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileOrder::Diagonal => f.write_str("diagonal"),
            TileOrder::XMajor => f.write_str("xmajor"),
            TileOrder::YMajor => f.write_str("ymajor"),
            TileOrder::Rotated(r) => write!(f, "rot{r}"),
        }
    }
}

/// How positions are routed to channels/ranks.
enum Router {
    /// `channel = linear mod C`, rank bits inside the decode chain.
    LinearSplice {
        interleaver: TriangularInterleaver,
        decoder: AddressDecoder,
    },
    /// Stripe-tile rotation over a wrapped coordinate mapping.
    TileRotate {
        inner: Box<dyn DramMapping>,
        tile: u32,
        shifts: Option<StripeShifts>,
        order: TileOrder,
    },
    /// Bit-permutation routing: the permutation's own channel/rank bits
    /// select the lane directly (see [`PermutedMapping`]).
    Permuted { mapping: Box<PermutedMapping> },
}

/// A channel/rank-aware mapping from index-space positions to
/// `(channel, PhysicalAddress)` pairs.
///
/// # Examples
///
/// ```
/// use tbi_dram::{ChannelTopology, DramConfig, DramStandard};
/// use tbi_interleaver::mapping::ChannelMapping;
/// use tbi_interleaver::MappingKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 3200)?
///     .with_topology(ChannelTopology::new(2, 1));
/// let mapping = ChannelMapping::new(MappingKind::Optimized, &config, 1024)?;
/// let (c0, _) = mapping.route(0, 0);
/// let (c1, _) = mapping.route(0, 128);
/// // Neighbouring stripe tiles land on different channels.
/// assert_ne!(c0, c1);
/// # Ok(())
/// # }
/// ```
pub struct ChannelMapping {
    router: Router,
    topology: ChannelTopology,
    dimension: u32,
    label: String,
}

impl std::fmt::Debug for ChannelMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelMapping")
            .field("scheme", &self.label)
            .field("topology", &self.topology)
            .field("dimension", &self.dimension)
            .finish()
    }
}

impl ChannelMapping {
    /// Builds the channel-aware variant of `kind` for `config`'s topology
    /// and an index space of dimension `n`.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if `n` is zero or the index space does
    /// not fit the subsystem under this scheme.
    pub fn new(kind: MappingKind, config: &DramConfig, n: u32) -> Result<Self, InterleaverError> {
        Self::with_tile_order(kind, config, n, TileOrder::default())
    }

    /// Builds the channel-aware variant of `kind` routed with `order` (see
    /// [`TileOrder`]).  The default order reproduces
    /// [`ChannelMapping::new`] bit-identically.
    ///
    /// # Errors
    ///
    /// As [`ChannelMapping::new`], plus
    /// [`InterleaverError::InvalidDimension`] when a non-default order is
    /// requested for a scheme that does not route through the stripe-tile
    /// router (row-major and permutation/fold mappings route linearly).
    pub fn with_tile_order(
        kind: MappingKind,
        config: &DramConfig,
        n: u32,
        order: TileOrder,
    ) -> Result<Self, InterleaverError> {
        let topology = config.topology;
        if order != TileOrder::default()
            && matches!(
                kind,
                MappingKind::RowMajor | MappingKind::Permutation(_) | MappingKind::XorFolded(..)
            )
        {
            return Err(InterleaverError::InvalidDimension {
                reason: format!(
                    "tile order {order} applies to coordinate schemes, not {}",
                    kind.name()
                ),
            });
        }
        let router = match kind {
            MappingKind::RowMajor => {
                let interleaver = TriangularInterleaver::new(n)?;
                let available = config.geometry.total_bursts()
                    * u64::from(topology.channels)
                    * u64::from(topology.ranks);
                if interleaver.len() > available {
                    return Err(InterleaverError::CapacityExceeded {
                        required_bursts: interleaver.len(),
                        available_bursts: available,
                    });
                }
                Router::LinearSplice {
                    interleaver,
                    decoder: AddressDecoder::with_ranks(
                        config.geometry,
                        config.decode_scheme,
                        topology.ranks,
                    ),
                }
            }
            MappingKind::Permutation(permutation) => Router::Permuted {
                mapping: Box::new(PermutedMapping::new(
                    config.geometry,
                    topology,
                    permutation,
                    n,
                )?),
            },
            MappingKind::XorFolded(permutation, fold) => Router::Permuted {
                mapping: Box::new(PermutedMapping::with_fold(
                    config.geometry,
                    topology,
                    permutation,
                    fold,
                    n,
                )?),
            },
            _ => {
                let inner = kind.build_for_geometry(config.geometry, n)?;
                let tile = stripe_tile(n, topology.units());
                let shifts = (topology.channels.is_power_of_two()
                    && topology.ranks.is_power_of_two())
                .then(|| StripeShifts {
                    tile: tile.trailing_zeros(),
                    channels: topology.channels.trailing_zeros(),
                });
                Router::TileRotate {
                    inner,
                    tile,
                    shifts,
                    order,
                }
            }
        };
        let label = if order == TileOrder::default() {
            kind.label()
        } else {
            format!("{}@{order}", kind.label())
        };
        Ok(Self {
            router,
            topology,
            dimension: n,
            label,
        })
    }

    /// The wrapped scheme's label ([`MappingKind::label`]).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.label
    }

    /// The channel/rank topology the mapping stripes over.
    #[must_use]
    pub fn topology(&self) -> ChannelTopology {
        self.topology
    }

    /// Dimension `n` of the index space.
    #[must_use]
    pub fn dimension(&self) -> u32 {
        self.dimension
    }

    /// Routes position `(i, j)` to its channel and physical address (the
    /// address's [`rank`](PhysicalAddress::rank) field selects the rank
    /// within that channel).
    ///
    /// # Panics
    ///
    /// May panic (in debug builds) if `(i, j)` lies outside the index space.
    #[must_use]
    pub fn route(&self, i: u32, j: u32) -> (u32, PhysicalAddress) {
        debug_assert!(
            i < self.dimension && j < self.dimension,
            "({i},{j}) outside index space"
        );
        let channels = self.topology.channels;
        let ranks = self.topology.ranks;
        match &self.router {
            Router::LinearSplice {
                interleaver,
                decoder,
            } => {
                let linear = interleaver.write_rank(i, j);
                // Channel bits at the very bottom of the linear space:
                // consecutive bursts rotate channels, the remainder feeds
                // the (rank-aware) per-channel decode chain.
                let channel = (linear % u64::from(channels)) as u32;
                (channel, decoder.decode(linear / u64::from(channels)))
            }
            Router::TileRotate {
                inner,
                tile,
                shifts,
                order,
            } => {
                let (lane, j_inner) = match shifts {
                    Some(s) => {
                        let lane = order.lane_shift(i, j, s.tile, channels * ranks - 1);
                        let j_inner = if order.compacts() {
                            ((j >> (s.tile + s.channels)) << s.tile) | (j & (tile - 1))
                        } else {
                            j
                        };
                        (lane, j_inner)
                    }
                    None => {
                        let lane = order.lane_generic(i, j, *tile, channels * ranks);
                        let j_inner = if order.compacts() {
                            (j / (tile * channels)) * tile + j % tile
                        } else {
                            j
                        };
                        (lane, j_inner)
                    }
                };
                let channel = lane % channels;
                let rank = lane / channels;
                (channel, inner.map(i, j_inner).with_rank(rank))
            }
            Router::Permuted { mapping } => mapping.route(i, j),
        }
    }

    /// Batched counterpart of [`ChannelMapping::route`]: appends the
    /// `(channel, address)` pair of every position in `coords`, in order, to
    /// `out`.
    ///
    /// The row-major and permutation routers stage linear indices through a
    /// stack chunk and decode whole slices (see
    /// [`AddressDecoder::decode_slice`] and
    /// [`PermutedMapping::route_batch`]); the stripe-tile router stages lane
    /// indices and compacted inner coordinates through a stack chunk, maps
    /// the inner coordinates with the wrapped scheme's
    /// [`DramMapping::map_batch`] kernel and then overwrites the channel and
    /// rank lanes in two tight per-lane loops.  Results are bit-identical to
    /// per-element `route`.
    ///
    /// # Panics
    ///
    /// May panic (in debug builds) if any position lies outside the index
    /// space.
    pub fn route_batch(&self, coords: &[(u32, u32)], out: &mut AddressBatch) {
        match &self.router {
            Router::LinearSplice {
                interleaver,
                decoder,
            } => {
                let channels = u64::from(self.topology.channels);
                let mut linear = [0u64; BATCH_CHUNK];
                let mut channel = [0u32; BATCH_CHUNK];
                for chunk in coords.chunks(BATCH_CHUNK) {
                    let staged = &mut linear[..chunk.len()];
                    for (slot, &(i, j)) in staged.iter_mut().zip(chunk) {
                        *slot = interleaver.write_rank(i, j);
                    }
                    if channels > 1 {
                        for (lane, slot) in channel.iter_mut().zip(staged.iter_mut()) {
                            *lane = (*slot % channels) as u32;
                            *slot /= channels;
                        }
                    }
                    out.append_with(chunk.len(), |lanes| {
                        if channels > 1 {
                            lanes.channel.copy_from_slice(&channel[..chunk.len()]);
                        }
                        decoder.decode_slice(staged, lanes);
                    });
                }
            }
            Router::TileRotate {
                inner,
                tile,
                shifts,
                order,
            } => {
                let channels = self.topology.channels;
                let lanes_total = channels * self.topology.ranks;
                let mut inner_coords = [(0u32, 0u32); BATCH_CHUNK];
                let mut lane = [0u32; BATCH_CHUNK];
                let mut scratch = AddressBatch::with_capacity(coords.len().min(BATCH_CHUNK));
                for chunk in coords.chunks(BATCH_CHUNK) {
                    let staged = &mut inner_coords[..chunk.len()];
                    let lanes_staged = &mut lane[..chunk.len()];
                    match shifts {
                        Some(s) => {
                            for ((slot, lane_slot), &(i, j)) in
                                staged.iter_mut().zip(lanes_staged.iter_mut()).zip(chunk)
                            {
                                *lane_slot = order.lane_shift(i, j, s.tile, lanes_total - 1);
                                let j_inner = if order.compacts() {
                                    ((j >> (s.tile + s.channels)) << s.tile) | (j & (tile - 1))
                                } else {
                                    j
                                };
                                *slot = (i, j_inner);
                            }
                        }
                        None => {
                            for ((slot, lane_slot), &(i, j)) in
                                staged.iter_mut().zip(lanes_staged.iter_mut()).zip(chunk)
                            {
                                *lane_slot = order.lane_generic(i, j, *tile, lanes_total);
                                let j_inner = if order.compacts() {
                                    (j / (tile * channels)) * tile + j % tile
                                } else {
                                    j
                                };
                                *slot = (i, j_inner);
                            }
                        }
                    }
                    scratch.clear();
                    inner.map_batch(staged, &mut scratch);
                    out.append_with(chunk.len(), |lanes| {
                        lanes.bank_group.copy_from_slice(scratch.bank_groups());
                        lanes.bank.copy_from_slice(scratch.banks());
                        lanes.row.copy_from_slice(scratch.rows());
                        lanes.column.copy_from_slice(scratch.columns());
                        for (slot, &l) in lanes.channel.iter_mut().zip(lanes_staged.iter()) {
                            *slot = l % channels;
                        }
                        for (slot, &l) in lanes.rank.iter_mut().zip(lanes_staged.iter()) {
                            *slot = l / channels;
                        }
                    });
                }
            }
            Router::Permuted { mapping } => mapping.route_batch(coords, out),
        }
    }
}

/// Stripe-tile edge: [`STRIPE_TILE`] for large index spaces, shrunk (to at
/// least 16) when the index space is too small to give every (channel,
/// rank) lane a few tiles per line.
fn stripe_tile(n: u32, lanes: u32) -> u32 {
    let mut tile = STRIPE_TILE;
    while tile > 16 && n / tile < 2 * lanes {
        tile /= 2;
    }
    tile
}

/// Streams the requests of one access phase that route to one channel, in
/// phase order — the per-channel front-end FIFO of a channel-interleaved
/// interleaver buffer.
///
/// Each channel's iterator walks the full index space and keeps only its
/// own positions, so a phase costs `O(channels × positions)` routing calls
/// in total.  That factor is deliberate: it keeps every channel's stream
/// independently pull-driven (O(1) memory, per-channel back-pressure, no
/// cross-channel buffering), and a `route` call is a handful of shifts —
/// cheap next to the per-request controller work it feeds.
///
/// Produced by [`ChannelTraceGenerator::channel_requests`].
pub struct ChannelTrace<'a> {
    mapping: &'a ChannelMapping,
    phase: crate::trace::AccessPhase,
    channel: u32,
    n: u32,
    outer: u32,
    inner: u32,
    remaining: u64,
    /// Scratch SoA buffer for [`ChannelTrace::fill_batch`] (reused across
    /// calls; empty until the batched path is used).
    scratch: AddressBatch,
}

impl ChannelTrace<'_> {
    /// Appends at least `max` of this channel's remaining `phase` requests
    /// to `out` (fewer when the trace ends first; possibly a few more, up to
    /// the batch-chunk granularity) and returns how many were appended.
    ///
    /// Positions are routed in [`ChannelMapping::route_batch`] slices and
    /// filtered by the batch's channel lane, so the per-position mapping
    /// cost is the batched kernel's instead of a scalar `route` call.  The
    /// appended sequence is exactly the iterator's — mixing `next` and
    /// `fill_batch` calls is allowed and never reorders or drops requests.
    ///
    /// Returns `0` if and only if the trace is exhausted.
    pub fn fill_batch(&mut self, out: &mut Vec<Request>, max: usize) -> usize {
        use crate::trace::AccessPhase;
        let before = out.len();
        let mut coords = [(0u32, 0u32); BATCH_CHUNK];
        while out.len() - before < max && self.remaining > 0 {
            let take = self.remaining.min(BATCH_CHUNK as u64) as usize;
            for slot in coords.iter_mut().take(take) {
                *slot = match self.phase {
                    AccessPhase::Write => (self.outer, self.inner),
                    AccessPhase::Read => (self.inner, self.outer),
                };
                self.inner += 1;
                if self.inner >= self.n - self.outer {
                    self.inner = 0;
                    self.outer += 1;
                }
            }
            self.remaining -= take as u64;
            self.scratch.clear();
            self.mapping.route_batch(&coords[..take], &mut self.scratch);
            for (index, &channel) in self.scratch.channels().iter().enumerate() {
                if channel != self.channel {
                    continue;
                }
                let address = self.scratch.address(index);
                out.push(match self.phase {
                    AccessPhase::Write => Request::write(address),
                    AccessPhase::Read => Request::read(address),
                });
            }
        }
        out.len() - before
    }
}

impl RequestSource for ChannelTrace<'_> {
    fn fill(&mut self, out: &mut Vec<Request>, max: usize) -> usize {
        self.fill_batch(out, max)
    }
}

impl Iterator for ChannelTrace<'_> {
    type Item = tbi_dram::Request;

    fn next(&mut self) -> Option<tbi_dram::Request> {
        use crate::trace::AccessPhase;
        while self.remaining > 0 {
            self.remaining -= 1;
            let (i, j) = match self.phase {
                AccessPhase::Write => (self.outer, self.inner),
                AccessPhase::Read => (self.inner, self.outer),
            };
            self.inner += 1;
            if self.inner >= self.n - self.outer {
                self.inner = 0;
                self.outer += 1;
            }
            let (channel, address) = self.mapping.route(i, j);
            if channel != self.channel {
                continue;
            }
            return Some(match self.phase {
                AccessPhase::Write => tbi_dram::Request::write(address),
                AccessPhase::Read => tbi_dram::Request::read(address),
            });
        }
        None
    }
}

impl std::iter::FusedIterator for ChannelTrace<'_> {}

/// Generates per-channel request streams for a [`ChannelMapping`].
///
/// # Examples
///
/// ```
/// use tbi_dram::{ChannelTopology, DramConfig, DramStandard};
/// use tbi_interleaver::mapping::{ChannelMapping, ChannelTraceGenerator};
/// use tbi_interleaver::{AccessPhase, MappingKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 3200)?
///     .with_topology(ChannelTopology::new(2, 1));
/// let mapping = ChannelMapping::new(MappingKind::Optimized, &config, 512)?;
/// let generator = ChannelTraceGenerator::new(&mapping);
/// let total: usize = (0..2)
///     .map(|c| generator.channel_requests(AccessPhase::Write, c).count())
///     .sum();
/// assert_eq!(total as u64, 512 * 513 / 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy)]
pub struct ChannelTraceGenerator<'a> {
    mapping: &'a ChannelMapping,
    len: u64,
}

impl<'a> ChannelTraceGenerator<'a> {
    /// Creates a generator for `mapping`'s triangular index space.
    #[must_use]
    pub fn new(mapping: &'a ChannelMapping) -> Self {
        let n = u64::from(mapping.dimension());
        Self {
            mapping,
            len: n * (n + 1) / 2,
        }
    }

    /// The stream of `phase` requests routed to `channel`, in phase order.
    #[must_use]
    pub fn channel_requests(
        &self,
        phase: crate::trace::AccessPhase,
        channel: u32,
    ) -> ChannelTrace<'a> {
        ChannelTrace {
            mapping: self.mapping,
            phase,
            channel,
            n: self.mapping.dimension(),
            outer: 0,
            inner: 0,
            remaining: self.len,
            scratch: AddressBatch::new(),
        }
    }

    /// Total number of requests per phase across all channels.
    #[must_use]
    pub fn requests_per_phase(&self) -> u64 {
        self.len
    }
}

/// Builds a [`ChannelMapping`] sized for `spec` on `config`.
///
/// # Errors
///
/// Returns [`InterleaverError`] if the index space does not fit the
/// subsystem.
pub fn channel_mapping_for_spec(
    kind: MappingKind,
    config: &DramConfig,
    spec: &InterleaverSpec,
) -> Result<ChannelMapping, InterleaverError> {
    ChannelMapping::new(kind, config, spec.dimension())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AccessPhase;
    use std::collections::{HashMap, HashSet};
    use tbi_dram::DramStandard;

    fn config(channels: u32, ranks: u32) -> DramConfig {
        DramConfig::preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .with_topology(ChannelTopology::new(channels, ranks))
    }

    #[test]
    fn single_topology_reproduces_the_plain_mapping() {
        let cfg = config(1, 1);
        let n = 300;
        for kind in MappingKind::ALL {
            let channel_mapping = ChannelMapping::new(kind, &cfg, n).unwrap();
            let plain = kind.build(&cfg, n).unwrap();
            for i in 0..n {
                for j in 0..(n - i) {
                    let (channel, address) = channel_mapping.route(i, j);
                    assert_eq!(channel, 0, "{kind} ({i},{j})");
                    assert_eq!(address, plain.map(i, j), "{kind} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn routing_is_injective_per_channel_and_covers_all_channels() {
        let n = 400u32;
        for (channels, ranks) in [(2, 1), (4, 1), (2, 2), (1, 2)] {
            let cfg = config(channels, ranks);
            for kind in MappingKind::ALL {
                let mapping = ChannelMapping::new(kind, &cfg, n).unwrap();
                let mut seen: HashSet<(u32, PhysicalAddress)> = HashSet::new();
                let mut per_channel: HashMap<u32, u64> = HashMap::new();
                for i in 0..n {
                    for j in 0..(n - i) {
                        let (channel, address) = mapping.route(i, j);
                        assert!(channel < channels, "{kind} channel {channel}");
                        assert!(
                            address.is_valid_for_ranks(&cfg.geometry, ranks),
                            "{kind} invalid address {address} at ({i},{j})"
                        );
                        assert!(
                            seen.insert((channel, address)),
                            "{kind} collision at ({i},{j}) on channel {channel}: {address}"
                        );
                        *per_channel.entry(channel).or_default() += 1;
                    }
                }
                let total: u64 = per_channel.values().sum();
                assert_eq!(total, u64::from(n) * u64::from(n + 1) / 2);
                let max = *per_channel.values().max().unwrap();
                let min = per_channel.values().copied().min().unwrap_or(0);
                assert_eq!(
                    per_channel.len() as u32,
                    channels,
                    "{kind} must use every channel"
                );
                assert!(
                    max < 2 * min.max(1),
                    "{kind} {channels}x{ranks} imbalanced: min {min}, max {max}"
                );
            }
        }
    }

    #[test]
    fn shift_mask_route_matches_generic_divide_chain() {
        let n = 500u32;
        for (channels, ranks) in [(2, 1), (4, 2), (8, 1)] {
            let cfg = config(channels, ranks);
            let fast = ChannelMapping::new(MappingKind::Optimized, &cfg, n).unwrap();
            let mut generic = ChannelMapping::new(MappingKind::Optimized, &cfg, n).unwrap();
            match &mut generic.router {
                Router::TileRotate { shifts, .. } => *shifts = None,
                _ => panic!("optimized takes the tile router"),
            }
            for i in (0..n).step_by(3) {
                for j in 0..(n - i) {
                    assert_eq!(
                        fast.route(i, j),
                        generic.route(i, j),
                        "({i},{j}) {channels}x{ranks}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_rank_row_major_uses_every_rank() {
        let cfg = config(1, 2);
        let mapping = ChannelMapping::new(MappingKind::RowMajor, &cfg, 200).unwrap();
        let ranks: HashSet<u32> = (0..200)
            .flat_map(|i| (0..(200 - i)).map(move |j| (i, j)))
            .map(|(i, j)| mapping.route(i, j).1.rank)
            .collect();
        assert_eq!(ranks, HashSet::from([0, 1]));
    }

    #[test]
    fn row_major_capacity_scales_with_channels_and_ranks() {
        // A size that overflows one channel must fit once channels/ranks
        // multiply the capacity (row-major stores positions compactly).
        let mut small = config(1, 1);
        small.geometry.rows = 1 << 6;
        let n = 600u32; // ~180k positions; one channel holds 128k bursts.
        assert!(matches!(
            ChannelMapping::new(MappingKind::RowMajor, &small, n),
            Err(InterleaverError::CapacityExceeded { .. })
        ));
        let mut scaled = small.clone();
        scaled.topology = ChannelTopology::new(2, 1);
        assert!(ChannelMapping::new(MappingKind::RowMajor, &scaled, n).is_ok());
    }

    #[test]
    fn both_phases_rotate_channels_within_a_few_tiles() {
        let cfg = config(2, 1);
        let mapping = ChannelMapping::new(MappingKind::Optimized, &cfg, 1024).unwrap();
        // Along a row and along a column, a window of 2 stripe tiles must
        // touch both channels.
        let row_channels: HashSet<u32> = (0..256).map(|j| mapping.route(0, j).0).collect();
        let col_channels: HashSet<u32> = (0..256).map(|i| mapping.route(i, 0).0).collect();
        assert_eq!(row_channels.len(), 2);
        assert_eq!(col_channels.len(), 2);
    }

    #[test]
    fn channel_traces_partition_the_phase_trace() {
        let cfg = config(2, 2);
        let mapping = ChannelMapping::new(MappingKind::Optimized, &cfg, 96).unwrap();
        let generator = ChannelTraceGenerator::new(&mapping);
        for phase in AccessPhase::ALL {
            // Channels are separate address spaces, so uniqueness holds per
            // (channel, address) pair — not across channels.
            let mut union: Vec<(u32, tbi_dram::PhysicalAddress)> = Vec::new();
            for channel in 0..2 {
                union.extend(
                    generator
                        .channel_requests(phase, channel)
                        .map(move |r| (channel, r.address)),
                );
            }
            assert_eq!(union.len() as u64, generator.requests_per_phase());
            let distinct: HashSet<_> = union.iter().collect();
            assert_eq!(distinct.len(), union.len(), "{phase}: duplicate addresses");
        }
    }

    #[test]
    fn route_batch_matches_scalar_route_for_every_router() {
        let n = 200u32;
        // Permutations with channel bits exercise the Permuted router's
        // batched path; ALL covers LinearSplice and TileRotate.
        for (channels, ranks) in [(1, 1), (2, 1), (2, 2), (3, 1)] {
            let cfg = config(channels, ranks);
            let mut kinds: Vec<MappingKind> = MappingKind::ALL.to_vec();
            // Permutations need pow2 channel counts; skip them on 3x1.
            if let Ok(permutation) =
                tbi_dram::BitPermutation::for_scheme(cfg.decode_scheme, &cfg.geometry, cfg.topology)
            {
                kinds.push(MappingKind::Permutation(permutation));
            }
            for kind in kinds {
                let mapping = match ChannelMapping::new(kind, &cfg, n) {
                    Ok(mapping) => mapping,
                    // Permutations need pow2 channel counts; skip 3x1 there.
                    Err(_) => continue,
                };
                let coords: Vec<(u32, u32)> = (0..n)
                    .flat_map(|i| (0..(n - i)).map(move |j| (i, j)))
                    .collect();
                let mut batch = tbi_dram::AddressBatch::new();
                mapping.route_batch(&coords, &mut batch);
                assert_eq!(batch.len(), coords.len());
                for (index, &(i, j)) in coords.iter().enumerate() {
                    assert_eq!(
                        batch.get(index),
                        mapping.route(i, j),
                        "{kind} {channels}x{ranks} at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn channel_trace_fill_batch_matches_the_iterator() {
        let cfg = config(2, 2);
        for kind in [MappingKind::RowMajor, MappingKind::Optimized] {
            let mapping = ChannelMapping::new(kind, &cfg, 96).unwrap();
            let generator = ChannelTraceGenerator::new(&mapping);
            for phase in AccessPhase::ALL {
                for channel in 0..2 {
                    let scalar: Vec<_> = generator.channel_requests(phase, channel).collect();
                    let mut trace = generator.channel_requests(phase, channel);
                    let mut batched = Vec::new();
                    while trace.fill_batch(&mut batched, 100) > 0 {}
                    assert_eq!(batched, scalar, "{kind} {phase} channel {channel}");
                }
            }
        }
    }

    #[test]
    fn stripe_tile_shrinks_for_small_index_spaces() {
        assert_eq!(stripe_tile(5000, 2), 128);
        assert_eq!(stripe_tile(200, 4), 16);
        assert!(stripe_tile(40, 8) >= 16);
    }
}
