//! Single-optimization mapping schemes, used for Fig. 1a/1b and ablations.

use tbi_dram::{DeviceGeometry, PhysicalAddress};

use crate::mapping::DramMapping;
use crate::InterleaverError;

pub(crate) fn split_bank(flat_bank: u32, geometry: &DeviceGeometry) -> (u32, u32) {
    // The paper presumes the lower bank-address bits denote the bank group so
    // that incrementing the flat bank index switches bank groups first.
    (
        flat_bank % geometry.bank_groups,
        flat_bank / geometry.bank_groups,
    )
}

/// Optimization 1 only: the bank index advances by one with every access in
/// both traversal directions (the diagonal pattern of Fig. 1a), while the
/// per-bank placement remains a simple linear fill.
///
/// This removes the bank-group penalty (`t_ccd_l`) but does nothing about
/// page misses, so the read phase still suffers on devices with slow row
/// cycles.
#[derive(Debug, Clone)]
pub struct BankRoundRobinMapping {
    geometry: DeviceGeometry,
    n: u32,
    padded_width: u64,
}

impl BankRoundRobinMapping {
    /// Creates the mapping for an index space of dimension `n`.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if `n` is zero or the (padded) index
    /// space exceeds the device capacity.
    pub fn new(geometry: DeviceGeometry, n: u32) -> Result<Self, InterleaverError> {
        if n == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: "mapping dimension must be non-zero".to_string(),
            });
        }
        let banks = u64::from(geometry.total_banks());
        let padded_width = u64::from(n).div_ceil(banks) * banks;
        let required = padded_width * u64::from(n);
        if required > geometry.total_bursts() {
            return Err(InterleaverError::CapacityExceeded {
                required_bursts: required,
                available_bursts: geometry.total_bursts(),
            });
        }
        Ok(Self {
            geometry,
            n,
            padded_width,
        })
    }
}

impl DramMapping for BankRoundRobinMapping {
    fn map(&self, i: u32, j: u32) -> PhysicalAddress {
        debug_assert!(i < self.n && j < self.n, "({i},{j}) outside index space");
        let banks = u64::from(self.geometry.total_banks());
        let flat_bank = (u64::from(i) + u64::from(j)) % banks;
        // Within the bank: positions of one index-space row with this bank are
        // spaced `banks` apart; pack them densely and stack rows using the
        // padded width so the per-bank index stays injective.
        let per_row = self.padded_width / banks;
        let within = u64::from(i) * per_row + u64::from(j) / banks;
        let column = within % u64::from(self.geometry.columns_per_row);
        let row = within / u64::from(self.geometry.columns_per_row);
        let (bank_group, bank) = split_bank(flat_bank as u32, &self.geometry);
        PhysicalAddress {
            rank: 0,
            bank_group,
            bank,
            row: (row % u64::from(self.geometry.rows)) as u32,
            column: column as u32,
        }
    }

    fn name(&self) -> &'static str {
        "bank-round-robin"
    }

    fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    fn dimension(&self) -> u32 {
        self.n
    }
}

/// Optimization 2 only: the index space is partitioned into rectangles that
/// each fill exactly one DRAM page (Fig. 1b); the bank only changes from tile
/// to tile (diagonally), not with every access.
///
/// Page misses are now split between both phases, but consecutive accesses
/// stay within one bank group for a whole tile row/column, so bank-group
/// devices remain limited by `t_ccd_l`.
#[derive(Debug, Clone)]
pub struct TiledMapping {
    geometry: DeviceGeometry,
    n: u32,
    tile_w: u32,
    tile_h: u32,
    tiles_per_row: u32,
}

impl TiledMapping {
    /// Creates the mapping for an index space of dimension `n`.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if `n` is zero or the tile grid exceeds
    /// the number of DRAM rows.
    pub fn new(geometry: DeviceGeometry, n: u32) -> Result<Self, InterleaverError> {
        if n == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: "mapping dimension must be non-zero".to_string(),
            });
        }
        // tile_w * tile_h = page capacity, as square as possible.
        let page = geometry.columns_per_row;
        let tile_h = 1u32 << (page.trailing_zeros() / 2);
        let tile_w = page / tile_h;
        let banks = geometry.total_banks();
        let tiles_per_row = n.div_ceil(tile_w).div_ceil(banks) * banks;
        let tile_rows = n.div_ceil(tile_h);
        // Each bank sees `tiles_per_row / banks` tiles per tile-row.
        let rows_needed = u64::from(tile_rows) * u64::from(tiles_per_row / banks);
        if rows_needed > u64::from(geometry.rows) {
            return Err(InterleaverError::CapacityExceeded {
                required_bursts: rows_needed * u64::from(page) * u64::from(banks),
                available_bursts: geometry.total_bursts(),
            });
        }
        Ok(Self {
            geometry,
            n,
            tile_w,
            tile_h,
            tiles_per_row,
        })
    }

    /// Width of one tile in index-space columns.
    #[must_use]
    pub fn tile_width(&self) -> u32 {
        self.tile_w
    }

    /// Height of one tile in index-space rows.
    #[must_use]
    pub fn tile_height(&self) -> u32 {
        self.tile_h
    }
}

impl DramMapping for TiledMapping {
    fn map(&self, i: u32, j: u32) -> PhysicalAddress {
        debug_assert!(i < self.n && j < self.n, "({i},{j}) outside index space");
        let banks = self.geometry.total_banks();
        let ti = i / self.tile_h;
        let tj = j / self.tile_w;
        let oi = i % self.tile_h;
        let oj = j % self.tile_w;
        let flat_bank = (ti + tj) % banks;
        // Tiles owned by the same bank within one tile-row have tj spaced by
        // `banks`, so tj / banks is a dense per-bank tile column index.
        let row = u64::from(ti) * u64::from(self.tiles_per_row / banks) + u64::from(tj / banks);
        let column = oi * self.tile_w + oj;
        let (bank_group, bank) = split_bank(flat_bank, &self.geometry);
        PhysicalAddress {
            rank: 0,
            bank_group,
            bank,
            row: (row % u64::from(self.geometry.rows)) as u32,
            column,
        }
    }

    fn name(&self) -> &'static str {
        "tiled"
    }

    fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    fn dimension(&self) -> u32 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tbi_dram::{DramConfig, DramStandard};

    fn geometry() -> DeviceGeometry {
        DramConfig::preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .geometry
    }

    #[test]
    fn round_robin_switches_bank_every_access_in_both_directions() {
        let m = BankRoundRobinMapping::new(geometry(), 256).unwrap();
        let g = geometry();
        for k in 0..32u32 {
            let along_row = m.map(5, k).flat_bank(&g);
            let along_row_next = m.map(5, k + 1).flat_bank(&g);
            assert_ne!(along_row, along_row_next);
            let along_col = m.map(k, 5).flat_bank(&g);
            let along_col_next = m.map(k + 1, 5).flat_bank(&g);
            assert_ne!(along_col, along_col_next);
        }
    }

    #[test]
    fn round_robin_uses_all_banks_equally() {
        let m = BankRoundRobinMapping::new(geometry(), 64).unwrap();
        let g = geometry();
        let mut counts = vec![0u32; g.total_banks() as usize];
        for j in 0..64 {
            counts[m.map(0, j).flat_bank(&g) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn tiled_keeps_a_tile_inside_one_page() {
        let m = TiledMapping::new(geometry(), 256).unwrap();
        let g = geometry();
        let first = m.map(0, 0);
        let mut columns = HashSet::new();
        for i in 0..m.tile_height() {
            for j in 0..m.tile_width() {
                let addr = m.map(i, j);
                assert_eq!(addr.flat_bank(&g), first.flat_bank(&g));
                assert_eq!(addr.row, first.row);
                assert!(columns.insert(addr.column));
            }
        }
        // The tile fills the page exactly.
        assert_eq!(columns.len() as u32, g.columns_per_row);
    }

    #[test]
    fn tiled_neighbouring_tiles_use_different_banks() {
        let m = TiledMapping::new(geometry(), 256).unwrap();
        let g = geometry();
        let here = m.map(0, 0).flat_bank(&g);
        let right = m.map(0, m.tile_width()).flat_bank(&g);
        let below = m.map(m.tile_height(), 0).flat_bank(&g);
        assert_ne!(here, right);
        assert_ne!(here, below);
    }

    #[test]
    fn zero_dimension_is_rejected() {
        assert!(BankRoundRobinMapping::new(geometry(), 0).is_err());
        assert!(TiledMapping::new(geometry(), 0).is_err());
    }

    #[test]
    fn oversized_index_space_is_rejected() {
        let mut g = geometry();
        g.rows = 64; // shrink the device
        assert!(TiledMapping::new(g, 100_000).is_err());
        assert!(BankRoundRobinMapping::new(g, 100_000).is_err());
    }
}
