//! The optimized mapping: bank round-robin + page tiling + bank-dependent
//! stagger (the paper's contribution, Fig. 1c/1d).
//!
//! The paper describes the three optimizations but deliberately omits the
//! closed-form mapping rules.  The reconstruction below satisfies all three
//! properties using only additions, shifts and modulo/bit operations (all
//! divisors are powers of two), so it is implementable in hardware with the
//! same low complexity the paper claims:
//!
//! 1. **Bank (group) round-robin** — the bank-group index is `(i + j) mod G`,
//!    so it advances by one with every access along a row *and* along a
//!    column.  Consecutive bursts therefore always target different bank
//!    groups and only the short `t_ccd_s` gap applies.  (The paper presumes
//!    the lower bank-address bits denote the bank group; incrementing the
//!    bank address per access is exactly a bank-group rotation.)
//! 2. **Page tiling** — the index space is partitioned into tiles of
//!    `tile_h x tile_w = G x page` positions.  Within a tile, the positions of
//!    one bank group form exactly one DRAM page, and the bank *within* the
//!    group is chosen per tile along the tile diagonal
//!    (`(tile_row + tile_col) mod banks_per_group`).  A row-wise sweep and a
//!    column-wise sweep each cross one tile boundary per `tile_w`
//!    (resp. `tile_h`) accesses, so page misses are split between the two
//!    phases and every activate is reused for many bursts in both directions.
//! 3. **Stagger** — before tiling, the coordinates are circularly shifted by
//!    a bank-group-dependent offset, so the tile boundaries (and hence the
//!    page misses) of different bank groups are reached at different times
//!    and a miss on one bank is masked by hits on the others.  Banks within a
//!    group are already staggered naturally because they own different tiles
//!    along the diagonal.

use tbi_dram::{DeviceGeometry, PhysicalAddress};

use crate::mapping::DramMapping;
use crate::InterleaverError;

/// The fully optimized interleaver-to-DRAM mapping (Fig. 1d of the paper).
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
/// use tbi_interleaver::mapping::{DramMapping, OptimizedMapping};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr5, 6400)?;
/// let mapping = OptimizedMapping::new(config.geometry, 4096)?;
///
/// // Consecutive accesses in both directions land in different bank groups.
/// let a = mapping.map(10, 10);
/// let right = mapping.map(10, 11);
/// let down = mapping.map(11, 10);
/// assert_ne!(a.bank_group, right.bank_group);
/// assert_ne!(a.bank_group, down.bank_group);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OptimizedMapping {
    geometry: DeviceGeometry,
    n: u32,
    tile_w: u32,
    tile_h: u32,
    padded_width: u32,
    padded_height: u32,
    tiles_per_row_padded: u32,
    stagger: bool,
    /// Shift/mask fast path for power-of-two geometries (all presets).  The
    /// mapping is evaluated once per simulated burst, so the divide chain in
    /// the generic path is hot enough to matter.
    shifts: Option<OptShifts>,
}

/// Precomputed log2 widths and strides for the power-of-two fast path.
#[derive(Debug, Clone, Copy)]
struct OptShifts {
    groups: u32,
    tile_w: u32,
    tile_h: u32,
    banks_per_group: u32,
    /// `tiles_per_row_padded / banks_per_group` (DRAM rows per tile-row).
    row_stride: u32,
    /// `tile_w / groups` (page columns per tile row).
    col_stride: u32,
}

impl OptimizedMapping {
    /// Creates the optimized mapping (all three optimizations) for an index
    /// space of dimension `n`.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if `n` is zero or the tile grid exceeds
    /// the number of DRAM rows of the device.
    pub fn new(geometry: DeviceGeometry, n: u32) -> Result<Self, InterleaverError> {
        Self::build(geometry, n, true)
    }

    /// Creates the mapping without the bank-group-dependent stagger
    /// (optimizations 1 + 2 only, Fig. 1c).  Used for ablation studies.
    ///
    /// # Errors
    ///
    /// See [`OptimizedMapping::new`].
    pub fn without_stagger(geometry: DeviceGeometry, n: u32) -> Result<Self, InterleaverError> {
        Self::build(geometry, n, false)
    }

    fn build(geometry: DeviceGeometry, n: u32, stagger: bool) -> Result<Self, InterleaverError> {
        if n == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: "mapping dimension must be non-zero".to_string(),
            });
        }
        let groups = geometry.bank_groups;
        let banks_per_group = geometry.banks_per_group;
        let page = geometry.columns_per_row;
        // tile_h * tile_w = groups * page, both powers of two, as square as
        // possible.  The extra factor (for non-square areas) goes to the tile
        // height because the column-wise read phase has the tighter
        // activate budget.
        let area = groups * page;
        let area_log2 = area.trailing_zeros();
        let mut tile_w = 1u32 << (area_log2 / 2);
        let mut tile_h = area / tile_w;
        if tile_w < groups {
            // Keep the injectivity invariant `tile_w % groups == 0` for
            // geometries whose page is smaller than the bank-group count.
            tile_w = groups;
            tile_h = page;
        }
        debug_assert_eq!(tile_w * tile_h, area);
        debug_assert_eq!(
            tile_w % groups,
            0,
            "tile width must be a multiple of the bank-group count"
        );

        let padded_width = n.div_ceil(tile_w) * tile_w;
        let padded_height = n.div_ceil(tile_h) * tile_h;
        let tiles_per_row_padded =
            (padded_width / tile_w).div_ceil(banks_per_group) * banks_per_group;
        let tile_rows = padded_height / tile_h;
        let rows_needed = u64::from(tile_rows) * u64::from(tiles_per_row_padded / banks_per_group);
        if rows_needed > u64::from(geometry.rows) {
            return Err(InterleaverError::CapacityExceeded {
                required_bursts: rows_needed * u64::from(page) * u64::from(geometry.total_banks()),
                available_bursts: geometry.total_bursts(),
            });
        }
        let all_pow2 = groups.is_power_of_two()
            && banks_per_group.is_power_of_two()
            && tile_w.is_power_of_two()
            && tile_h.is_power_of_two()
            && tile_w >= groups
            && tile_h >= groups;
        let shifts = all_pow2.then(|| OptShifts {
            groups: groups.trailing_zeros(),
            tile_w: tile_w.trailing_zeros(),
            tile_h: tile_h.trailing_zeros(),
            banks_per_group: banks_per_group.trailing_zeros(),
            row_stride: tiles_per_row_padded / banks_per_group,
            col_stride: tile_w / groups,
        });
        Ok(Self {
            geometry,
            n,
            tile_w,
            tile_h,
            padded_width,
            padded_height,
            tiles_per_row_padded,
            stagger,
            shifts,
        })
    }

    /// Width of one tile in index-space columns.
    #[must_use]
    pub fn tile_width(&self) -> u32 {
        self.tile_w
    }

    /// Height of one tile in index-space rows.
    #[must_use]
    pub fn tile_height(&self) -> u32 {
        self.tile_h
    }

    /// Whether the bank-group-dependent stagger (optimization 3) is enabled.
    #[must_use]
    pub fn stagger_enabled(&self) -> bool {
        self.stagger
    }

    /// The circular `(row, column)` offset applied for bank group `group`.
    #[must_use]
    pub fn stagger_offset(&self, group: u32) -> (u32, u32) {
        if !self.stagger {
            return (0, 0);
        }
        let groups = self.geometry.bank_groups;
        (
            group * (self.tile_h / groups),
            group * (self.tile_w / groups),
        )
    }

    /// The bank group serving position `(i, j)`.
    #[must_use]
    pub fn bank_group_of(&self, i: u32, j: u32) -> u32 {
        (i + j) % self.geometry.bank_groups
    }
}

impl DramMapping for OptimizedMapping {
    fn map(&self, i: u32, j: u32) -> PhysicalAddress {
        debug_assert!(i < self.n && j < self.n, "({i},{j}) outside index space");
        if let Some(s) = self.shifts {
            // Shift/mask fast path (all divisors are powers of two for the
            // preset geometries; the stagger wrap needs at most one
            // subtraction because `i < padded_height` and the offset is
            // below one tile height).
            let group = (i + j) & ((1 << s.groups) - 1);
            let (off_i, off_j) = if self.stagger {
                (
                    group << (s.tile_h - s.groups),
                    group << (s.tile_w - s.groups),
                )
            } else {
                (0, 0)
            };
            let mut i_shifted = i + off_i;
            if i_shifted >= self.padded_height {
                i_shifted -= self.padded_height;
            }
            let mut j_shifted = j + off_j;
            if j_shifted >= self.padded_width {
                j_shifted -= self.padded_width;
            }
            let ti = i_shifted >> s.tile_h;
            let tj = j_shifted >> s.tile_w;
            let oi = i_shifted & ((1 << s.tile_h) - 1);
            let oj = j_shifted & ((1 << s.tile_w) - 1);
            let bank = (ti + tj) & ((1 << s.banks_per_group) - 1);
            let row = ti * s.row_stride + (tj >> s.banks_per_group);
            let column = oi * s.col_stride + (oj >> s.groups);
            return PhysicalAddress {
                rank: 0,
                bank_group: group,
                bank,
                row,
                column,
            };
        }
        let groups = self.geometry.bank_groups;
        let banks_per_group = self.geometry.banks_per_group;

        // Optimization 1: the bank group rotates with every access in both
        // directions.
        let group = self.bank_group_of(i, j);

        // Optimization 3: bank-group-dependent circular shift so that tile
        // boundaries of different groups are crossed at different times.
        let (off_i, off_j) = self.stagger_offset(group);
        let i_shifted = (i + off_i) % self.padded_height;
        let j_shifted = (j + off_j) % self.padded_width;

        // Optimization 2: tiles of `groups * page` positions; the positions of
        // one bank group inside a tile fill exactly one DRAM page.
        let ti = i_shifted / self.tile_h;
        let tj = j_shifted / self.tile_w;
        let oi = i_shifted % self.tile_h;
        let oj = j_shifted % self.tile_w;

        // The bank inside the group follows the tile diagonal, so neighbouring
        // tiles (in either direction) use different banks and their activates
        // overlap with transfers on the other banks.
        let bank = (ti + tj) % banks_per_group;

        // Tiles owned by the same (group, bank) within one tile-row have `tj`
        // spaced by `banks_per_group`; packing them densely yields the row.
        let row = ti * (self.tiles_per_row_padded / banks_per_group) + tj / banks_per_group;

        // Within the tile the positions of `group` lie on one residue class of
        // `oj`; packing them densely yields the column.
        let column = oi * (self.tile_w / groups) + oj / groups;

        PhysicalAddress {
            rank: 0,
            bank_group: group,
            bank,
            row,
            column,
        }
    }

    fn name(&self) -> &'static str {
        if self.stagger {
            "optimized"
        } else {
            "optimized-no-stagger"
        }
    }

    fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    fn dimension(&self) -> u32 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_mask_fast_path_matches_generic_arithmetic() {
        // Force the generic divide chain on an otherwise identical mapping
        // and compare every position of a moderately sized index space, with
        // and without the stagger.
        for standard_rate in [
            (tbi_dram::DramStandard::Ddr3, 800),
            (tbi_dram::DramStandard::Ddr4, 3200),
            (tbi_dram::DramStandard::Ddr5, 6400),
            (tbi_dram::DramStandard::Lpddr4, 4266),
            (tbi_dram::DramStandard::Lpddr5, 8533),
        ] {
            let geometry = tbi_dram::DramConfig::preset(standard_rate.0, standard_rate.1)
                .unwrap()
                .geometry;
            for stagger in [true, false] {
                let fast = OptimizedMapping::build(geometry, 300, stagger).unwrap();
                assert!(fast.shifts.is_some(), "presets must take the fast path");
                let mut generic = fast.clone();
                generic.shifts = None;
                for i in 0..300 {
                    for j in 0..300 {
                        assert_eq!(
                            fast.map(i, j),
                            generic.map(i, j),
                            "({i},{j}) stagger={stagger} {standard_rate:?}"
                        );
                    }
                }
            }
        }
    }
    use std::collections::HashSet;
    use tbi_dram::{DramConfig, DramStandard};

    fn geometry(standard: DramStandard, rate: u32) -> DeviceGeometry {
        DramConfig::preset(standard, rate).unwrap().geometry
    }

    fn ddr4() -> DeviceGeometry {
        geometry(DramStandard::Ddr4, 3200)
    }

    #[test]
    fn tile_area_is_groups_times_page() {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            let g = geometry(*standard, *rate);
            let m = OptimizedMapping::new(g, 1024).unwrap();
            assert_eq!(
                m.tile_width() * m.tile_height(),
                g.bank_groups * g.columns_per_row,
                "{standard:?}-{rate}"
            );
            assert_eq!(m.tile_width() % g.bank_groups, 0);
        }
    }

    #[test]
    fn bank_group_advances_every_access_in_both_directions() {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            let g = geometry(*standard, *rate);
            if g.bank_groups == 1 {
                continue;
            }
            let m = OptimizedMapping::new(g, 512).unwrap();
            for k in 0..100u32 {
                let here = m.map(7, k).bank_group;
                let right = m.map(7, k + 1).bank_group;
                assert_eq!((here + 1) % g.bank_groups, right, "{standard:?}-{rate}");
                let down_here = m.map(k, 7).bank_group;
                let down_next = m.map(k + 1, 7).bank_group;
                assert_eq!(
                    (down_here + 1) % g.bank_groups,
                    down_next,
                    "{standard:?}-{rate}"
                );
            }
        }
    }

    #[test]
    fn consecutive_accesses_change_bank_group() {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            let g = geometry(*standard, *rate);
            if g.bank_groups == 1 {
                continue;
            }
            let m = OptimizedMapping::new(g, 512).unwrap();
            for k in 0..64u32 {
                assert_ne!(
                    m.map(3, k).bank_group,
                    m.map(3, k + 1).bank_group,
                    "{standard:?}-{rate} row direction"
                );
                assert_ne!(
                    m.map(k, 3).bank_group,
                    m.map(k + 1, 3).bank_group,
                    "{standard:?}-{rate} column direction"
                );
            }
        }
    }

    #[test]
    fn row_wise_sweep_reuses_one_page_per_bank_within_a_tile() {
        let g = ddr4();
        let m = OptimizedMapping::without_stagger(g, 512).unwrap();
        // Walk one index-space row across one tile; every flat bank touched
        // must stay within a single DRAM row (no page miss inside a tile).
        let mut rows_per_bank: Vec<HashSet<u32>> = vec![HashSet::new(); g.total_banks() as usize];
        for j in 0..m.tile_width() {
            let addr = m.map(0, j);
            rows_per_bank[addr.flat_bank(&g) as usize].insert(addr.row);
        }
        for (bank, rows) in rows_per_bank.iter().enumerate() {
            assert!(rows.len() <= 1, "bank {bank} touched {} rows", rows.len());
        }
    }

    #[test]
    fn column_wise_sweep_reuses_one_page_per_bank_within_a_tile() {
        let g = ddr4();
        let m = OptimizedMapping::without_stagger(g, 512).unwrap();
        let mut rows_per_bank: Vec<HashSet<u32>> = vec![HashSet::new(); g.total_banks() as usize];
        for i in 0..m.tile_height() {
            let addr = m.map(i, 0);
            rows_per_bank[addr.flat_bank(&g) as usize].insert(addr.row);
        }
        for (bank, rows) in rows_per_bank.iter().enumerate() {
            assert!(rows.len() <= 1, "bank {bank} touched {} rows", rows.len());
        }
    }

    #[test]
    fn each_group_page_is_filled_exactly_once_per_tile() {
        let g = ddr4();
        let m = OptimizedMapping::without_stagger(g, 512).unwrap();
        // Over a full tile, every bank group receives exactly `page` positions
        // with distinct columns, all in a single (bank, row) pair.
        let mut per_group: Vec<HashSet<(u32, u32, u32)>> =
            vec![HashSet::new(); g.bank_groups as usize];
        for i in 0..m.tile_height() {
            for j in 0..m.tile_width() {
                let addr = m.map(i, j);
                assert!(
                    per_group[addr.bank_group as usize].insert((addr.bank, addr.row, addr.column)),
                    "duplicate (bank, row, column) in group {}",
                    addr.bank_group
                );
            }
        }
        for (group, cells) in per_group.iter().enumerate() {
            assert_eq!(
                cells.len() as u32,
                g.columns_per_row,
                "group {group} page not filled exactly"
            );
            let banks_and_rows: HashSet<(u32, u32)> =
                cells.iter().map(|(b, r, _)| (*b, *r)).collect();
            assert_eq!(banks_and_rows.len(), 1, "group {group} spans several pages");
        }
    }

    #[test]
    fn activates_are_amortised_over_many_accesses_in_both_phases() {
        // Count page transitions per bank during full sweeps: every activate
        // must cover several accesses, otherwise the scheme cannot reach the
        // paper's >90 % utilization.
        let g = ddr4();
        let n = 512u32;
        let m = OptimizedMapping::new(g, n).unwrap();
        let count_transitions = |row_major: bool| -> (u64, u64) {
            let mut open_row: Vec<Option<(u32, u32)>> = vec![None; g.total_banks() as usize];
            let mut accesses = 0u64;
            let mut transitions = 0u64;
            for a in 0..n {
                for b in 0..(n - a) {
                    let (i, j) = if row_major { (a, b) } else { (b, a) };
                    let addr = m.map(i, j);
                    let bank = addr.flat_bank(&g) as usize;
                    accesses += 1;
                    if open_row[bank] != Some((addr.row, 0)) {
                        transitions += 1;
                        open_row[bank] = Some((addr.row, 0));
                    }
                }
            }
            (accesses, transitions)
        };
        for phase_row_major in [true, false] {
            let (accesses, transitions) = count_transitions(phase_row_major);
            assert!(
                accesses >= transitions * 3,
                "each activate must cover at least 3 accesses (row-major sweep: {phase_row_major}), got {accesses} accesses / {transitions} transitions"
            );
        }
    }

    #[test]
    fn stagger_spreads_page_misses_over_time() {
        let g = ddr4();
        let n = 2048u32;
        let staggered = OptimizedMapping::new(g, n).unwrap();
        let plain = OptimizedMapping::without_stagger(g, n).unwrap();
        assert!(staggered.stagger_enabled());
        assert!(!plain.stagger_enabled());

        // Walk one index-space row and record the positions j at which any
        // bank changes its open row (page-miss points).  Measure the largest
        // number of misses that fall into a window of `groups` consecutive
        // accesses: without stagger, all bank groups miss at the same tile
        // boundary; with stagger they are spread out.
        let miss_positions = |m: &OptimizedMapping| -> Vec<u32> {
            let mut open_row: Vec<Option<u32>> = vec![None; g.total_banks() as usize];
            let mut misses = Vec::new();
            for j in 0..n {
                let addr = m.map(0, j);
                let bank = addr.flat_bank(&g) as usize;
                if let Some(prev) = open_row[bank] {
                    if prev != addr.row {
                        misses.push(j);
                    }
                }
                open_row[bank] = Some(addr.row);
            }
            misses
        };
        let cluster = |misses: &[u32], window: u32| -> usize {
            misses
                .iter()
                .map(|&j| misses.iter().filter(|&&k| k >= j && k < j + window).count())
                .max()
                .unwrap_or(0)
        };
        let plain_cluster = cluster(&miss_positions(&plain), g.bank_groups);
        let staggered_cluster = cluster(&miss_positions(&staggered), g.bank_groups);
        assert!(
            staggered_cluster < plain_cluster,
            "stagger should spread misses: {staggered_cluster} vs {plain_cluster}"
        );
    }

    #[test]
    fn without_stagger_offsets_are_zero() {
        let m = OptimizedMapping::without_stagger(ddr4(), 128).unwrap();
        for group in 0..4 {
            assert_eq!(m.stagger_offset(group), (0, 0));
        }
        let m = OptimizedMapping::new(ddr4(), 128).unwrap();
        assert_ne!(m.stagger_offset(1), (0, 0));
        assert_eq!(m.stagger_offset(0), (0, 0));
    }

    #[test]
    fn names_distinguish_stagger() {
        assert_eq!(
            OptimizedMapping::new(ddr4(), 64).unwrap().name(),
            "optimized"
        );
        assert_eq!(
            OptimizedMapping::without_stagger(ddr4(), 64)
                .unwrap()
                .name(),
            "optimized-no-stagger"
        );
    }

    #[test]
    fn rejects_zero_and_oversized_dimensions() {
        assert!(OptimizedMapping::new(ddr4(), 0).is_err());
        let mut tiny = ddr4();
        tiny.rows = 16;
        assert!(matches!(
            OptimizedMapping::new(tiny, 100_000),
            Err(InterleaverError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn paper_sized_interleaver_fits_all_presets() {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            let g = geometry(*standard, *rate);
            let m = OptimizedMapping::new(g, 5000);
            assert!(
                m.is_ok(),
                "12.5M-element interleaver must fit {standard:?}-{rate}"
            );
        }
    }
}
