//! Free-shape tiling: the optimized scheme's diagonal bank term over tiles
//! of **arbitrary** (not necessarily power-of-two) dimensions.
//!
//! The paper's optimized mapping ties the tile area to the page size, so
//! its tile edges are always powers of two and the round-trip page-miss
//! rate is pinned to `(2⁻ᵃ + 2⁻ᵇ) / 2` with `a + b = log₂(page)`.  For an
//! odd `log₂(page)` that split is forced to be lopsided — DDR3's 128-column
//! page yields 8 × 16 tiles and a 3/32 round-trip miss floor — even though
//! a *square* tile of the same page budget would do better.
//!
//! [`GeneralTiledMapping`] decouples the tile shape from the page size: any
//! `tile_h × tile_w` with `tile_h · tile_w ≤ page` is admissible, the tile
//! simply leaves the remaining page columns unused.  An 11 × 11 tile on a
//! 128-column page wastes 7 of 128 columns but cuts the round-trip miss
//! rate to `(1/11 + 1/11) / 2 = 1/11 < 3/32` — the capacity/locality trade
//! the bit-sliced (permutation or folded) families cannot express, because
//! 11 is not a power of two.  For even `log₂(page)` the best free tile is
//! the power-of-two square the optimized scheme already uses, and the two
//! schemes tie exactly (see `docs/MAPPING.md` for the ceiling argument).
//!
//! Everything else follows the optimized construction: the flat bank index
//! walks the tile diagonal (`(ti + tj) mod banks`, bank-group in the low
//! bits so consecutive tiles rotate groups first), and tiles of the same
//! bank pack densely into DRAM rows.

use tbi_dram::{DeviceGeometry, PhysicalAddress};

use crate::mapping::simple::split_bank;
use crate::mapping::DramMapping;
use crate::InterleaverError;

/// Diagonally banked tiling with a free `tile_h × tile_w` shape
/// (`tile_h · tile_w ≤ page`); each tile occupies the leading columns of
/// one DRAM page.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
/// use tbi_interleaver::mapping::{DramMapping, GeneralTiledMapping};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr3, 800)?;
/// // 11 x 11 = 121 of the 128 page columns: inexpressible with bit slices.
/// let mapping = GeneralTiledMapping::new(config.geometry, 4096, 11, 11)?;
///
/// // One tile = one page: every cell of the leading 11 x 11 tile shares
/// // one bank and one DRAM row (here the opposite tile corners).
/// let a = mapping.map(0, 0);
/// let b = mapping.map(10, 10);
/// assert_eq!((a.bank_group, a.bank, a.row), (b.bank_group, b.bank, b.row));
/// assert_ne!(a.column, b.column);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GeneralTiledMapping {
    geometry: DeviceGeometry,
    n: u32,
    tile_w: u32,
    tile_h: u32,
    /// Tiles per tile-row, padded up to a multiple of the flat bank count
    /// so every bank owns the same number of row slots.
    tiles_per_row_padded: u32,
}

impl GeneralTiledMapping {
    /// Creates the mapping for an index space of dimension `n` with tiles
    /// of `tile_h` index rows by `tile_w` index columns.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if `n` or a tile dimension is zero, the
    /// tile does not fit one DRAM page, or the tile grid exceeds the number
    /// of DRAM rows of the device.
    pub fn new(
        geometry: DeviceGeometry,
        n: u32,
        tile_h: u32,
        tile_w: u32,
    ) -> Result<Self, InterleaverError> {
        if n == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: "mapping dimension must be non-zero".to_string(),
            });
        }
        if tile_h == 0 || tile_w == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: format!("tile {tile_h}x{tile_w} must have non-zero edges"),
            });
        }
        let page = geometry.columns_per_row;
        if u64::from(tile_h) * u64::from(tile_w) > u64::from(page) {
            return Err(InterleaverError::InvalidDimension {
                reason: format!("tile {tile_h}x{tile_w} exceeds the {page}-column page"),
            });
        }
        let banks = geometry.total_banks();
        let tiles_per_row_padded = n.div_ceil(tile_w).div_ceil(banks) * banks;
        let tile_rows = n.div_ceil(tile_h);
        let rows_needed = u64::from(tile_rows) * u64::from(tiles_per_row_padded / banks);
        if rows_needed > u64::from(geometry.rows) {
            return Err(InterleaverError::CapacityExceeded {
                required_bursts: rows_needed * u64::from(page) * u64::from(banks),
                available_bursts: geometry.total_bursts(),
            });
        }
        Ok(Self {
            geometry,
            n,
            tile_w,
            tile_h,
            tiles_per_row_padded,
        })
    }

    /// Width of one tile in index-space columns.
    #[must_use]
    pub fn tile_width(&self) -> u32 {
        self.tile_w
    }

    /// Height of one tile in index-space rows.
    #[must_use]
    pub fn tile_height(&self) -> u32 {
        self.tile_h
    }
}

impl DramMapping for GeneralTiledMapping {
    fn map(&self, i: u32, j: u32) -> PhysicalAddress {
        debug_assert!(i < self.n && j < self.n, "({i},{j}) outside index space");
        let banks = self.geometry.total_banks();
        let ti = i / self.tile_h;
        let tj = j / self.tile_w;
        let oi = i % self.tile_h;
        let oj = j % self.tile_w;
        // The diagonal bank term of the optimized scheme: consecutive tiles
        // in either direction land on different banks (groups first).
        let flat_bank = (ti + tj) % banks;
        // Tiles owned by one bank within a tile-row have tj spaced by
        // `banks`; packing them densely yields the row.
        let row = ti * (self.tiles_per_row_padded / banks) + tj / banks;
        // The tile occupies the leading tile_h * tile_w columns of its
        // page; any remaining page columns stay unused (the capacity the
        // free shape trades for locality).
        let column = oi * self.tile_w + oj;
        let (bank_group, bank) = split_bank(flat_bank, &self.geometry);
        PhysicalAddress {
            rank: 0,
            bank_group,
            bank,
            row,
            column,
        }
    }

    fn name(&self) -> &'static str {
        "general-tiled"
    }

    fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    fn dimension(&self) -> u32 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tbi_dram::{DramConfig, DramStandard};

    fn geometry(standard: DramStandard, rate: u32) -> DeviceGeometry {
        DramConfig::preset(standard, rate).unwrap().geometry
    }

    fn ddr3() -> DeviceGeometry {
        geometry(DramStandard::Ddr3, 800)
    }

    #[test]
    fn maps_every_position_injectively() {
        for (tile_h, tile_w) in [(11, 11), (8, 16), (1, 128), (128, 1), (10, 12)] {
            let n = 300;
            let m = GeneralTiledMapping::new(ddr3(), n, tile_h, tile_w).unwrap();
            let mut seen = HashSet::new();
            for i in 0..n {
                for j in 0..n {
                    let a = m.map(i, j);
                    assert!(
                        seen.insert((a.bank_group, a.bank, a.row, a.column)),
                        "duplicate address for ({i},{j}) with tile {tile_h}x{tile_w}"
                    );
                    assert!(a.column < ddr3().columns_per_row);
                    assert!(a.row < ddr3().rows);
                }
            }
        }
    }

    #[test]
    fn one_tile_fills_one_page_prefix() {
        let m = GeneralTiledMapping::new(ddr3(), 300, 11, 11).unwrap();
        let mut cells = HashSet::new();
        let anchor = m.map(0, 0);
        for i in 0..11 {
            for j in 0..11 {
                let a = m.map(i, j);
                assert_eq!((a.bank_group, a.bank, a.row), {
                    (anchor.bank_group, anchor.bank, anchor.row)
                });
                cells.insert(a.column);
            }
        }
        // 121 distinct columns, all below the tile area (page prefix).
        assert_eq!(cells.len(), 121);
        assert!(cells.iter().all(|&c| c < 121));
    }

    #[test]
    fn bank_walks_the_tile_diagonal() {
        let m = GeneralTiledMapping::new(ddr3(), 300, 11, 11).unwrap();
        let banks = ddr3().total_banks();
        let flat = |i: u32, j: u32| {
            let a = m.map(i, j);
            a.bank * ddr3().bank_groups + a.bank_group
        };
        for t in 0..20u32 {
            assert_eq!(flat(0, t * 11), t % banks);
            assert_eq!(flat(t * 11, 0), t % banks);
        }
    }

    #[test]
    fn rejects_degenerate_and_oversized_tiles() {
        assert!(GeneralTiledMapping::new(ddr3(), 0, 11, 11).is_err());
        assert!(GeneralTiledMapping::new(ddr3(), 64, 0, 11).is_err());
        assert!(GeneralTiledMapping::new(ddr3(), 64, 11, 0).is_err());
        // 12 x 11 = 132 > 128 page columns.
        assert!(GeneralTiledMapping::new(ddr3(), 64, 12, 11).is_err());
        let mut tiny = ddr3();
        tiny.rows = 16;
        assert!(matches!(
            GeneralTiledMapping::new(tiny, 100_000, 11, 11),
            Err(InterleaverError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn paper_sized_interleaver_fits_all_presets_at_the_square_tile() {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            let g = geometry(*standard, *rate);
            let edge = (g.columns_per_row as f64).sqrt() as u32;
            let m = GeneralTiledMapping::new(g, 5000, edge, edge);
            assert!(
                m.is_ok(),
                "12.5M-element interleaver must fit {standard:?}-{rate} at {edge}x{edge}"
            );
        }
    }
}
