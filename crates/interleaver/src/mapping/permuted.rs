//! Bit-permutation interleaver mappings: the searchable mapping family.
//!
//! A [`PermutedMapping`] places position `(i, j)` of the index space at the
//! *padded* linear address `(i << ⌈log2 n⌉) | j` and decodes that address
//! through an arbitrary [`BitPermutation`].  Because the padded linearization
//! keeps the `i` and `j` coordinates in disjoint bit ranges, every
//! permutation of the device's address bits corresponds to a concrete 2-D
//! layout: permutations that draw the DRAM **column** bits from both the low
//! `j` and the low `i` bits tile the index space into 2-D page rectangles
//! (the paper's optimization 2), permutations that put **bank** bits low
//! rotate banks per access (optimization 1), and the classic row-major
//! baseline is the permutation with all `j` bits below all `i` bits feeding
//! a [`DecodeScheme`](tbi_dram::DecodeScheme) chain.
//!
//! The padding trades capacity for searchability: the padded square needs
//! `2^(⌈log2 n⌉·2)` addressable bursts (≤ 4× the dense square), which all
//! preset devices provide for the paper's 12.5 M-element interleaver.

use tbi_dram::{
    AddressBatch, BitPermutation, ChannelTopology, DeviceGeometry, PermutationMapping,
    PhysicalAddress, XorFold,
};

use crate::mapping::{DramMapping, BATCH_CHUNK};
use crate::InterleaverError;

/// Number of bits needed to index `0..n` (0 for `n == 1`).
fn index_bits(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

/// A mapping that decodes the padded linear index `(i << jbits) | j` through
/// a [`BitPermutation`] — one point of the bit-permutation design space
/// explored by `tbi_exp`'s mapping search.
///
/// # Examples
///
/// ```
/// use tbi_dram::{BitPermutation, ChannelTopology, DecodeScheme, DramConfig, DramStandard};
/// use tbi_interleaver::mapping::{DramMapping, PermutedMapping};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 3200)?;
/// let permutation = BitPermutation::for_scheme(
///     DecodeScheme::RowColumnBankBankGroup,
///     &config.geometry,
///     ChannelTopology::default(),
/// )?;
/// let mapping =
///     PermutedMapping::new(config.geometry, ChannelTopology::default(), permutation, 1000)?;
/// assert_eq!(mapping.dimension(), 1000);
/// // Distinct positions decode to distinct addresses (permutations are
/// // bijections of the padded index bits).
/// assert_ne!(mapping.map(0, 1), mapping.map(1, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PermutedMapping {
    geometry: DeviceGeometry,
    decoder: PermutationMapping,
    n: u32,
    jbits: u32,
}

impl PermutedMapping {
    /// Number of bits each coordinate occupies in the padded linearization
    /// `(i << bits) | j` for an index space of dimension `n` (0 for
    /// `n == 1`).
    ///
    /// Public so that permutation *generators* (e.g. `tbi_exp`'s mapping
    /// search) place field bits on the exact `j`/`i` boundary this mapping
    /// decodes with.
    ///
    /// # Examples
    ///
    /// ```
    /// use tbi_interleaver::mapping::PermutedMapping;
    ///
    /// assert_eq!(PermutedMapping::index_bits(1), 0);
    /// assert_eq!(PermutedMapping::index_bits(1024), 10);
    /// assert_eq!(PermutedMapping::index_bits(5000), 13);
    /// ```
    #[must_use]
    pub fn index_bits(n: u32) -> u32 {
        index_bits(n)
    }

    /// Creates the mapping for an index space of dimension `n` on `geometry`
    /// scaled out to `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] if `n` is zero,
    /// [`InterleaverError::Dram`] if the permutation does not match the
    /// subsystem's field widths, and
    /// [`InterleaverError::CapacityExceeded`] if the padded index space
    /// needs more bits than the permutation covers.
    pub fn new(
        geometry: DeviceGeometry,
        topology: ChannelTopology,
        permutation: BitPermutation,
        n: u32,
    ) -> Result<Self, InterleaverError> {
        Self::with_fold(geometry, topology, permutation, XorFold::identity(), n)
    }

    /// Creates a mapping whose decoded field values are rewritten by `fold`
    /// after the bit permutation — the hybrid permutation+fold family (e.g.
    /// `bank = (bank + row) mod banks`, the optimized scheme's diagonal).
    ///
    /// # Errors
    ///
    /// As [`PermutedMapping::new`], plus [`InterleaverError::Dram`] when the
    /// fold touches a zero-width field or shifts past its source.
    pub fn with_fold(
        geometry: DeviceGeometry,
        topology: ChannelTopology,
        permutation: BitPermutation,
        fold: XorFold,
        n: u32,
    ) -> Result<Self, InterleaverError> {
        if n == 0 {
            return Err(InterleaverError::InvalidDimension {
                reason: "mapping dimension must be non-zero".to_string(),
            });
        }
        let decoder = PermutationMapping::with_fold(geometry, topology, permutation, fold)?;
        let jbits = index_bits(n);
        let needed = 2 * jbits;
        if needed > permutation.total_bits() {
            return Err(InterleaverError::CapacityExceeded {
                required_bursts: 1u64 << needed,
                available_bursts: 1u64 << permutation.total_bits(),
            });
        }
        Ok(Self {
            geometry,
            decoder,
            n,
            jbits,
        })
    }

    /// The padded linear address of position `(i, j)`.
    #[must_use]
    pub fn linear_index(&self, i: u32, j: u32) -> u64 {
        (u64::from(i) << self.jbits) | u64::from(j)
    }

    /// Routes position `(i, j)` to its `(channel, address)` pair (the
    /// address's rank field selects the rank within the channel).
    ///
    /// # Panics
    ///
    /// May panic (in debug builds) if `(i, j)` lies outside the index space.
    #[must_use]
    pub fn route(&self, i: u32, j: u32) -> (u32, PhysicalAddress) {
        debug_assert!(i < self.n && j < self.n, "({i},{j}) outside index space");
        self.decoder.decode(self.linear_index(i, j))
    }

    /// Batched counterpart of [`PermutedMapping::route`]: appends the
    /// `(channel, address)` pair of every position in `coords`, in order, to
    /// `out`.
    ///
    /// Linear indices are staged through a stack chunk and decoded with
    /// [`PermutationMapping::decode_batch`], whose precomputed scatter plan
    /// turns the per-bit gather loop into a few shift/mask/OR passes per
    /// field — the line-rate path of the permutation design-space search.
    ///
    /// # Panics
    ///
    /// May panic (in debug builds) if any position lies outside the index
    /// space.
    pub fn route_batch(&self, coords: &[(u32, u32)], out: &mut AddressBatch) {
        let mut linear = [0u64; BATCH_CHUNK];
        for chunk in coords.chunks(BATCH_CHUNK) {
            for (slot, &(i, j)) in linear.iter_mut().zip(chunk) {
                debug_assert!(i < self.n && j < self.n, "({i},{j}) outside index space");
                *slot = self.linear_index(i, j);
            }
            self.decoder.decode_batch(&linear[..chunk.len()], out);
        }
    }

    /// The permutation decoding the padded linear index.
    #[must_use]
    pub fn permutation(&self) -> &BitPermutation {
        self.decoder.permutation()
    }

    /// The fold applied after decode (identity for plain permutations).
    #[must_use]
    pub fn fold(&self) -> &XorFold {
        self.decoder.fold()
    }
}

impl DramMapping for PermutedMapping {
    /// The single-channel address of `(i, j)`; meaningful when the
    /// permutation has no channel bits (multi-channel permutations route
    /// through [`ChannelMapping`](crate::mapping::ChannelMapping) instead).
    fn map(&self, i: u32, j: u32) -> PhysicalAddress {
        self.route(i, j).1
    }

    /// Batched routing ([`PermutedMapping::route_batch`]): the channel lane
    /// holds the permutation's routed channel (0 when the permutation has no
    /// channel bits, i.e. whenever [`DramMapping::map`] is meaningful).
    fn map_batch(&self, coords: &[(u32, u32)], out: &mut AddressBatch) {
        self.route_batch(coords, out);
    }

    fn name(&self) -> &'static str {
        if self.fold().is_identity() {
            "permutation"
        } else {
            "xorfold"
        }
    }

    fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    fn dimension(&self) -> u32 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tbi_dram::{DecodeScheme, DramConfig, DramStandard};

    fn ddr4() -> DeviceGeometry {
        DramConfig::preset(DramStandard::Ddr4, 3200)
            .unwrap()
            .geometry
    }

    fn scheme_permutation(geometry: &DeviceGeometry) -> BitPermutation {
        BitPermutation::for_scheme(
            DecodeScheme::RowColumnBankBankGroup,
            geometry,
            ChannelTopology::default(),
        )
        .unwrap()
    }

    #[test]
    fn index_bits_matches_ceil_log2() {
        assert_eq!(index_bits(1), 0);
        assert_eq!(index_bits(2), 1);
        assert_eq!(index_bits(3), 2);
        assert_eq!(index_bits(1024), 10);
        assert_eq!(index_bits(1025), 11);
        assert_eq!(index_bits(5000), 13);
    }

    #[test]
    fn padded_linearization_keeps_coordinates_in_disjoint_bits() {
        let mapping = PermutedMapping::new(
            ddr4(),
            ChannelTopology::default(),
            scheme_permutation(&ddr4()),
            1000,
        )
        .unwrap();
        assert_eq!(mapping.linear_index(0, 999), 999);
        assert_eq!(mapping.linear_index(1, 0), 1 << 10);
        assert_eq!(mapping.linear_index(3, 5), (3 << 10) | 5);
    }

    #[test]
    fn mapping_is_injective_on_the_triangle() {
        let n = 300u32;
        let permutation = scheme_permutation(&ddr4());
        let mapping =
            PermutedMapping::new(ddr4(), ChannelTopology::default(), permutation, n).unwrap();
        let mut seen = HashSet::new();
        for i in 0..n {
            for j in 0..(n - i) {
                let addr = mapping.map(i, j);
                assert!(addr.is_valid_for(&ddr4()), "invalid {addr} at ({i},{j})");
                assert!(seen.insert(addr), "collision at ({i},{j})");
            }
        }
    }

    #[test]
    fn paper_sized_index_space_fits_all_presets() {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            let geometry = DramConfig::preset(*standard, *rate).unwrap().geometry;
            let permutation = scheme_permutation(&geometry);
            let mapping =
                PermutedMapping::new(geometry, ChannelTopology::default(), permutation, 5000);
            assert!(
                mapping.is_ok(),
                "12.5 M-element padded space must fit {standard:?}-{rate}"
            );
        }
    }

    #[test]
    fn oversized_and_zero_dimensions_are_rejected() {
        let geometry = ddr4();
        let permutation = scheme_permutation(&geometry);
        assert!(matches!(
            PermutedMapping::new(geometry, ChannelTopology::default(), permutation, 0),
            Err(InterleaverError::InvalidDimension { .. })
        ));
        // 2 * ceil_log2(n) must not exceed the device's 27 address bits.
        assert!(matches!(
            PermutedMapping::new(geometry, ChannelTopology::default(), permutation, 20_000),
            Err(InterleaverError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn topology_mismatch_is_a_dram_error() {
        let geometry = ddr4();
        let permutation = scheme_permutation(&geometry);
        assert!(matches!(
            PermutedMapping::new(geometry, ChannelTopology::new(2, 1), permutation, 100),
            Err(InterleaverError::Dram(_))
        ));
    }
}
