//! The row-major baseline mapping.

use tbi_dram::{
    AddressBatch, AddressDecoder, DecodeScheme, DeviceGeometry, DramConfig, PhysicalAddress,
};

use crate::mapping::{DramMapping, BATCH_CHUNK};
use crate::triangular::TriangularInterleaver;
use crate::InterleaverError;

/// The baseline mapping used by SRAM implementations: positions are stored in
/// storage-compact row-major order (row 0 first, then row 1, ...) and the
/// resulting *linear* burst index is decoded into bank/row/column by the
/// memory controller's regular address decoder.
///
/// The write phase therefore produces a perfectly sequential DRAM access
/// stream, while the column-wise read phase jumps by roughly one row length
/// per access and thrashes the row buffers — exactly the behaviour the paper
/// sets out to fix.
///
/// # Examples
///
/// ```
/// use tbi_dram::{DramConfig, DramStandard};
/// use tbi_interleaver::mapping::{DramMapping, RowMajorMapping};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = DramConfig::preset(DramStandard::Ddr4, 3200)?;
/// // Like every other mapping scheme, the constructor takes the device
/// // geometry; the decode scheme defaults to the standard controller
/// // mapping (use `with_scheme` to model a different controller).
/// let mapping = RowMajorMapping::new(config.geometry, 1000)?;
/// // Consecutive positions of one row are consecutive bursts.
/// let a = mapping.map(0, 0);
/// let b = mapping.map(0, 1);
/// assert_ne!(a, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RowMajorMapping {
    geometry: DeviceGeometry,
    decoder: AddressDecoder,
    interleaver: TriangularInterleaver,
}

impl RowMajorMapping {
    /// Creates the baseline mapping for an index space of dimension `n` on
    /// the given device geometry, decoded with the default
    /// [`DecodeScheme`] (the convention assumed for the paper's baseline).
    ///
    /// The signature is deliberately identical to the other mapping
    /// constructors (geometry + dimension); use
    /// [`RowMajorMapping::with_scheme`] to model a controller with a
    /// different address-decode scheme.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if `n` is zero or the index space exceeds
    /// the device capacity.
    pub fn new(geometry: DeviceGeometry, n: u32) -> Result<Self, InterleaverError> {
        Self::with_scheme(geometry, DecodeScheme::default(), n)
    }

    /// Creates the baseline mapping with an explicit address-decode scheme.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if `n` is zero or the index space exceeds
    /// the device capacity.
    pub fn with_scheme(
        geometry: DeviceGeometry,
        scheme: DecodeScheme,
        n: u32,
    ) -> Result<Self, InterleaverError> {
        let interleaver = TriangularInterleaver::new(n)?;
        if interleaver.len() > geometry.total_bursts() {
            return Err(InterleaverError::CapacityExceeded {
                required_bursts: interleaver.len(),
                available_bursts: geometry.total_bursts(),
            });
        }
        Ok(Self {
            geometry,
            decoder: AddressDecoder::new(geometry, scheme),
            interleaver,
        })
    }

    /// Creates the baseline mapping for a full DRAM configuration, honouring
    /// the configuration's decode scheme.
    ///
    /// # Errors
    ///
    /// See [`RowMajorMapping::with_scheme`].
    pub fn for_config(config: &DramConfig, n: u32) -> Result<Self, InterleaverError> {
        Self::with_scheme(config.geometry, config.decode_scheme, n)
    }

    /// The linear burst index of position `(i, j)` (compact triangular
    /// row-major layout).
    #[must_use]
    pub fn linear_index(&self, i: u32, j: u32) -> u64 {
        self.interleaver.write_rank(i, j)
    }
}

impl DramMapping for RowMajorMapping {
    fn map(&self, i: u32, j: u32) -> PhysicalAddress {
        self.decoder.decode(self.linear_index(i, j))
    }

    /// Batched baseline mapping: stages linear burst indices through a stack
    /// chunk and decodes whole slices with
    /// [`AddressDecoder::decode_batch`].
    fn map_batch(&self, coords: &[(u32, u32)], out: &mut AddressBatch) {
        let mut linear = [0u64; BATCH_CHUNK];
        for chunk in coords.chunks(BATCH_CHUNK) {
            for (slot, &(i, j)) in linear.iter_mut().zip(chunk) {
                *slot = self.linear_index(i, j);
            }
            self.decoder.decode_batch(&linear[..chunk.len()], out);
        }
    }

    fn name(&self) -> &'static str {
        "row-major"
    }

    fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    fn dimension(&self) -> u32 {
        self.interleaver.dimension()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbi_dram::DramStandard;

    fn mapping(n: u32) -> RowMajorMapping {
        let config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        RowMajorMapping::new(config.geometry, n).unwrap()
    }

    #[test]
    fn write_order_is_linear() {
        let m = mapping(100);
        let mut expected = 0u64;
        for i in 0..100u32 {
            for j in 0..(100 - i) {
                assert_eq!(m.linear_index(i, j), expected);
                expected += 1;
            }
        }
    }

    #[test]
    fn read_stride_is_roughly_one_row_length() {
        let m = mapping(1000);
        // Reading down column 0: consecutive linear indices differ by the row
        // length, which shrinks by one per step.
        let l0 = m.linear_index(0, 0);
        let l1 = m.linear_index(1, 0);
        let l2 = m.linear_index(2, 0);
        assert_eq!(l1 - l0, 1000);
        assert_eq!(l2 - l1, 999);
    }

    #[test]
    fn capacity_is_enforced() {
        let config = DramConfig::preset(DramStandard::Lpddr4, 2133).unwrap();
        // An absurdly large dimension cannot fit.
        let err = RowMajorMapping::new(config.geometry, 600_000).unwrap_err();
        assert!(matches!(err, InterleaverError::CapacityExceeded { .. }));
    }

    #[test]
    fn for_config_honours_the_config_decode_scheme() {
        let mut config = DramConfig::preset(DramStandard::Ddr4, 3200).unwrap();
        config.decode_scheme = tbi_dram::DecodeScheme::BankBankGroupRowColumn;
        let by_config = RowMajorMapping::for_config(&config, 64).unwrap();
        let by_scheme =
            RowMajorMapping::with_scheme(config.geometry, config.decode_scheme, 64).unwrap();
        let default_scheme = RowMajorMapping::new(config.geometry, 64).unwrap();
        assert_eq!(by_config.map(5, 3), by_scheme.map(5, 3));
        assert_ne!(by_config.map(5, 3), default_scheme.map(5, 3));
    }

    #[test]
    fn name_and_dimension() {
        let m = mapping(64);
        assert_eq!(m.name(), "row-major");
        assert_eq!(m.dimension(), 64);
    }
}
