//! Mappings from the interleaver's 2-D index space to DRAM addresses.
//!
//! All mappings operate at burst granularity: position `(i, j)` of the
//! triangular index space (row `i`, column `j`) is one DRAM burst.  A mapping
//! assigns each position a [`PhysicalAddress`] (bank group, bank, row,
//! column).  The scheme determines how friendly the row-wise write phase and
//! the column-wise read phase are to the DRAM timing constraints.
//!
//! | scheme | bank round-robin | page tiling | stagger | figure |
//! |---|---|---|---|---|
//! | [`RowMajorMapping`] | – | – | – | baseline (Table I "Row-Major") |
//! | [`BankRoundRobinMapping`] | ✓ | – | – | Fig. 1a |
//! | [`TiledMapping`] | per tile | ✓ | – | Fig. 1b |
//! | [`OptimizedMapping`] (no stagger) | ✓ | ✓ | – | Fig. 1c |
//! | [`OptimizedMapping`] | ✓ | ✓ | ✓ | Fig. 1d (Table I "Optimized") |
//! | [`PermutedMapping`] | depends | depends | – | searchable bit-permutation family (`docs/MAPPING.md`) |
//! | [`GeneralTiledMapping`] | ✓ | free-shape | – | searchable `tile_h × tile_w ≤ page` family (`docs/MAPPING.md`) |

mod channel;
mod general_tiled;
mod optimized;
mod permuted;
mod row_major;
mod simple;

pub use channel::{
    channel_mapping_for_spec, ChannelMapping, ChannelTrace, ChannelTraceGenerator, TileOrder,
};
pub use general_tiled::GeneralTiledMapping;
pub use optimized::OptimizedMapping;
pub use permuted::PermutedMapping;
pub use row_major::RowMajorMapping;
pub use simple::{BankRoundRobinMapping, TiledMapping};

use tbi_dram::{
    AddressBatch, BitPermutation, ChannelTopology, DeviceGeometry, DramConfig, PhysicalAddress,
    XorFold,
};

use crate::InterleaverError;

/// Chunk size (in positions) of the batched mapping kernels: coordinates are
/// staged through stack arrays of this many elements, so batch mapping
/// allocates nothing beyond the caller's output buffer.
pub(crate) const BATCH_CHUNK: usize = 256;

/// A mapping from interleaver index-space positions to DRAM addresses.
///
/// Implementations must be **injective** over the index space they were
/// constructed for: two distinct positions never share a DRAM address.
pub trait DramMapping: Send + Sync {
    /// The DRAM address storing position `(i, j)`.
    ///
    /// # Panics
    ///
    /// May panic (in debug builds) if `(i, j)` lies outside the index space
    /// the mapping was constructed for.
    fn map(&self, i: u32, j: u32) -> PhysicalAddress;

    /// Batched counterpart of [`DramMapping::map`]: appends the address of
    /// every position in `coords`, in order, to `out`.
    ///
    /// The appended addresses are bit-identical to calling
    /// [`DramMapping::map`] per element.  The channel lane of the appended
    /// region holds the scheme's routed channel where the mapping has one
    /// (e.g. a [`PermutedMapping`] whose permutation carries channel bits)
    /// and `0` otherwise — the single-channel view of `map`.
    ///
    /// The default implementation maps one element at a time; schemes with a
    /// linear decode stage ([`RowMajorMapping`], [`PermutedMapping`])
    /// override it with slice kernels that amortize the per-element decode
    /// work.
    ///
    /// # Panics
    ///
    /// May panic (in debug builds) if any position lies outside the index
    /// space the mapping was constructed for.
    fn map_batch(&self, coords: &[(u32, u32)], out: &mut AddressBatch) {
        out.reserve(coords.len());
        for &(i, j) in coords {
            out.push(0, self.map(i, j));
        }
    }

    /// Short human-readable name of the scheme.
    fn name(&self) -> &'static str;

    /// The device geometry the mapping targets.
    fn geometry(&self) -> &DeviceGeometry;

    /// Dimension `n` of the (square bounding box of the) index space.
    fn dimension(&self) -> u32;
}

/// The mapping schemes available for evaluation, in increasing order of
/// optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MappingKind {
    /// Storage-compact row-major layout decoded by the controller's default
    /// address decoder (the paper's baseline).
    RowMajor,
    /// Bank index advances with every access (optimization 1 only).
    BankRoundRobin,
    /// Index space tiled into pages, one bank per tile (optimization 2 only).
    Tiled,
    /// Bank round-robin + page tiling, without the bank-dependent stagger
    /// (optimizations 1 + 2, Fig. 1c).
    OptimizedNoStagger,
    /// The full optimized mapping with all three optimizations (Fig. 1d).
    Optimized,
    /// A searchable bit-permutation layout: positions are placed at the
    /// padded linear address `(i << ⌈log2 n⌉) | j` and decoded through the
    /// given [`BitPermutation`] (see [`PermutedMapping`]).  Not part of
    /// [`MappingKind::ALL`] because it is parameterized rather than fixed;
    /// `tbi_exp`'s mapping search generates these.
    Permutation(BitPermutation),
    /// A hybrid permutation+fold layout: decoded like
    /// [`MappingKind::Permutation`], then the field values are rewritten by
    /// the [`XorFold`]'s XOR/ADD steps (e.g. `bank = (bank + row) mod
    /// banks`, the optimized scheme's diagonal term, inexpressible as a pure
    /// bit permutation).  Generated by `tbi_exp`'s portfolio search.
    XorFolded(BitPermutation, XorFold),
    /// A free-shape diagonal tiling: tiles of `tile_h × tile_w ≤ page`
    /// positions, one page prefix per tile, the optimized scheme's diagonal
    /// bank term between tiles (see [`GeneralTiledMapping`]).  Tile edges
    /// need not be powers of two — the family the bit-sliced layouts cannot
    /// reach.  Generated by `tbi_exp`'s portfolio search.
    GeneralTiled {
        /// Tile height in index-space rows.
        tile_h: u32,
        /// Tile width in index-space columns.
        tile_w: u32,
    },
}

impl MappingKind {
    /// All mapping kinds, from baseline to fully optimized.
    pub const ALL: [MappingKind; 5] = [
        MappingKind::RowMajor,
        MappingKind::BankRoundRobin,
        MappingKind::Tiled,
        MappingKind::OptimizedNoStagger,
        MappingKind::Optimized,
    ];

    /// The two schemes compared in the paper's Table I.
    pub const TABLE1: [MappingKind; 2] = [MappingKind::RowMajor, MappingKind::Optimized];

    /// Human-readable scheme name (the same for every permutation; use
    /// [`MappingKind::label`] to distinguish individual permutations).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MappingKind::RowMajor => "row-major",
            MappingKind::BankRoundRobin => "bank-round-robin",
            MappingKind::Tiled => "tiled",
            MappingKind::OptimizedNoStagger => "optimized-no-stagger",
            MappingKind::Optimized => "optimized",
            MappingKind::Permutation(_) => "permutation",
            MappingKind::XorFolded(..) => "xorfold",
            MappingKind::GeneralTiled { .. } => "general-tiled",
        }
    }

    /// Fully qualified label: equal to [`MappingKind::name`] for the named
    /// schemes, `permutation:<MSB-first bit codes>` for permutations,
    /// `xorfold:<codes>|<fold steps>` for hybrid permutation+fold layouts,
    /// and `tiled:<h>x<w>` for free-shape tilings — so scenario IDs and
    /// records distinguish individual design points.
    ///
    /// # Examples
    ///
    /// ```
    /// use tbi_interleaver::MappingKind;
    ///
    /// assert_eq!(MappingKind::Optimized.label(), "optimized");
    /// let permutation = "RRCCBBGG".parse()?;
    /// assert_eq!(
    ///     MappingKind::Permutation(permutation).label(),
    ///     "permutation:RRCCBBGG"
    /// );
    /// let fold = "B^R1".parse()?;
    /// assert_eq!(
    ///     MappingKind::XorFolded(permutation, fold).label(),
    ///     "xorfold:RRCCBBGG|B^R1"
    /// );
    /// assert_eq!(
    ///     MappingKind::GeneralTiled { tile_h: 11, tile_w: 11 }.label(),
    ///     "tiled:11x11"
    /// );
    /// # Ok::<(), tbi_dram::ConfigError>(())
    /// ```
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MappingKind::Permutation(permutation) => format!("permutation:{permutation}"),
            MappingKind::XorFolded(permutation, fold) => {
                format!("xorfold:{permutation}|{fold}")
            }
            MappingKind::GeneralTiled { tile_h, tile_w } => format!("tiled:{tile_h}x{tile_w}"),
            other => other.name().to_string(),
        }
    }

    /// Parses a label produced by [`MappingKind::label`] back into the kind
    /// — so recorded design points (e.g. `BENCH_dse.json` rows) replay.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError::InvalidDimension`] when the label names
    /// no known scheme and is not a well-formed `permutation:`/`xorfold:`
    /// form.
    pub fn parse_label(label: &str) -> Result<Self, InterleaverError> {
        for kind in MappingKind::ALL {
            if label == kind.name() {
                return Ok(kind);
            }
        }
        let invalid = |reason: String| InterleaverError::InvalidDimension { reason };
        if let Some(codes) = label.strip_prefix("permutation:") {
            let permutation = codes
                .parse()
                .map_err(|e| invalid(format!("bad permutation label `{label}`: {e}")))?;
            return Ok(MappingKind::Permutation(permutation));
        }
        if let Some(body) = label.strip_prefix("xorfold:") {
            let (codes, fold) = body
                .split_once('|')
                .ok_or_else(|| invalid(format!("xorfold label `{label}` lacks a `|`")))?;
            let permutation = codes
                .parse()
                .map_err(|e| invalid(format!("bad permutation in `{label}`: {e}")))?;
            let fold = fold
                .parse()
                .map_err(|e| invalid(format!("bad fold in `{label}`: {e}")))?;
            return Ok(MappingKind::XorFolded(permutation, fold));
        }
        if let Some(body) = label.strip_prefix("tiled:") {
            let (h, w) = body
                .split_once('x')
                .ok_or_else(|| invalid(format!("tiled label `{label}` lacks an `x`")))?;
            let tile_h = h
                .parse()
                .map_err(|e| invalid(format!("bad tile height in `{label}`: {e}")))?;
            let tile_w = w
                .parse()
                .map_err(|e| invalid(format!("bad tile width in `{label}`: {e}")))?;
            return Ok(MappingKind::GeneralTiled { tile_h, tile_w });
        }
        Err(invalid(format!("unknown mapping label `{label}`")))
    }

    /// Builds the mapping for a DRAM configuration and an index space of
    /// dimension `n`.
    ///
    /// Identical to [`MappingKind::build_for_geometry`] except that the
    /// row-major baseline honours the configuration's
    /// [`decode_scheme`](DramConfig::decode_scheme) instead of the default.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if the index space does not fit into the
    /// device under this scheme.
    pub fn build(
        self,
        config: &DramConfig,
        dimension: u32,
    ) -> Result<Box<dyn DramMapping>, InterleaverError> {
        if self == MappingKind::RowMajor {
            Ok(Box::new(RowMajorMapping::for_config(config, dimension)?))
        } else {
            self.build_for_geometry(config.geometry, dimension)
        }
    }

    /// Builds the channel/rank-aware variant of this scheme for `config`'s
    /// [`ChannelTopology`] (see
    /// [`ChannelMapping`]).  With the default `1 × 1` topology the variant
    /// routes every position to channel 0, rank 0 with exactly the addresses
    /// of [`MappingKind::build`].
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if the index space does not fit the
    /// subsystem under this scheme.
    pub fn build_channel(
        self,
        config: &DramConfig,
        dimension: u32,
    ) -> Result<ChannelMapping, InterleaverError> {
        ChannelMapping::new(self, config, dimension)
    }

    /// Builds the mapping for a bare device geometry and an index space of
    /// dimension `n` (single-channel, single-rank view).
    ///
    /// Every scheme — including the row-major baseline, which uses the
    /// default [`tbi_dram::DecodeScheme`] here — is constructed from the
    /// same (geometry, dimension) pair.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaverError`] if the index space does not fit into the
    /// device under this scheme.
    pub fn build_for_geometry(
        self,
        geometry: DeviceGeometry,
        dimension: u32,
    ) -> Result<Box<dyn DramMapping>, InterleaverError> {
        Ok(match self {
            MappingKind::RowMajor => Box::new(RowMajorMapping::new(geometry, dimension)?),
            MappingKind::BankRoundRobin => {
                Box::new(BankRoundRobinMapping::new(geometry, dimension)?)
            }
            MappingKind::Tiled => Box::new(TiledMapping::new(geometry, dimension)?),
            MappingKind::OptimizedNoStagger => {
                Box::new(OptimizedMapping::without_stagger(geometry, dimension)?)
            }
            MappingKind::Optimized => Box::new(OptimizedMapping::new(geometry, dimension)?),
            MappingKind::Permutation(permutation) => Box::new(PermutedMapping::new(
                geometry,
                ChannelTopology::default(),
                permutation,
                dimension,
            )?),
            MappingKind::XorFolded(permutation, fold) => Box::new(PermutedMapping::with_fold(
                geometry,
                ChannelTopology::default(),
                permutation,
                fold,
                dimension,
            )?),
            MappingKind::GeneralTiled { tile_h, tile_w } => Box::new(GeneralTiledMapping::new(
                geometry, dimension, tile_h, tile_w,
            )?),
        })
    }
}

impl std::fmt::Display for MappingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingKind::Permutation(_)
            | MappingKind::XorFolded(..)
            | MappingKind::GeneralTiled { .. } => f.write_str(&self.label()),
            other => f.write_str(other.name()),
        }
    }
}

/// Renders a small corner of a mapping as a text grid (used by the `fig1`
/// binary to regenerate the paper's Figure 1 and handy for debugging).
///
/// Each cell shows `B<bank> R<row> C<column>` where `<bank>` is the flat bank
/// index.
#[must_use]
pub fn render_grid(mapping: &dyn DramMapping, rows: u32, cols: u32) -> String {
    let mut out = String::new();
    let geometry = *mapping.geometry();
    for i in 0..rows {
        for j in 0..cols {
            let addr = mapping.map(i, j);
            out.push_str(&format!(
                "B{:<2}R{:<3}C{:<3} ",
                addr.flat_bank(&geometry),
                addr.row,
                addr.column
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use tbi_dram::DramStandard;

    fn ddr4() -> DramConfig {
        DramConfig::preset(DramStandard::Ddr4, 3200).unwrap()
    }

    #[test]
    fn all_kinds_build_for_all_presets() {
        for (standard, rate) in tbi_dram::standards::ALL_CONFIGS {
            let config = DramConfig::preset(*standard, *rate).unwrap();
            for kind in MappingKind::ALL {
                let mapping = kind.build(&config, 512).unwrap_or_else(|e| {
                    panic!("{kind} failed to build for {}: {e}", config.label())
                });
                assert_eq!(mapping.dimension(), 512);
                // Spot-check a few addresses for validity.
                for (i, j) in [(0, 0), (1, 0), (0, 1), (255, 255), (511, 0), (0, 511)] {
                    let addr = mapping.map(i, j);
                    assert!(
                        addr.is_valid_for(&config.geometry),
                        "{kind} produced invalid address {addr} for ({i},{j}) on {}",
                        config.label()
                    );
                }
            }
        }
    }

    #[test]
    fn build_for_geometry_matches_build_on_presets() {
        // Presets use the default decode scheme, so the two builders agree
        // for every kind — the constructor surface is uniform.
        let config = ddr4();
        for kind in MappingKind::ALL {
            let a = kind.build(&config, 128).unwrap();
            let b = kind.build_for_geometry(config.geometry, 128).unwrap();
            for (i, j) in [(0, 0), (3, 5), (100, 27)] {
                assert_eq!(a.map(i, j), b.map(i, j), "{kind} diverged at ({i},{j})");
            }
        }
    }

    #[test]
    fn table1_kinds_are_row_major_and_optimized() {
        assert_eq!(
            MappingKind::TABLE1,
            [MappingKind::RowMajor, MappingKind::Optimized]
        );
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<_> = MappingKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), MappingKind::ALL.len());
        assert_eq!(MappingKind::Optimized.to_string(), "optimized");
    }

    #[test]
    fn render_grid_contains_requested_cells() {
        let config = ddr4();
        let mapping = MappingKind::Optimized.build(&config, 64).unwrap();
        let grid = render_grid(mapping.as_ref(), 4, 4);
        assert_eq!(grid.lines().count(), 4);
        assert!(grid.contains('B'));
    }

    /// Every mapping must be injective: distinct positions map to distinct
    /// DRAM addresses.
    #[test]
    fn mappings_are_injective_on_a_dense_block() {
        let config = ddr4();
        let n = 300u32;
        for kind in MappingKind::ALL {
            let mapping = kind.build(&config, n).unwrap();
            let mut seen = HashSet::new();
            for i in 0..n {
                for j in 0..(n - i) {
                    let addr = mapping.map(i, j);
                    assert!(
                        seen.insert(addr),
                        "{kind}: collision at ({i},{j}) -> {addr}"
                    );
                }
            }
        }
    }

    #[test]
    fn map_batch_matches_scalar_map_for_every_kind() {
        let config = ddr4();
        let n = 150u32;
        let coords: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| (0..(n - i)).map(move |j| (i, j)))
            .collect();
        let mut kinds: Vec<MappingKind> = MappingKind::ALL.to_vec();
        kinds.push(MappingKind::Permutation(
            tbi_dram::BitPermutation::for_scheme(
                config.decode_scheme,
                &config.geometry,
                ChannelTopology::default(),
            )
            .unwrap(),
        ));
        for kind in kinds {
            let mapping = kind.build(&config, n).unwrap();
            let mut batch = tbi_dram::AddressBatch::new();
            mapping.map_batch(&coords, &mut batch);
            assert_eq!(batch.len(), coords.len(), "{kind}");
            for (index, &(i, j)) in coords.iter().enumerate() {
                assert_eq!(
                    batch.get(index),
                    (0, mapping.map(i, j)),
                    "{kind} at ({i},{j})"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn mappings_are_injective_and_valid_for_random_pairs(
            kind_idx in 0usize..MappingKind::ALL.len(),
            n in 64u32..2000,
            seed in 0u64..u64::MAX,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let config = ddr4();
            let kind = MappingKind::ALL[kind_idx];
            let mapping = kind.build(&config, n).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut positions = HashSet::new();
            let mut addresses = HashSet::new();
            for _ in 0..500 {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n - i);
                if positions.insert((i, j)) {
                    let addr = mapping.map(i, j);
                    prop_assert!(addr.is_valid_for(&config.geometry));
                    prop_assert!(addresses.insert(addr), "{} collided at ({i},{j})", kind);
                }
            }
        }
    }
}
