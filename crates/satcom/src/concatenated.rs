//! Concatenated coding: inner convolutional code + symbol interleaver +
//! outer Reed–Solomon code.
//!
//! This is the classic satellite-link arrangement (CCSDS): the inner Viterbi
//! decoder cleans up random channel errors but emits short error *bursts*
//! when it derails; the interleaver spreads those bursts over many outer
//! Reed–Solomon code words, which then correct them.  It is the same
//! burst-spreading role the triangular DRAM interleaver plays at much larger
//! scale in the paper.

use rand::Rng;

use tbi_interleaver::triangular::TriangularInterleaver;

use crate::channel::SymbolChannel;
use crate::convolutional::ConvolutionalCode;
use crate::reed_solomon::ReedSolomon;
use crate::SatcomError;

/// Configuration of a concatenated-coding transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcatenatedConfig {
    /// Outer Reed–Solomon code word length `n`.
    pub rs_code_len: usize,
    /// Outer Reed–Solomon data length `k`.
    pub rs_data_len: usize,
    /// Number of outer code words per transmission.
    pub codewords: usize,
    /// Whether a triangular symbol interleaver sits between the outer and
    /// inner code.
    pub interleaved: bool,
}

impl Default for ConcatenatedConfig {
    fn default() -> Self {
        Self {
            rs_code_len: 255,
            rs_data_len: 223,
            codewords: 16,
            interleaved: true,
        }
    }
}

/// Result of one concatenated transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcatenatedReport {
    /// Number of outer code words transmitted.
    pub codewords: usize,
    /// Outer code words that failed to decode correctly.
    pub codeword_failures: usize,
    /// Bit errors at the output of the inner (Viterbi) decoder.
    pub inner_residual_bit_errors: usize,
    /// Total channel bits transmitted.
    pub channel_bits: usize,
}

impl ConcatenatedReport {
    /// Frame error rate of the outer code.
    #[must_use]
    pub fn frame_error_rate(&self) -> f64 {
        if self.codewords == 0 {
            0.0
        } else {
            self.codeword_failures as f64 / self.codewords as f64
        }
    }

    /// Residual bit error rate at the inner decoder output.
    #[must_use]
    pub fn inner_bit_error_rate(&self) -> f64 {
        if self.channel_bits == 0 {
            0.0
        } else {
            self.inner_residual_bit_errors as f64 / self.channel_bits as f64
        }
    }
}

/// A concatenated (RS + interleaver + convolutional) transmission chain.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tbi_satcom::channel::GilbertElliott;
/// use tbi_satcom::concatenated::{ConcatenatedCode, ConcatenatedConfig};
///
/// # fn main() -> Result<(), tbi_satcom::SatcomError> {
/// let code = ConcatenatedCode::new(ConcatenatedConfig { codewords: 4, ..Default::default() })?;
/// let channel = GilbertElliott::new(0.0, 1.0, 0.002, 0.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let report = code.transmit(&channel, &mut rng)?;
/// assert_eq!(report.codewords, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConcatenatedCode {
    config: ConcatenatedConfig,
    outer: ReedSolomon,
    inner: ConvolutionalCode,
}

impl ConcatenatedCode {
    /// Creates the chain for `config` with the CCSDS K = 7 inner code.
    ///
    /// # Errors
    ///
    /// Returns [`SatcomError`] for invalid Reed–Solomon parameters or a zero
    /// code word count.
    pub fn new(config: ConcatenatedConfig) -> Result<Self, SatcomError> {
        if config.codewords == 0 {
            return Err(SatcomError::InvalidLinkConfig {
                reason: "at least one code word is required".to_string(),
            });
        }
        Ok(Self {
            outer: ReedSolomon::new(config.rs_code_len, config.rs_data_len)?,
            inner: ConvolutionalCode::ccsds(),
            config,
        })
    }

    /// The outer Reed–Solomon code.
    #[must_use]
    pub fn outer(&self) -> &ReedSolomon {
        &self.outer
    }

    /// The inner convolutional code.
    #[must_use]
    pub fn inner(&self) -> &ConvolutionalCode {
        &self.inner
    }

    /// Overall code rate (outer rate × inner rate 1/2).
    #[must_use]
    pub fn overall_rate(&self) -> f64 {
        self.outer.rate() * 0.5
    }

    /// Runs one transmission over `channel` (which corrupts the *bit* stream;
    /// each byte of the corrupted stream represents one channel bit, so use
    /// channels whose error events flip individual symbols).
    ///
    /// # Errors
    ///
    /// Propagates encoding/interleaver errors ([`SatcomError`]).
    pub fn transmit<C, R>(
        &self,
        channel: &C,
        rng: &mut R,
    ) -> Result<ConcatenatedReport, SatcomError>
    where
        C: SymbolChannel,
        R: Rng + ?Sized,
    {
        let n = self.outer.code_len();
        let k = self.outer.data_len();

        // Outer encoding.
        let mut originals = Vec::with_capacity(self.config.codewords);
        let mut outer_stream = Vec::with_capacity(self.config.codewords * n);
        for _ in 0..self.config.codewords {
            let data: Vec<u8> = (0..k).map(|_| rng.gen()).collect();
            outer_stream.extend_from_slice(&self.outer.encode(&data)?);
            originals.push(data);
        }

        // Optional symbol interleaver between outer and inner code.
        let (interleaved, interleaver, padding) = if self.config.interleaved {
            let interleaver = TriangularInterleaver::with_capacity(outer_stream.len() as u64)?;
            let padding = interleaver.len() as usize - outer_stream.len();
            let mut padded = outer_stream.clone();
            padded.resize(interleaver.len() as usize, 0);
            (interleaver.interleave(&padded)?, Some(interleaver), padding)
        } else {
            (outer_stream.clone(), None, 0)
        };

        // Inner encoding to a bit stream (one byte per bit).
        let channel_bits = self.inner.encode_bytes(&interleaved);

        // Channel: flip bits where the channel corrupts the symbol.
        let received_raw = channel.corrupt(&channel_bits, rng);
        let received_bits: Vec<u8> = received_raw
            .iter()
            .zip(channel_bits.iter())
            .map(|(&r, &t)| if r == t { t } else { t ^ 1 })
            .collect();

        // Inner decoding.
        let inner_out = self.inner.decode_bytes(&received_bits);
        let inner_residual_bit_errors = inner_out
            .iter()
            .zip(interleaved.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum();

        // De-interleave and outer decoding.
        let restored = match &interleaver {
            None => inner_out,
            Some(interleaver) => {
                let mut padded = inner_out;
                padded.resize(interleaver.len() as usize, 0);
                let mut deinterleaved = interleaver.deinterleave(&padded)?;
                deinterleaved.truncate(interleaver.len() as usize - padding);
                deinterleaved
            }
        };
        let mut codeword_failures = 0;
        for (block, original) in restored.chunks(n).zip(originals.iter()) {
            let ok = block.len() == n
                && matches!(self.outer.decode(block), Ok(decoded) if &decoded == original);
            if !ok {
                codeword_failures += 1;
            }
        }

        Ok(ConcatenatedReport {
            codewords: self.config.codewords,
            codeword_failures,
            inner_residual_bit_errors,
            channel_bits: channel_bits.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::GilbertElliott;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_zero_codewords() {
        let config = ConcatenatedConfig {
            codewords: 0,
            ..Default::default()
        };
        assert!(ConcatenatedCode::new(config).is_err());
    }

    #[test]
    fn overall_rate_combines_both_codes() {
        let code = ConcatenatedCode::new(ConcatenatedConfig::default()).unwrap();
        assert!((code.overall_rate() - 223.0 / 255.0 / 2.0).abs() < 1e-12);
        assert_eq!(code.inner().constraint_length(), 7);
        assert_eq!(code.outer().code_len(), 255);
    }

    #[test]
    fn clean_channel_is_error_free() {
        let code = ConcatenatedCode::new(ConcatenatedConfig {
            codewords: 3,
            rs_code_len: 63,
            rs_data_len: 47,
            interleaved: true,
        })
        .unwrap();
        let channel = GilbertElliott::new(0.0, 1.0, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let report = code.transmit(&channel, &mut rng).unwrap();
        assert_eq!(report.codeword_failures, 0);
        assert_eq!(report.inner_residual_bit_errors, 0);
        assert_eq!(report.frame_error_rate(), 0.0);
    }

    #[test]
    fn random_bit_errors_are_absorbed_by_the_inner_code() {
        let code = ConcatenatedCode::new(ConcatenatedConfig {
            codewords: 2,
            rs_code_len: 63,
            rs_data_len: 47,
            interleaved: true,
        })
        .unwrap();
        // ~0.5 % random bit error rate: well inside Viterbi's comfort zone.
        let channel = GilbertElliott::new(0.0, 1.0, 0.005, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let report = code.transmit(&channel, &mut rng).unwrap();
        assert_eq!(report.frame_error_rate(), 0.0);
        assert!(report.inner_bit_error_rate() < 0.01);
    }

    #[test]
    fn interleaving_helps_against_channel_bursts() {
        // Bursty channel at the bit level: the inner decoder derails during
        // bursts and emits clustered errors; the interleaver spreads them over
        // the outer code words.
        let channel = GilbertElliott::new(0.0008, 0.03, 0.0005, 0.25);
        let mut failures_with = 0usize;
        let mut failures_without = 0usize;
        for seed in 0..3 {
            for interleaved in [true, false] {
                let code = ConcatenatedCode::new(ConcatenatedConfig {
                    codewords: 12,
                    rs_code_len: 63,
                    rs_data_len: 47,
                    interleaved,
                })
                .unwrap();
                let mut rng = StdRng::seed_from_u64(4242 + seed);
                let report = code.transmit(&channel, &mut rng).unwrap();
                if interleaved {
                    failures_with += report.codeword_failures;
                } else {
                    failures_without += report.codeword_failures;
                }
            }
        }
        assert!(
            failures_with <= failures_without,
            "interleaving should not hurt: {failures_with} vs {failures_without}"
        );
    }
}
