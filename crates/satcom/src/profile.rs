//! Time-varying channel profiles for a full optical downlink pass.
//!
//! A LEO optical downlink is not stationary: the terminal rises over the
//! horizon, the slant path (and therefore the link-budget margin) improves
//! towards culmination and degrades again on the way down, and weather adds
//! attenuation on top.  This module models a pass as a sequence of
//! [`PassSegment`]s — each a share of the transmitted symbols sent at a
//! given elevation under given [`Weather`] — and retunes a
//! [`GilbertElliott`] burst channel per segment from the segment's link
//! margin: the lower the margin, the more often the channel dwells in the
//! bad state and the denser the errors inside a burst.
//!
//! [`LinkProfile`] implements [`SymbolChannel`], so it drops into
//! [`crate::link::LinkSimulation`] wherever a static channel was used.

use rand::Rng;

use crate::channel::{GilbertElliott, SymbolChannel};

/// Link margin at zenith under clear sky, in dB.
const ZENITH_MARGIN_DB: f64 = 6.0;
/// Good-state symbol error rate, independent of margin.
const GOOD_ERROR_RATE: f64 = 1e-5;
/// Per-symbol probability of leaving a fade (mean fade of 50 symbols, the
/// scintillation scale after the receiver's coarse pointing loop).
const P_BAD_TO_GOOD: f64 = 0.02;
/// Per-symbol fade-entry probability at 0 dB margin.
const P_GOOD_TO_BAD_AT_0DB: f64 = 1.6e-3;
/// Bad-state symbol error rate at 0 dB margin.
const BAD_ERROR_RATE_AT_0DB: f64 = 0.5;

/// Atmospheric condition during a segment of the pass, expressed as an
/// attenuation subtracted from the link-budget margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weather {
    /// Clear sky: no extra attenuation.
    Clear,
    /// Thin/broken clouds: 3 dB attenuation.
    LightClouds,
    /// Rain or thick clouds: 8 dB attenuation.
    Rain,
}

impl Weather {
    /// Attenuation applied to the link margin, in dB.
    #[must_use]
    pub fn attenuation_db(self) -> f64 {
        match self {
            Weather::Clear => 0.0,
            Weather::LightClouds => 3.0,
            Weather::Rain => 8.0,
        }
    }

    /// Short lowercase name ("clear", "clouds", "rain").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Weather::Clear => "clear",
            Weather::LightClouds => "clouds",
            Weather::Rain => "rain",
        }
    }
}

impl std::fmt::Display for Weather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One segment of a downlink pass: a relative share of the transmitted
/// symbols sent at a fixed elevation under fixed weather.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassSegment {
    /// Relative share of the transmitted symbols (segments split a block of
    /// symbols proportionally to their weights).
    pub weight: u32,
    /// Elevation of the satellite above the horizon, in degrees.
    pub elevation_deg: f64,
    /// Weather during the segment.
    pub weather: Weather,
}

impl PassSegment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero or `elevation_deg` is outside `(0, 90]`.
    #[must_use]
    pub fn new(weight: u32, elevation_deg: f64, weather: Weather) -> Self {
        assert!(weight > 0, "segment weight must be positive");
        assert!(
            elevation_deg > 0.0 && elevation_deg <= 90.0,
            "elevation must be in (0, 90], got {elevation_deg}"
        );
        Self {
            weight,
            elevation_deg,
            weather,
        }
    }

    /// Link-budget margin of the segment in dB: the clear-sky zenith margin
    /// reduced by the slant-path geometry (`10·log10(sin(elevation))`, the
    /// single-layer atmosphere approximation) and the weather attenuation.
    #[must_use]
    pub fn link_margin_db(&self) -> f64 {
        let sin_el = self.elevation_deg.to_radians().sin();
        ZENITH_MARGIN_DB + 10.0 * sin_el.log10() - self.weather.attenuation_db()
    }

    /// The Gilbert–Elliott channel tuned to this segment's link margin.
    ///
    /// A lower margin raises both the fade-entry probability (the channel
    /// spends more time in the bad state) and the symbol error rate inside a
    /// fade; the mean fade duration stays at the scintillation scale of
    /// 50 symbols.
    #[must_use]
    pub fn channel(&self) -> GilbertElliott {
        let margin_db = self.link_margin_db();
        // 10^(-margin/10): 1.0 at 0 dB, larger when the margin goes negative.
        let deficit = 10f64.powf(-margin_db / 10.0);
        let p_good_to_bad = (P_GOOD_TO_BAD_AT_0DB * deficit).clamp(0.0, 0.01);
        let error_rate_bad = (BAD_ERROR_RATE_AT_0DB * deficit.sqrt()).clamp(0.0, 0.8);
        GilbertElliott::new(
            p_good_to_bad,
            P_BAD_TO_GOOD,
            GOOD_ERROR_RATE,
            error_rate_bad,
        )
    }
}

/// A time-varying downlink channel: an ordered sequence of [`PassSegment`]s
/// that splits every corrupted block proportionally by segment weight.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tbi_satcom::channel::SymbolChannel;
/// use tbi_satcom::profile::{LinkProfile, Weather};
///
/// let profile = LinkProfile::leo_pass(60.0, Weather::LightClouds);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let received = profile.corrupt(&vec![0u8; 100_000], &mut rng);
/// assert!(received.iter().any(|&b| b != 0));
/// assert!(profile.average_symbol_error_rate() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    segments: Vec<PassSegment>,
}

impl LinkProfile {
    /// Creates a profile from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty.
    #[must_use]
    pub fn new(segments: Vec<PassSegment>) -> Self {
        assert!(!segments.is_empty(), "a profile needs at least one segment");
        Self { segments }
    }

    /// A symmetric five-segment LEO pass under uniform `weather`: rise at
    /// 10°, climb through the midpoint elevation, culminate at
    /// `peak_elevation_deg`, and descend the same way.  The culmination
    /// segments carry twice the symbol share of the horizon segments
    /// (higher elevation also means shorter range and a faster achievable
    /// symbol rate).
    ///
    /// # Panics
    ///
    /// Panics if `peak_elevation_deg` is outside `[10, 90]`.
    #[must_use]
    pub fn leo_pass(peak_elevation_deg: f64, weather: Weather) -> Self {
        assert!(
            (10.0..=90.0).contains(&peak_elevation_deg),
            "peak elevation must be in [10, 90], got {peak_elevation_deg}"
        );
        let rise = 10.0;
        let mid = (rise + peak_elevation_deg) / 2.0;
        Self::new(vec![
            PassSegment::new(1, rise, weather),
            PassSegment::new(2, mid, weather),
            PassSegment::new(2, peak_elevation_deg, weather),
            PassSegment::new(2, mid, weather),
            PassSegment::new(1, rise, weather),
        ])
    }

    /// The segments in pass order.
    #[must_use]
    pub fn segments(&self) -> &[PassSegment] {
        &self.segments
    }

    /// Sum of the segment weights.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.segments.iter().map(|s| u64::from(s.weight)).sum()
    }

    /// The lowest link margin over the pass, in dB.
    #[must_use]
    pub fn worst_margin_db(&self) -> f64 {
        self.segments
            .iter()
            .map(PassSegment::link_margin_db)
            .fold(f64::INFINITY, f64::min)
    }

    /// Splits a block of `len` symbols into one contiguous span per segment,
    /// proportional to the segment weights.  The spans tile `0..len` exactly;
    /// rounding is deterministic (cumulative-weight based), so the same
    /// `len` always yields the same boundaries.
    #[must_use]
    pub fn spans(&self, len: usize) -> Vec<std::ops::Range<usize>> {
        let total = u128::from(self.total_weight());
        let mut spans = Vec::with_capacity(self.segments.len());
        let mut cumulative = 0u128;
        let mut start = 0usize;
        for segment in &self.segments {
            cumulative += u128::from(segment.weight);
            let end = usize::try_from(len as u128 * cumulative / total)
                .expect("span end fits in usize because it is at most len");
            spans.push(start..end);
            start = end;
        }
        spans
    }
}

impl SymbolChannel for LinkProfile {
    /// Corrupts `data` segment by segment with each segment's retuned
    /// channel, drawing from one shared `rng` stream in pass order (so a
    /// seeded run is bit-reproducible).
    fn corrupt<R: Rng + ?Sized>(&self, data: &[u8], rng: &mut R) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        for (segment, span) in self.segments.iter().zip(self.spans(data.len())) {
            out.extend_from_slice(&segment.channel().corrupt(&data[span], rng));
        }
        out
    }

    fn average_symbol_error_rate(&self) -> f64 {
        let total = self.total_weight() as f64;
        self.segments
            .iter()
            .map(|s| f64::from(s.weight) * s.channel().average_symbol_error_rate())
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn margin_improves_with_elevation_and_degrades_with_weather() {
        let low = PassSegment::new(1, 15.0, Weather::Clear);
        let high = PassSegment::new(1, 80.0, Weather::Clear);
        assert!(high.link_margin_db() > low.link_margin_db());
        let rain = PassSegment::new(1, 80.0, Weather::Rain);
        assert!(
            (high.link_margin_db() - rain.link_margin_db() - Weather::Rain.attenuation_db()).abs()
                < 1e-12
        );
    }

    #[test]
    fn lower_margin_means_a_harsher_channel() {
        let good = PassSegment::new(1, 80.0, Weather::Clear).channel();
        let bad = PassSegment::new(1, 12.0, Weather::Rain).channel();
        assert!(bad.p_good_to_bad > good.p_good_to_bad);
        assert!(bad.error_rate_bad > good.error_rate_bad);
        assert!(bad.average_symbol_error_rate() > good.average_symbol_error_rate());
    }

    #[test]
    fn spans_tile_the_block_exactly() {
        let profile = LinkProfile::leo_pass(55.0, Weather::Clear);
        for len in [0usize, 1, 7, 255, 10_000, 12_345] {
            let spans = profile.spans(len);
            assert_eq!(spans.len(), profile.segments().len());
            assert_eq!(spans.first().unwrap().start, 0);
            assert_eq!(spans.last().unwrap().end, len);
            for pair in spans.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn corrupt_is_seed_deterministic_and_length_preserving() {
        let profile = LinkProfile::leo_pass(40.0, Weather::Rain);
        let data: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
        let a = profile.corrupt(&data, &mut StdRng::seed_from_u64(42));
        let b = profile.corrupt(&data, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.len(), data.len());
        assert_eq!(a, b);
        let c = profile.corrupt(&data, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c, "different seeds should corrupt differently");
    }

    #[test]
    fn average_rate_is_the_weighted_segment_mean() {
        let profile = LinkProfile::new(vec![
            PassSegment::new(3, 70.0, Weather::Clear),
            PassSegment::new(1, 12.0, Weather::Rain),
        ]);
        let rates: Vec<f64> = profile
            .segments()
            .iter()
            .map(|s| s.channel().average_symbol_error_rate())
            .collect();
        let expected = (3.0 * rates[0] + rates[1]) / 4.0;
        assert!((profile.average_symbol_error_rate() - expected).abs() < 1e-15);
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rates.iter().copied().fold(0.0f64, f64::max);
        assert!(profile.average_symbol_error_rate() >= min);
        assert!(profile.average_symbol_error_rate() <= max);
    }

    #[test]
    fn deeper_rain_pass_has_worse_margin_than_clear_pass() {
        let clear = LinkProfile::leo_pass(60.0, Weather::Clear);
        let rain = LinkProfile::leo_pass(60.0, Weather::Rain);
        assert!(rain.worst_margin_db() < clear.worst_margin_db());
        assert!(rain.average_symbol_error_rate() > clear.average_symbol_error_rate());
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_profile_is_rejected() {
        let _ = LinkProfile::new(Vec::new());
    }
}
