//! A systematic Reed–Solomon codec over GF(2⁸).
//!
//! The default code is RS(255, 223) — the classic deep-space/satellite code
//! with 16-symbol correction capability — but any `(n, k)` with
//! `k < n <= 255` is supported.  The decoder uses syndrome computation,
//! Berlekamp–Massey, Chien search and Forney's algorithm.

use crate::gf256::Gf256;
use crate::SatcomError;

/// A systematic Reed–Solomon code RS(n, k) over GF(2⁸).
///
/// # Examples
///
/// ```
/// use tbi_satcom::ReedSolomon;
///
/// # fn main() -> Result<(), tbi_satcom::SatcomError> {
/// let rs = ReedSolomon::new(255, 223)?;
/// let data: Vec<u8> = (0..223).map(|i| i as u8).collect();
/// let mut codeword = rs.encode(&data)?;
///
/// // Corrupt up to t = 16 symbols anywhere in the code word.
/// for i in 0..16 {
///     codeword[i * 7] ^= 0xA5;
/// }
/// let decoded = rs.decode(&codeword)?;
/// assert_eq!(decoded, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    gf: Gf256,
    n: usize,
    k: usize,
    generator: Vec<u8>,
}

impl ReedSolomon {
    /// Creates an RS(n, k) code.
    ///
    /// # Errors
    ///
    /// Returns [`SatcomError::InvalidCodeParameters`] unless
    /// `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, SatcomError> {
        if n > 255 || k == 0 || k >= n {
            return Err(SatcomError::InvalidCodeParameters {
                reason: format!("require 0 < k < n <= 255, got n={n}, k={k}"),
            });
        }
        let gf = Gf256::new();
        // Generator polynomial g(x) = prod_{i=0}^{n-k-1} (x - alpha^i),
        // highest-degree coefficient first.
        let mut generator = vec![1u8];
        for i in 0..(n - k) {
            generator = gf.poly_mul(&generator, &[1, gf.alpha_pow(i as u32)]);
        }
        Ok(Self {
            gf,
            n,
            k,
            generator,
        })
    }

    /// The classic satellite-link code RS(255, 223) with t = 16.
    ///
    /// # Panics
    ///
    /// Never panics (the parameters are valid by construction).
    #[must_use]
    pub fn ccsds() -> Self {
        Self::new(255, 223).expect("RS(255,223) parameters are valid")
    }

    /// Code word length `n` in symbols.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.n
    }

    /// Data length `k` in symbols.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.k
    }

    /// Number of parity symbols `n - k`.
    #[must_use]
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// Maximum number of correctable symbol errors `t = (n - k) / 2`.
    #[must_use]
    pub fn correction_capability(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Code rate `k / n`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.k as f64 / self.n as f64
    }

    /// Systematically encodes `data` (length `k`) into a code word of length
    /// `n`: the data symbols followed by `n - k` parity symbols.
    ///
    /// # Errors
    ///
    /// Returns [`SatcomError::InvalidCodeParameters`] if `data.len() != k`.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<u8>, SatcomError> {
        if data.len() != self.k {
            return Err(SatcomError::InvalidCodeParameters {
                reason: format!("expected {} data symbols, got {}", self.k, data.len()),
            });
        }
        // Polynomial long division of data * x^(n-k) by the generator.
        let mut remainder = vec![0u8; self.parity_len()];
        for &symbol in data {
            let factor = self.gf.add(symbol, remainder[0]);
            remainder.rotate_left(1);
            *remainder.last_mut().expect("parity_len > 0") = 0;
            if factor != 0 {
                for (r, &g) in remainder.iter_mut().zip(self.generator[1..].iter()) {
                    *r ^= self.gf.mul(g, factor);
                }
            }
        }
        let mut codeword = data.to_vec();
        codeword.extend_from_slice(&remainder);
        Ok(codeword)
    }

    /// Decodes a received code word (length `n`), correcting up to `t` symbol
    /// errors, and returns the `k` data symbols.
    ///
    /// # Errors
    ///
    /// Returns [`SatcomError::DecodingFailure`] if more than `t` errors are
    /// present, and [`SatcomError::InvalidCodeParameters`] if the length is
    /// wrong.
    pub fn decode(&self, received: &[u8]) -> Result<Vec<u8>, SatcomError> {
        let corrected = self.correct(received)?;
        Ok(corrected[..self.k].to_vec())
    }

    /// Corrects a received code word in place (returning the full corrected
    /// code word including parity).
    ///
    /// # Errors
    ///
    /// See [`ReedSolomon::decode`].
    pub fn correct(&self, received: &[u8]) -> Result<Vec<u8>, SatcomError> {
        if received.len() != self.n {
            return Err(SatcomError::InvalidCodeParameters {
                reason: format!("expected {} code symbols, got {}", self.n, received.len()),
            });
        }
        let syndromes = self.syndromes(received);
        if syndromes.iter().all(|&s| s == 0) {
            return Ok(received.to_vec());
        }
        let sigma = self.berlekamp_massey(&syndromes);
        let error_count = sigma.len() - 1;
        if error_count > self.correction_capability() {
            return Err(SatcomError::DecodingFailure {
                detected_errors: error_count,
            });
        }
        let positions = self.chien_search(&sigma);
        if positions.len() != error_count {
            return Err(SatcomError::DecodingFailure {
                detected_errors: error_count,
            });
        }
        let magnitudes = self.forney(&syndromes, &sigma, &positions);
        let mut corrected = received.to_vec();
        for (&position, &magnitude) in positions.iter().zip(magnitudes.iter()) {
            corrected[self.n - 1 - position] ^= magnitude;
        }
        // Verify the correction.
        if self.syndromes(&corrected).iter().any(|&s| s != 0) {
            return Err(SatcomError::DecodingFailure {
                detected_errors: error_count,
            });
        }
        Ok(corrected)
    }

    /// Computes the `n - k` syndromes of a received word.
    fn syndromes(&self, received: &[u8]) -> Vec<u8> {
        (0..self.parity_len())
            .map(|i| self.gf.poly_eval(received, self.gf.alpha_pow(i as u32)))
            .collect()
    }

    /// Berlekamp–Massey: returns the error-locator polynomial σ(x)
    /// (highest-degree coefficient first, σ(0) term last, leading 1 first).
    fn berlekamp_massey(&self, syndromes: &[u8]) -> Vec<u8> {
        // Work with lowest-degree-first representations internally.
        let mut sigma = vec![1u8]; // σ(x)
        let mut prev = vec![1u8]; // B(x)
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for (i, _) in syndromes.iter().enumerate() {
            // Discrepancy δ = S_i + Σ_{j=1}^{L} σ_j · S_{i-j}
            let mut delta = syndromes[i];
            for j in 1..=l.min(sigma.len() - 1) {
                delta ^= self.gf.mul(sigma[j], syndromes[i - j]);
            }
            if delta == 0 {
                m += 1;
            } else if 2 * l <= i {
                let temp = sigma.clone();
                let scale = self.gf.div(delta, b);
                sigma = Self::poly_sub_shifted(&self.gf, &sigma, &prev, scale, m);
                l = i + 1 - l;
                prev = temp;
                b = delta;
                m = 1;
            } else {
                let scale = self.gf.div(delta, b);
                sigma = Self::poly_sub_shifted(&self.gf, &sigma, &prev, scale, m);
                m += 1;
            }
        }
        // Convert to highest-degree-first and trim.
        while sigma.len() > l + 1 {
            sigma.pop();
        }
        let mut result = sigma;
        result.reverse();
        result
    }

    /// σ(x) - scale · x^shift · B(x) in lowest-degree-first representation.
    fn poly_sub_shifted(gf: &Gf256, sigma: &[u8], prev: &[u8], scale: u8, shift: usize) -> Vec<u8> {
        let len = sigma.len().max(prev.len() + shift);
        let mut out = vec![0u8; len];
        out[..sigma.len()].copy_from_slice(sigma);
        for (i, &p) in prev.iter().enumerate() {
            out[i + shift] ^= gf.mul(p, scale);
        }
        out
    }

    /// Chien search: error positions (exponents `j` such that the symbol at
    /// index `n - 1 - j` is in error).
    fn chien_search(&self, sigma: &[u8]) -> Vec<usize> {
        let mut positions = Vec::new();
        for j in 0..self.n {
            // Error at position j if σ(α^{-j}) == 0.
            let x = self.gf.alpha_pow((255 - (j as u32 % 255)) % 255);
            if self.gf.poly_eval(sigma, x) == 0 {
                positions.push(j);
            }
        }
        positions
    }

    /// Forney's algorithm: error magnitudes for the located positions.
    fn forney(&self, syndromes: &[u8], sigma: &[u8], positions: &[usize]) -> Vec<u8> {
        // Error evaluator Ω(x) = [S(x) · σ(x)] mod x^{2t}, with S(x) built
        // lowest-degree-first from the syndromes.
        let two_t = self.parity_len();
        let mut sigma_low: Vec<u8> = sigma.to_vec();
        sigma_low.reverse();
        let mut omega = vec![0u8; two_t];
        for (i, omega_i) in omega.iter_mut().enumerate() {
            let mut acc = 0u8;
            for j in 0..=i {
                let s = syndromes.get(j).copied().unwrap_or(0);
                let c = sigma_low.get(i - j).copied().unwrap_or(0);
                acc ^= self.gf.mul(s, c);
            }
            *omega_i = acc;
        }
        // Formal derivative of σ (lowest-degree-first): keep odd-power terms.
        let mut sigma_deriv = vec![0u8; sigma_low.len().saturating_sub(1)];
        for (power, &coefficient) in sigma_low.iter().enumerate().skip(1) {
            if power % 2 == 1 {
                sigma_deriv[power - 1] = coefficient;
            }
        }
        positions
            .iter()
            .map(|&j| {
                let x = self.gf.alpha_pow(j as u32 % 255);
                let x_inv = self.gf.alpha_pow((255 - (j as u32 % 255)) % 255);
                let omega_val = Self::poly_eval_low(&self.gf, &omega, x_inv);
                let deriv_val = Self::poly_eval_low(&self.gf, &sigma_deriv, x_inv);
                if deriv_val == 0 {
                    0
                } else {
                    // Forney with first consecutive root alpha^0 (b = 0):
                    // e = X * Omega(X^{-1}) / sigma'(X^{-1}).
                    self.gf.mul(x, self.gf.div(omega_val, deriv_val))
                }
            })
            .collect()
    }

    /// Evaluates a lowest-degree-first polynomial at `x`.
    fn poly_eval_low(gf: &Gf256, poly: &[u8], x: u8) -> u8 {
        let mut acc = 0u8;
        for &coefficient in poly.iter().rev() {
            acc = gf.add(gf.mul(acc, x), coefficient);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_invalid_parameters() {
        assert!(ReedSolomon::new(256, 200).is_err());
        assert!(ReedSolomon::new(255, 0).is_err());
        assert!(ReedSolomon::new(100, 100).is_err());
        assert!(ReedSolomon::new(100, 120).is_err());
    }

    #[test]
    fn ccsds_parameters() {
        let rs = ReedSolomon::ccsds();
        assert_eq!(rs.code_len(), 255);
        assert_eq!(rs.data_len(), 223);
        assert_eq!(rs.parity_len(), 32);
        assert_eq!(rs.correction_capability(), 16);
        assert!((rs.rate() - 223.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn encode_is_systematic_and_clean_codeword_decodes() {
        let rs = ReedSolomon::new(15, 11).unwrap();
        let data: Vec<u8> = (1..=11).collect();
        let codeword = rs.encode(&data).unwrap();
        assert_eq!(codeword.len(), 15);
        assert_eq!(&codeword[..11], data.as_slice());
        assert_eq!(rs.decode(&codeword).unwrap(), data);
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let rs = ReedSolomon::new(255, 223).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u8> = (0..223).map(|_| rng.gen()).collect();
        let codeword = rs.encode(&data).unwrap();
        for errors in [1usize, 2, 8, 16] {
            let mut corrupted = codeword.clone();
            let mut positions = std::collections::HashSet::new();
            while positions.len() < errors {
                positions.insert(rng.gen_range(0..255usize));
            }
            for &p in &positions {
                corrupted[p] ^= rng.gen_range(1..=255u8);
            }
            assert_eq!(rs.decode(&corrupted).unwrap(), data, "{errors} errors");
        }
    }

    #[test]
    fn fails_beyond_t_errors() {
        let rs = ReedSolomon::new(255, 223).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<u8> = (0..223).map(|_| rng.gen()).collect();
        let codeword = rs.encode(&data).unwrap();
        let mut corrupted = codeword;
        // 40 errors is far beyond t = 16; the decoder must not return wrong
        // data silently claiming success with matching syndromes.
        for p in 0..40 {
            corrupted[p * 6] ^= 0x5A;
        }
        match rs.decode(&corrupted) {
            Err(SatcomError::DecodingFailure { .. }) => {}
            Ok(decoded) => assert_ne!(decoded, data, "silent miscorrection returned original data"),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn wrong_lengths_are_rejected() {
        let rs = ReedSolomon::new(15, 11).unwrap();
        assert!(rs.encode(&[0u8; 10]).is_err());
        assert!(rs.decode(&[0u8; 14]).is_err());
    }

    #[test]
    fn burst_error_within_capability_is_corrected() {
        let rs = ReedSolomon::new(63, 47).unwrap(); // t = 8
        let data: Vec<u8> = (0..47).map(|i| (i * 3) as u8).collect();
        let codeword = rs.encode(&data).unwrap();
        let mut corrupted = codeword;
        for symbol in &mut corrupted[20..28] {
            *symbol = 0xFF;
        }
        assert_eq!(rs.decode(&corrupted).unwrap(), data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_errors_up_to_t_are_corrected(
            seed in 0u64..10_000,
            errors in 0usize..=8,
        ) {
            let rs = ReedSolomon::new(63, 47).unwrap(); // t = 8
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<u8> = (0..47).map(|_| rng.gen()).collect();
            let codeword = rs.encode(&data).unwrap();
            let mut corrupted = codeword;
            let mut positions = std::collections::HashSet::new();
            while positions.len() < errors {
                positions.insert(rng.gen_range(0..63usize));
            }
            for &p in &positions {
                corrupted[p] ^= rng.gen_range(1..=255u8);
            }
            prop_assert_eq!(rs.decode(&corrupted).unwrap(), data);
        }
    }
}
