//! A rate-1/2 convolutional code with Viterbi decoding.
//!
//! Optical and deep-space links traditionally concatenate an inner
//! convolutional code with an outer Reed–Solomon code; the interleaver sits
//! between the two so that the bursty residual errors of the inner decoder do
//! not overwhelm single RS code words.  The default generator polynomials are
//! the CCSDS/NASA standard K = 7 pair (171, 133 octal).

/// A rate-1/2 binary convolutional encoder/decoder (hard-decision Viterbi).
///
/// # Examples
///
/// ```
/// use tbi_satcom::convolutional::ConvolutionalCode;
///
/// let code = ConvolutionalCode::ccsds();
/// let data = vec![1u8, 0, 1, 1, 0, 0, 1, 0, 1, 1];
/// let encoded = code.encode(&data);
/// let decoded = code.decode(&encoded);
/// assert_eq!(decoded, data);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvolutionalCode {
    constraint_length: u32,
    generator_a: u32,
    generator_b: u32,
}

impl ConvolutionalCode {
    /// Creates a rate-1/2 code with the given constraint length and generator
    /// polynomials (given as binary masks over the shift register, LSB =
    /// newest bit).
    ///
    /// # Panics
    ///
    /// Panics if `constraint_length` is not in `2..=16`.
    #[must_use]
    pub fn new(constraint_length: u32, generator_a: u32, generator_b: u32) -> Self {
        assert!(
            (2..=16).contains(&constraint_length),
            "constraint length must be between 2 and 16"
        );
        let mask = (1u32 << constraint_length) - 1;
        Self {
            constraint_length,
            generator_a: generator_a & mask,
            generator_b: generator_b & mask,
        }
    }

    /// The CCSDS standard K = 7 code with generators 171/133 (octal).
    #[must_use]
    pub fn ccsds() -> Self {
        Self::new(7, 0o171, 0o133)
    }

    /// Constraint length K.
    #[must_use]
    pub fn constraint_length(&self) -> u32 {
        self.constraint_length
    }

    /// Number of trellis states (2^(K-1)).
    #[must_use]
    pub fn states(&self) -> usize {
        1usize << (self.constraint_length - 1)
    }

    /// Number of output bits produced per input bit (always 2: rate 1/2).
    #[must_use]
    pub fn output_bits_per_input(&self) -> usize {
        2
    }

    fn output(&self, state: u32, input: u8) -> (u8, u8) {
        // Shift register contents: input bit is the MSB-side newest bit.
        let register = (u32::from(input) << (self.constraint_length - 1)) | state;
        let a = (register & self.generator_a).count_ones() as u8 & 1;
        let b = (register & self.generator_b).count_ones() as u8 & 1;
        (a, b)
    }

    fn next_state(&self, state: u32, input: u8) -> u32 {
        ((u32::from(input) << (self.constraint_length - 1)) | state) >> 1
    }

    /// Encodes a bit sequence (values 0/1), appending `K - 1` zero tail bits
    /// so the trellis terminates in the all-zero state.  The output has
    /// `2 * (data.len() + K - 1)` bits.
    ///
    /// # Panics
    ///
    /// Panics if any input value is not 0 or 1.
    #[must_use]
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let tail = (self.constraint_length - 1) as usize;
        let mut out = Vec::with_capacity(2 * (data.len() + tail));
        let mut state = 0u32;
        for &bit in data.iter().chain(std::iter::repeat(&0u8).take(tail)) {
            assert!(bit <= 1, "input bits must be 0 or 1");
            let (a, b) = self.output(state, bit);
            out.push(a);
            out.push(b);
            state = self.next_state(state, bit);
        }
        out
    }

    /// Hard-decision Viterbi decoding of a sequence produced by
    /// [`encode`](Self::encode) (possibly with bit errors).  Returns the
    /// decoded data bits with the tail removed.
    ///
    /// # Panics
    ///
    /// Panics if the input length is odd.
    #[must_use]
    pub fn decode(&self, received: &[u8]) -> Vec<u8> {
        assert!(
            received.len() % 2 == 0,
            "rate-1/2 stream must have even length"
        );
        let steps = received.len() / 2;
        let tail = (self.constraint_length - 1) as usize;
        if steps == 0 {
            return Vec::new();
        }
        let states = self.states();
        const INFINITY: u32 = u32::MAX / 2;
        let mut metric = vec![INFINITY; states];
        metric[0] = 0;
        // survivors[t][state] = (previous state, input bit)
        let mut survivors: Vec<Vec<(u32, u8)>> = Vec::with_capacity(steps);
        for t in 0..steps {
            let observed = (received[2 * t], received[2 * t + 1]);
            let mut next_metric = vec![INFINITY; states];
            let mut survivor = vec![(0u32, 0u8); states];
            for (state, &m) in metric.iter().enumerate() {
                if m >= INFINITY {
                    continue;
                }
                for input in 0..=1u8 {
                    let (a, b) = self.output(state as u32, input);
                    let distance = u32::from(a != observed.0) + u32::from(b != observed.1);
                    let next = self.next_state(state as u32, input) as usize;
                    let candidate = m + distance;
                    if candidate < next_metric[next] {
                        next_metric[next] = candidate;
                        survivor[next] = (state as u32, input);
                    }
                }
            }
            metric = next_metric;
            survivors.push(survivor);
        }
        // Trace back from the best final state (state 0 if the tail was
        // transmitted, otherwise the minimum-metric state).
        let mut state = if metric[0] < INFINITY {
            0usize
        } else {
            metric
                .iter()
                .enumerate()
                .min_by_key(|(_, &m)| m)
                .map(|(s, _)| s)
                .unwrap_or(0)
        };
        let mut bits = vec![0u8; steps];
        for t in (0..steps).rev() {
            let (previous, input) = survivors[t][state];
            bits[t] = input;
            state = previous as usize;
        }
        bits.truncate(steps.saturating_sub(tail));
        bits
    }

    /// Encodes a byte slice (MSB first per byte).
    #[must_use]
    pub fn encode_bytes(&self, data: &[u8]) -> Vec<u8> {
        let bits: Vec<u8> = data
            .iter()
            .flat_map(|&byte| (0..8).rev().map(move |i| (byte >> i) & 1))
            .collect();
        self.encode(&bits)
    }

    /// Decodes a stream produced by [`encode_bytes`](Self::encode_bytes).
    #[must_use]
    pub fn decode_bytes(&self, received: &[u8]) -> Vec<u8> {
        let bits = self.decode(received);
        bits.chunks(8)
            .filter(|chunk| chunk.len() == 8)
            .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | b))
            .collect()
    }
}

impl Default for ConvolutionalCode {
    fn default() -> Self {
        Self::ccsds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ccsds_parameters() {
        let code = ConvolutionalCode::ccsds();
        assert_eq!(code.constraint_length(), 7);
        assert_eq!(code.states(), 64);
        assert_eq!(code.output_bits_per_input(), 2);
    }

    #[test]
    #[should_panic(expected = "constraint length")]
    fn rejects_bad_constraint_length() {
        let _ = ConvolutionalCode::new(1, 0b1, 0b1);
    }

    #[test]
    fn encode_length_includes_tail() {
        let code = ConvolutionalCode::ccsds();
        let encoded = code.encode(&[1, 0, 1]);
        assert_eq!(encoded.len(), 2 * (3 + 6));
        assert!(encoded.iter().all(|&b| b <= 1));
    }

    #[test]
    fn clean_round_trip() {
        let code = ConvolutionalCode::ccsds();
        let data = vec![1u8, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1];
        assert_eq!(code.decode(&code.encode(&data)), data);
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let code = ConvolutionalCode::ccsds();
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<u8> = (0..200).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut encoded = code.encode(&data);
        // Flip ~3 % of the bits, well separated.
        let mut flipped = 0;
        let mut i = 5;
        while i < encoded.len() {
            encoded[i] ^= 1;
            flipped += 1;
            i += 37;
        }
        assert!(flipped > 5);
        assert_eq!(code.decode(&encoded), data);
    }

    #[test]
    fn byte_round_trip() {
        let code = ConvolutionalCode::ccsds();
        let data = b"optical downlink".to_vec();
        let encoded = code.encode_bytes(&data);
        assert_eq!(code.decode_bytes(&encoded), data);
    }

    #[test]
    fn dense_burst_overwhelms_the_code_alone() {
        // A long burst of errors exceeds the free distance; this is exactly
        // why the outer RS code and the interleaver exist.
        let code = ConvolutionalCode::ccsds();
        let data = vec![1u8; 64];
        let mut encoded = code.encode(&data);
        for bit in encoded.iter_mut().skip(20).take(40) {
            *bit ^= 1;
        }
        assert_ne!(code.decode(&encoded), data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn round_trip_random_data(bits in proptest::collection::vec(0u8..=1, 1..200)) {
            let code = ConvolutionalCode::ccsds();
            prop_assert_eq!(code.decode(&code.encode(&bits)), bits);
        }

        #[test]
        fn single_bit_error_is_always_corrected(
            bits in proptest::collection::vec(0u8..=1, 8..64),
            error_pos_seed in 0usize..1000,
        ) {
            let code = ConvolutionalCode::ccsds();
            let mut encoded = code.encode(&bits);
            let pos = error_pos_seed % encoded.len();
            encoded[pos] ^= 1;
            prop_assert_eq!(code.decode(&encoded), bits);
        }
    }
}
