//! # tbi-satcom — optical LEO downlink substrate
//!
//! The paper motivates its DRAM mapping with free-space optical downlinks
//! from low-earth-orbit satellites: data rates beyond 100 Gbit/s, channel
//! coherence times above 2 ms, and therefore burst errors that only a *very*
//! large interleaver can break up.  This crate provides the surrounding
//! system so the interleaver can be exercised end to end:
//!
//! * [`gf256`] / [`reed_solomon`] — a GF(2⁸) Reed–Solomon codec
//!   (RS(255, 223) by default), the classic FEC for satellite links;
//! * [`channel`] — burst-error channel models (Gilbert–Elliott and a
//!   coherence-time fading model of the optical channel);
//! * [`profile`] — time-varying downlink passes: elevation/weather segments
//!   that retune the burst channel's state probabilities over the pass;
//! * [`link`] — the end-to-end pipeline
//!   *encode → interleave → channel → de-interleave → decode* with
//!   frame/bit error rate measurement, demonstrating the interleaving gain;
//! * [`budget`] — data-rate ⇄ DRAM-bandwidth budgeting, quantifying how much
//!   a DRAM configuration must be over-provisioned at a given bandwidth
//!   utilization.
//!
//! ## Quick start
//!
//! ```
//! use rand::SeedableRng;
//! use tbi_satcom::channel::GilbertElliott;
//! use tbi_satcom::link::{InterleaverChoice, LinkConfig, LinkSimulation};
//!
//! # fn main() -> Result<(), tbi_satcom::SatcomError> {
//! let config = LinkConfig {
//!     rs_data_len: 223,
//!     rs_code_len: 255,
//!     codewords: 40,
//!     interleaver: InterleaverChoice::Triangular,
//! };
//! let channel = GilbertElliott::optical_downlink(0.02);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let report = LinkSimulation::new(config)?.run(&channel, &mut rng)?;
//! assert!(report.frame_error_rate() <= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod channel;
pub mod concatenated;
pub mod convolutional;
pub mod gf256;
pub mod link;
pub mod profile;
pub mod reed_solomon;

pub use budget::BandwidthBudget;
pub use channel::{CoherenceFading, GilbertElliott, SymbolChannel};
pub use concatenated::{ConcatenatedCode, ConcatenatedConfig};
pub use convolutional::ConvolutionalCode;
pub use gf256::Gf256;
pub use link::{LinkConfig, LinkReport, LinkSimulation};
pub use profile::{LinkProfile, PassSegment, Weather};
pub use reed_solomon::ReedSolomon;

/// Errors produced by the satcom substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SatcomError {
    /// Reed–Solomon parameters are invalid (e.g. `k >= n` or `n > 255`).
    InvalidCodeParameters {
        /// Explanation of the problem.
        reason: String,
    },
    /// A code word could not be corrected (more errors than the code can fix).
    DecodingFailure {
        /// Number of errors detected by the decoder before giving up.
        detected_errors: usize,
    },
    /// Link or interleaver configuration is inconsistent.
    InvalidLinkConfig {
        /// Explanation of the problem.
        reason: String,
    },
    /// Error propagated from the interleaver crate.
    Interleaver(tbi_interleaver::InterleaverError),
}

impl std::fmt::Display for SatcomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SatcomError::InvalidCodeParameters { reason } => {
                write!(f, "invalid Reed-Solomon parameters: {reason}")
            }
            SatcomError::DecodingFailure { detected_errors } => {
                write!(f, "decoding failure with {detected_errors} detected errors")
            }
            SatcomError::InvalidLinkConfig { reason } => {
                write!(f, "invalid link configuration: {reason}")
            }
            SatcomError::Interleaver(e) => write!(f, "interleaver error: {e}"),
        }
    }
}

impl std::error::Error for SatcomError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SatcomError::Interleaver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tbi_interleaver::InterleaverError> for SatcomError {
    fn from(value: tbi_interleaver::InterleaverError) -> Self {
        SatcomError::Interleaver(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let err = SatcomError::InvalidCodeParameters {
            reason: "k >= n".to_string(),
        };
        assert!(err.to_string().contains("k >= n"));
        let err = SatcomError::DecodingFailure {
            detected_errors: 17,
        };
        assert!(err.to_string().contains("17"));
    }

    #[test]
    fn interleaver_errors_convert_with_source() {
        let inner = tbi_interleaver::InterleaverError::InvalidDimension {
            reason: "zero".to_string(),
        };
        let err: SatcomError = inner.into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
