//! Burst-error channel models for the optical LEO downlink.
//!
//! The optical channel suffers from scintillation and pointing jitter with a
//! coherence time above 2 ms: errors arrive in long bursts rather than being
//! uniformly spread.  Two models are provided:
//!
//! * [`GilbertElliott`] — the classic two-state burst-error model;
//! * [`CoherenceFading`] — an on/off outage model parameterised directly by
//!   the coherence time and the link symbol rate.
//!
//! Both operate on byte symbols (matching the Reed–Solomon codec).

use rand::Rng;

/// A channel model that corrupts a stream of byte symbols.
pub trait SymbolChannel {
    /// Returns a corrupted copy of `data`.
    fn corrupt<R: Rng + ?Sized>(&self, data: &[u8], rng: &mut R) -> Vec<u8>;

    /// The long-run average symbol error probability of the model.
    fn average_symbol_error_rate(&self) -> f64;
}

/// The two-state Gilbert–Elliott burst-error channel.
///
/// The channel is either in the *good* state (low error probability) or the
/// *bad* state (high error probability); transitions follow a Markov chain.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tbi_satcom::channel::{GilbertElliott, SymbolChannel};
///
/// let channel = GilbertElliott::optical_downlink(0.05);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let clean = vec![0u8; 10_000];
/// let received = channel.corrupt(&clean, &mut rng);
/// let errors = received.iter().filter(|&&b| b != 0).count();
/// assert!(errors > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability of switching from the good to the bad state per symbol.
    pub p_good_to_bad: f64,
    /// Probability of switching from the bad to the good state per symbol.
    pub p_bad_to_good: f64,
    /// Symbol error probability in the good state.
    pub error_rate_good: f64,
    /// Symbol error probability in the bad state.
    pub error_rate_bad: f64,
}

impl GilbertElliott {
    /// Creates a new Gilbert–Elliott channel.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        error_rate_good: f64,
        error_rate_bad: f64,
    ) -> Self {
        for (name, p) in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("error_rate_good", error_rate_good),
            ("error_rate_bad", error_rate_bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        Self {
            p_good_to_bad,
            p_bad_to_good,
            error_rate_good,
            error_rate_bad,
        }
    }

    /// A bursty profile representative of an optical downlink during partial
    /// fades: long good periods, occasional bad periods of a few hundred
    /// symbols with the given symbol error rate inside the burst.
    #[must_use]
    pub fn optical_downlink(burst_error_rate: f64) -> Self {
        Self::new(0.0005, 0.01, 1e-5, burst_error_rate)
    }

    /// Stationary probability of being in the bad state.
    #[must_use]
    pub fn bad_state_probability(&self) -> f64 {
        if self.p_good_to_bad + self.p_bad_to_good == 0.0 {
            0.0
        } else {
            self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        }
    }

    /// Mean burst (bad-state sojourn) length in symbols.
    #[must_use]
    pub fn mean_burst_length(&self) -> f64 {
        if self.p_bad_to_good == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.p_bad_to_good
        }
    }
}

impl SymbolChannel for GilbertElliott {
    fn corrupt<R: Rng + ?Sized>(&self, data: &[u8], rng: &mut R) -> Vec<u8> {
        let mut bad_state = rng.gen_bool(self.bad_state_probability());
        data.iter()
            .map(|&symbol| {
                let error_rate = if bad_state {
                    self.error_rate_bad
                } else {
                    self.error_rate_good
                };
                let out = if error_rate > 0.0 && rng.gen_bool(error_rate) {
                    symbol ^ rng.gen_range(1..=255u8)
                } else {
                    symbol
                };
                let transition = if bad_state {
                    self.p_bad_to_good
                } else {
                    self.p_good_to_bad
                };
                if transition > 0.0 && rng.gen_bool(transition) {
                    bad_state = !bad_state;
                }
                out
            })
            .collect()
    }

    fn average_symbol_error_rate(&self) -> f64 {
        let p_bad = self.bad_state_probability();
        p_bad * self.error_rate_bad + (1.0 - p_bad) * self.error_rate_good
    }
}

/// An on/off outage model parameterised by the channel coherence time.
///
/// During an outage (fade), every symbol is corrupted with probability
/// `outage_error_rate`; outside outages the channel is error free.  Outage
/// and clear durations are sampled geometrically with means derived from the
/// coherence time and the symbol rate, producing error bursts of millions of
/// symbols at 100 Gbit/s-class rates — exactly the situation that forces the
/// interleaver into DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceFading {
    /// Mean outage duration in symbols.
    pub mean_outage_symbols: f64,
    /// Mean clear-sky duration in symbols.
    pub mean_clear_symbols: f64,
    /// Symbol error probability during an outage.
    pub outage_error_rate: f64,
}

impl CoherenceFading {
    /// Creates a fading model from physical link parameters.
    ///
    /// * `coherence_time_ms` — channel coherence time (the paper quotes
    ///   more than 2 ms);
    /// * `symbol_rate_msps` — symbol rate in mega-symbols per second;
    /// * `outage_fraction` — long-run fraction of time spent in outage;
    /// * `outage_error_rate` — symbol error probability during an outage.
    ///
    /// # Panics
    ///
    /// Panics if `outage_fraction` is not within `(0, 1)` or other parameters
    /// are non-positive.
    #[must_use]
    pub fn from_link(
        coherence_time_ms: f64,
        symbol_rate_msps: f64,
        outage_fraction: f64,
        outage_error_rate: f64,
    ) -> Self {
        assert!(coherence_time_ms > 0.0 && symbol_rate_msps > 0.0);
        assert!((0.0..1.0).contains(&outage_fraction) && outage_fraction > 0.0);
        let mean_outage_symbols = coherence_time_ms * 1e-3 * symbol_rate_msps * 1e6;
        let mean_clear_symbols = mean_outage_symbols * (1.0 - outage_fraction) / outage_fraction;
        Self {
            mean_outage_symbols,
            mean_clear_symbols,
            outage_error_rate,
        }
    }

    fn sample_duration<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
        // Geometric with the given mean, at least 1.
        let p = (1.0 / mean).clamp(1e-12, 1.0);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        ((u.ln() / (1.0 - p).ln()).ceil().max(1.0)) as u64
    }
}

impl SymbolChannel for CoherenceFading {
    fn corrupt<R: Rng + ?Sized>(&self, data: &[u8], rng: &mut R) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        let mut index = 0usize;
        let mut in_outage = rng.gen_bool(
            self.mean_outage_symbols / (self.mean_outage_symbols + self.mean_clear_symbols),
        );
        while index < data.len() {
            let duration = if in_outage {
                Self::sample_duration(self.mean_outage_symbols, rng)
            } else {
                Self::sample_duration(self.mean_clear_symbols, rng)
            } as usize;
            let end = (index + duration).min(data.len());
            for &symbol in &data[index..end] {
                if in_outage && rng.gen_bool(self.outage_error_rate) {
                    out.push(symbol ^ rng.gen_range(1..=255u8));
                } else {
                    out.push(symbol);
                }
            }
            index = end;
            in_outage = !in_outage;
        }
        out
    }

    fn average_symbol_error_rate(&self) -> f64 {
        let outage_fraction =
            self.mean_outage_symbols / (self.mean_outage_symbols + self.mean_clear_symbols);
        outage_fraction * self.outage_error_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gilbert_elliott_stationary_probability() {
        let channel = GilbertElliott::new(0.01, 0.04, 0.0, 0.5);
        assert!((channel.bad_state_probability() - 0.2).abs() < 1e-12);
        assert!((channel.mean_burst_length() - 25.0).abs() < 1e-12);
        assert!((channel.average_symbol_error_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn gilbert_elliott_rejects_bad_probability() {
        let _ = GilbertElliott::new(1.5, 0.1, 0.0, 0.5);
    }

    #[test]
    fn gilbert_elliott_produces_bursty_errors() {
        let channel = GilbertElliott::new(0.002, 0.02, 0.0, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        let clean = vec![0u8; 200_000];
        let received = channel.corrupt(&clean, &mut rng);
        assert_eq!(received.len(), clean.len());
        let errors: Vec<usize> = received
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != 0)
            .map(|(i, _)| i)
            .collect();
        let observed_rate = errors.len() as f64 / clean.len() as f64;
        let expected = channel.average_symbol_error_rate();
        assert!(
            (observed_rate - expected).abs() < expected * 0.5,
            "observed {observed_rate}, expected about {expected}"
        );
        // Burstiness: the average gap between consecutive errors must be much
        // smaller than for a uniform channel of the same rate (errors
        // cluster), i.e. many adjacent error pairs exist.
        let adjacent = errors.windows(2).filter(|w| w[1] - w[0] <= 2).count();
        assert!(
            adjacent as f64 > errors.len() as f64 * 0.3,
            "errors are not bursty: {adjacent} adjacent of {}",
            errors.len()
        );
    }

    #[test]
    fn coherence_fading_respects_outage_fraction() {
        let channel = CoherenceFading::from_link(2.0, 1.0, 0.1, 1.0);
        // 2 ms at 1 Msps = 2000 symbols of outage on average.
        assert!((channel.mean_outage_symbols - 2000.0).abs() < 1e-9);
        assert!((channel.average_symbol_error_rate() - 0.1).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(11);
        let clean = vec![0u8; 400_000];
        let received = channel.corrupt(&clean, &mut rng);
        let errors = received.iter().filter(|&&b| b != 0).count();
        let rate = errors as f64 / clean.len() as f64;
        assert!(rate > 0.02 && rate < 0.3, "outage fraction off: {rate}");
    }

    #[test]
    fn error_free_channel_passes_data_through() {
        let channel = GilbertElliott::new(0.0, 1.0, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(channel.corrupt(&data, &mut rng), data);
    }
}
