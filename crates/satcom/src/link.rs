//! End-to-end link simulation: encode → interleave → channel → de-interleave
//! → decode.
//!
//! This module demonstrates the *interleaving gain* that motivates the paper:
//! on a bursty optical channel, a Reed–Solomon code alone collapses because a
//! single fade wipes out more symbols of one code word than it can correct,
//! while the same code behind a large triangular block interleaver sees the
//! fade spread thinly over many code words and corrects it.

use rand::Rng;

use tbi_interleaver::triangular::TriangularInterleaver;

use crate::channel::SymbolChannel;
use crate::reed_solomon::ReedSolomon;
use crate::SatcomError;

/// Which interleaver (if any) to place between the encoder and the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterleaverChoice {
    /// No interleaving: code words are transmitted back to back.
    None,
    /// A triangular block interleaver sized to cover all code words of the
    /// simulation run.
    Triangular,
}

/// Configuration of a link simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Reed–Solomon code word length `n` (symbols).
    pub rs_code_len: usize,
    /// Reed–Solomon data length `k` (symbols).
    pub rs_data_len: usize,
    /// Number of code words transmitted per run.
    pub codewords: usize,
    /// Interleaver placed between encoder and channel.
    pub interleaver: InterleaverChoice,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            rs_code_len: 255,
            rs_data_len: 223,
            codewords: 64,
            interleaver: InterleaverChoice::Triangular,
        }
    }
}

/// Result of a link simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkReport {
    /// Number of code words transmitted.
    pub codewords: usize,
    /// Number of code words that could not be decoded correctly.
    pub codeword_failures: usize,
    /// Number of symbol errors observed on the channel (before decoding).
    pub channel_symbol_errors: usize,
    /// Number of data symbols that differ after decoding.
    pub residual_symbol_errors: usize,
    /// Number of data *bits* that differ after decoding.
    pub residual_bit_errors: usize,
    /// Number of payload data symbols carried by the run (`codewords · k`).
    pub data_symbols: usize,
    /// Total number of transmitted symbols.
    pub transmitted_symbols: usize,
}

impl LinkReport {
    /// Frame (code word) error rate after decoding.
    #[must_use]
    pub fn frame_error_rate(&self) -> f64 {
        if self.codewords == 0 {
            0.0
        } else {
            self.codeword_failures as f64 / self.codewords as f64
        }
    }

    /// Symbol error rate on the channel (before decoding).
    #[must_use]
    pub fn channel_symbol_error_rate(&self) -> f64 {
        if self.transmitted_symbols == 0 {
            0.0
        } else {
            self.channel_symbol_errors as f64 / self.transmitted_symbols as f64
        }
    }

    /// Residual (post-decoding) symbol error rate.
    #[must_use]
    pub fn residual_symbol_error_rate(&self) -> f64 {
        let data_symbols = self.transmitted_symbols;
        if data_symbols == 0 {
            0.0
        } else {
            self.residual_symbol_errors as f64 / data_symbols as f64
        }
    }

    /// Post-FEC bit error rate: residual data-bit errors over the payload
    /// data bits (`codewords · k · 8`).
    #[must_use]
    pub fn post_fec_ber(&self) -> f64 {
        if self.data_symbols == 0 {
            0.0
        } else {
            self.residual_bit_errors as f64 / (self.data_symbols as f64 * 8.0)
        }
    }

    /// Merges another report into this one (summing the counters), for
    /// averaging several independent interleaver blocks of one pass.
    pub fn accumulate(&mut self, other: &LinkReport) {
        self.codewords += other.codewords;
        self.codeword_failures += other.codeword_failures;
        self.channel_symbol_errors += other.channel_symbol_errors;
        self.residual_symbol_errors += other.residual_symbol_errors;
        self.residual_bit_errors += other.residual_bit_errors;
        self.data_symbols += other.data_symbols;
        self.transmitted_symbols += other.transmitted_symbols;
    }
}

/// An end-to-end link simulation.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tbi_satcom::channel::GilbertElliott;
/// use tbi_satcom::link::{InterleaverChoice, LinkConfig, LinkSimulation};
///
/// # fn main() -> Result<(), tbi_satcom::SatcomError> {
/// let config = LinkConfig { codewords: 16, ..LinkConfig::default() };
/// let simulation = LinkSimulation::new(config)?;
/// let channel = GilbertElliott::optical_downlink(0.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let report = simulation.run(&channel, &mut rng)?;
/// assert_eq!(report.codewords, 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinkSimulation {
    config: LinkConfig,
    code: ReedSolomon,
}

impl LinkSimulation {
    /// Creates a simulation for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SatcomError::InvalidCodeParameters`] for invalid RS
    /// parameters or [`SatcomError::InvalidLinkConfig`] if `codewords` is 0.
    pub fn new(config: LinkConfig) -> Result<Self, SatcomError> {
        if config.codewords == 0 {
            return Err(SatcomError::InvalidLinkConfig {
                reason: "at least one code word is required".to_string(),
            });
        }
        let code = ReedSolomon::new(config.rs_code_len, config.rs_data_len)?;
        Ok(Self { config, code })
    }

    /// The Reed–Solomon code used by this link.
    #[must_use]
    pub fn code(&self) -> &ReedSolomon {
        &self.code
    }

    /// The configuration of this link.
    #[must_use]
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Runs one simulation: random data for every code word, encoding,
    /// (optional) interleaving, channel corruption, de-interleaving and
    /// decoding.
    ///
    /// # Errors
    ///
    /// Returns [`SatcomError::Interleaver`] if the interleaver construction
    /// fails (it cannot for valid configurations).
    pub fn run<C, R>(&self, channel: &C, rng: &mut R) -> Result<LinkReport, SatcomError>
    where
        C: SymbolChannel,
        R: Rng + ?Sized,
    {
        let n = self.code.code_len();
        let k = self.code.data_len();
        let codewords = self.config.codewords;

        // Encode.
        let mut data_blocks = Vec::with_capacity(codewords);
        let mut stream = Vec::with_capacity(codewords * n);
        for _ in 0..codewords {
            let data: Vec<u8> = (0..k).map(|_| rng.gen()).collect();
            let codeword = self.code.encode(&data)?;
            stream.extend_from_slice(&codeword);
            data_blocks.push(data);
        }

        // Interleave.
        let (tx, interleaver, padding) = match self.config.interleaver {
            InterleaverChoice::None => (stream.clone(), None, 0usize),
            InterleaverChoice::Triangular => {
                let interleaver = TriangularInterleaver::with_capacity(stream.len() as u64)?;
                let padding = interleaver.len() as usize - stream.len();
                let mut padded = stream.clone();
                padded.resize(interleaver.len() as usize, 0);
                (interleaver.interleave(&padded)?, Some(interleaver), padding)
            }
        };

        // Channel.
        let received = channel.corrupt(&tx, rng);
        let channel_symbol_errors = received
            .iter()
            .zip(tx.iter())
            .filter(|(a, b)| a != b)
            .count();

        // De-interleave.
        let restored = match &interleaver {
            None => received,
            Some(interleaver) => {
                let mut deinterleaved = interleaver.deinterleave(&received)?;
                deinterleaved.truncate(interleaver.len() as usize - padding);
                deinterleaved
            }
        };

        // Decode and compare.
        let mut codeword_failures = 0usize;
        let mut residual_symbol_errors = 0usize;
        let mut residual_bit_errors = 0usize;
        let count_errors = |a: &[u8], b: &[u8]| {
            let symbols = a.iter().zip(b).filter(|(x, y)| x != y).count();
            let bits: u32 = a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum();
            (symbols, bits as usize)
        };
        for (block, original) in restored.chunks(n).zip(data_blocks.iter()) {
            match self.code.decode(block) {
                Ok(decoded) if &decoded == original => {}
                Ok(decoded) => {
                    codeword_failures += 1;
                    let (symbols, bits) = count_errors(&decoded, original);
                    residual_symbol_errors += symbols;
                    residual_bit_errors += bits;
                }
                Err(_) => {
                    codeword_failures += 1;
                    // Count the uncorrected errors in the data portion.
                    let (symbols, bits) = count_errors(&block[..k], original);
                    residual_symbol_errors += symbols;
                    residual_bit_errors += bits;
                }
            }
        }

        Ok(LinkReport {
            codewords,
            codeword_failures,
            channel_symbol_errors,
            residual_symbol_errors,
            residual_bit_errors,
            data_symbols: codewords * k,
            transmitted_symbols: tx.len(),
        })
    }
}

/// Runs the same channel realisation class with and without interleaving and
/// returns both reports `(without, with)` — the classic interleaving-gain
/// comparison.
///
/// # Errors
///
/// Propagates configuration errors from [`LinkSimulation::new`].
pub fn interleaving_gain<C, R>(
    base_config: LinkConfig,
    channel: &C,
    rng: &mut R,
) -> Result<(LinkReport, LinkReport), SatcomError>
where
    C: SymbolChannel,
    R: Rng + ?Sized,
{
    let without = LinkSimulation::new(LinkConfig {
        interleaver: InterleaverChoice::None,
        ..base_config
    })?
    .run(channel, rng)?;
    let with = LinkSimulation::new(LinkConfig {
        interleaver: InterleaverChoice::Triangular,
        ..base_config
    })?
    .run(channel, rng)?;
    Ok((without, with))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::GilbertElliott;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_zero_codewords() {
        let config = LinkConfig {
            codewords: 0,
            ..LinkConfig::default()
        };
        assert!(matches!(
            LinkSimulation::new(config),
            Err(SatcomError::InvalidLinkConfig { .. })
        ));
    }

    #[test]
    fn clean_channel_has_no_failures() {
        let config = LinkConfig {
            codewords: 8,
            ..LinkConfig::default()
        };
        let simulation = LinkSimulation::new(config).unwrap();
        let channel = GilbertElliott::new(0.0, 1.0, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulation.run(&channel, &mut rng).unwrap();
        assert_eq!(report.codeword_failures, 0);
        assert_eq!(report.channel_symbol_errors, 0);
        assert_eq!(report.frame_error_rate(), 0.0);
        assert_eq!(report.residual_symbol_error_rate(), 0.0);
    }

    #[test]
    fn interleaving_reduces_frame_errors_on_bursty_channel() {
        // A bursty channel whose bursts exceed the RS correction capability
        // within one code word, but whose average error rate is well below it.
        let channel = GilbertElliott::new(0.001, 0.02, 0.0, 0.6);
        let config = LinkConfig {
            rs_code_len: 255,
            rs_data_len: 223,
            codewords: 60,
            interleaver: InterleaverChoice::Triangular,
        };
        let mut rng = StdRng::seed_from_u64(2024);
        let (without, with) = interleaving_gain(config, &channel, &mut rng).unwrap();
        assert!(
            with.frame_error_rate() < without.frame_error_rate(),
            "interleaving must reduce the frame error rate: {} vs {}",
            with.frame_error_rate(),
            without.frame_error_rate()
        );
        assert!(
            without.frame_error_rate() > 0.0,
            "burst channel too gentle for the test"
        );
    }

    #[test]
    fn report_rates_are_consistent() {
        let report = LinkReport {
            codewords: 10,
            codeword_failures: 2,
            channel_symbol_errors: 100,
            residual_symbol_errors: 30,
            residual_bit_errors: 90,
            data_symbols: 2230,
            transmitted_symbols: 2550,
        };
        assert!((report.frame_error_rate() - 0.2).abs() < 1e-12);
        assert!((report.channel_symbol_error_rate() - 100.0 / 2550.0).abs() < 1e-12);
        assert!(report.residual_symbol_error_rate() > 0.0);
        assert!((report.post_fec_ber() - 90.0 / (2230.0 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_counters() {
        let mut total = LinkReport {
            codewords: 4,
            codeword_failures: 1,
            channel_symbol_errors: 10,
            residual_symbol_errors: 3,
            residual_bit_errors: 7,
            data_symbols: 892,
            transmitted_symbols: 1020,
        };
        total.accumulate(&total.clone());
        assert_eq!(total.codewords, 8);
        assert_eq!(total.residual_bit_errors, 14);
        assert_eq!(total.data_symbols, 1784);
        assert!((total.frame_error_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn run_reports_bit_errors_consistent_with_symbol_errors() {
        // A harsh channel without interleaving guarantees residual errors.
        let channel = GilbertElliott::new(0.01, 0.01, 0.1, 0.8);
        let config = LinkConfig {
            codewords: 12,
            interleaver: InterleaverChoice::None,
            ..LinkConfig::default()
        };
        let simulation = LinkSimulation::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let report = simulation.run(&channel, &mut rng).unwrap();
        assert_eq!(report.data_symbols, 12 * 223);
        assert!(report.residual_symbol_errors > 0);
        // Every wrong symbol contributes between 1 and 8 wrong bits.
        assert!(report.residual_bit_errors >= report.residual_symbol_errors);
        assert!(report.residual_bit_errors <= report.residual_symbol_errors * 8);
        assert!(report.post_fec_ber() > 0.0);
    }
}
