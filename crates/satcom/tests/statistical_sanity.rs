//! Statistical sanity of the time-varying pass model and the FEC
//! waterfall: the empirical behaviour of every campaign channel must match
//! its closed-form stationary description, and adding Reed–Solomon parity
//! must never make the post-FEC error rate worse on the same pass.
//!
//! All tests are seeded, so they are deterministic; the tolerances are
//! several standard errors wide at the chosen sample sizes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbi_satcom::channel::{GilbertElliott, SymbolChannel};
use tbi_satcom::link::{InterleaverChoice, LinkConfig, LinkSimulation};
use tbi_satcom::{LinkProfile, Weather};

/// The campaign bench's pass shape (clear-sky 45° LEO pass).
fn campaign_pass() -> LinkProfile {
    LinkProfile::leo_pass(45.0, Weather::Clear)
}

/// Every segment's empirical symbol error rate must match the closed-form
/// stationary value `π_bad · e_bad + (1 − π_bad) · e_good` of its retuned
/// Gilbert–Elliott channel.
#[test]
fn per_segment_error_rate_matches_the_stationary_closed_form() {
    const SYMBOLS: usize = 1_000_000;
    for (index, segment) in campaign_pass().segments().iter().enumerate() {
        let channel = segment.channel();
        let expected = channel.average_symbol_error_rate();
        assert!(expected > 0.0);
        let mut rng = StdRng::seed_from_u64(0xA11CE + index as u64);
        let received = channel.corrupt(&vec![0u8; SYMBOLS], &mut rng);
        #[allow(clippy::cast_precision_loss)]
        let observed = received.iter().filter(|&&b| b != 0).count() as f64 / SYMBOLS as f64;
        assert!(
            (observed - expected).abs() <= expected * 0.15,
            "segment {index} ({}°): observed {observed:.3e}, stationary {expected:.3e}",
            segment.elevation_deg
        );
    }
}

/// The Markov dynamics behind every segment: with the error rates pinned to
/// (0, 1) the error process *is* the state process, so the empirical
/// bad-state occupancy must match `p_g2b / (p_g2b + p_b2g)` and the mean
/// error-run length must match the mean fade duration `1 / p_b2g`.
#[test]
fn per_segment_fade_occupancy_and_burst_length_match_the_markov_chain() {
    const SYMBOLS: usize = 1_000_000;
    for (index, segment) in campaign_pass().segments().iter().enumerate() {
        let tuned = segment.channel();
        let observable = GilbertElliott::new(tuned.p_good_to_bad, tuned.p_bad_to_good, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0xFADE + index as u64);
        let received = observable.corrupt(&vec![0u8; SYMBOLS], &mut rng);

        let mut bad_symbols = 0usize;
        let mut runs = Vec::new();
        let mut current = 0usize;
        for &symbol in &received {
            if symbol != 0 {
                bad_symbols += 1;
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        if current > 0 {
            runs.push(current);
        }

        #[allow(clippy::cast_precision_loss)]
        let occupancy = bad_symbols as f64 / SYMBOLS as f64;
        let expected_occupancy = tuned.bad_state_probability();
        assert!(
            (occupancy - expected_occupancy).abs() <= expected_occupancy * 0.15,
            "segment {index}: occupancy {occupancy:.3e}, stationary {expected_occupancy:.3e}"
        );

        assert!(runs.len() > 100, "segment {index}: too few fades sampled");
        #[allow(clippy::cast_precision_loss)]
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        let expected_run = tuned.mean_burst_length();
        assert!(
            (mean_run - expected_run).abs() <= expected_run * 0.15,
            "segment {index}: mean fade {mean_run:.1}, Markov mean {expected_run:.1}"
        );
    }
}

/// The code-rate leg of the campaign waterfall: on the same pass, stepping
/// to a lower code rate (more parity symbols) must never raise the post-FEC
/// BER, and the extra parity across the whole axis must strictly help.
#[test]
fn more_parity_never_raises_the_post_fec_ber_on_the_campaign_pass() {
    let pass = campaign_pass();
    let mut bers = Vec::new();
    for &(k, n) in &[(239usize, 255usize), (231, 255), (223, 255)] {
        let simulation = LinkSimulation::new(LinkConfig {
            rs_code_len: n,
            rs_data_len: k,
            codewords: 32,
            interleaver: InterleaverChoice::Triangular,
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0x5A11);
        let mut total = simulation.run(&pass, &mut rng).unwrap();
        for _ in 1..12 {
            let report = simulation.run(&pass, &mut rng).unwrap();
            total.accumulate(&report);
        }
        bers.push(total.post_fec_ber());
    }
    assert!(
        bers[0] > 0.0,
        "the lightest code must leave residual errors, or the axis pins nothing"
    );
    for (pair, rates) in bers.windows(2).zip([(239, 231), (231, 223)]) {
        assert!(
            pair[1] <= pair[0],
            "rate {}→{}: BER rose from {:.3e} to {:.3e}",
            rates.0,
            rates.1,
            pair[0],
            pair[1]
        );
    }
    assert!(
        *bers.last().unwrap() < bers[0],
        "the full parity sweep must strictly reduce the post-FEC BER"
    );
}
