//! Round-trip tests for the GF(2⁸) arithmetic and the Reed–Solomon codec
//! against a *burst-error* channel: encode → Gilbert–Elliott corruption →
//! decode must recover the data whenever the channel left at most
//! `t = (n - k) / 2` corrupted symbols in the code word.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tbi_satcom::channel::{GilbertElliott, SymbolChannel};
use tbi_satcom::{Gf256, ReedSolomon, SatcomError};

/// Number of symbol positions where the two slices differ.
fn symbol_errors(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[test]
fn gf256_roundtrips_through_log_antilog() {
    let gf = Gf256::new();
    for a in 1..=255u8 {
        assert_eq!(
            gf.alpha_pow(u32::from(gf.log(a))),
            a,
            "log/alpha_pow of {a}"
        );
        assert_eq!(gf.mul(a, gf.inv(a)), 1, "a * a^-1 for {a}");
        assert_eq!(
            gf.div(gf.mul(a, 0x53), a),
            0x53,
            "mul/div round trip for {a}"
        );
    }
}

#[test]
fn rs_recovers_everything_the_burst_channel_leaves_correctable() {
    let rs = ReedSolomon::ccsds();
    let t = rs.correction_capability();
    let channel = GilbertElliott::optical_downlink(0.03);

    let mut recovered = 0usize;
    let mut correctable = 0usize;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(9_000 + seed);
        let data: Vec<u8> = (0..rs.data_len()).map(|_| rng.gen()).collect();
        let codeword = rs.encode(&data).unwrap();
        let corrupted = channel.corrupt(&codeword, &mut rng);
        assert_eq!(corrupted.len(), codeword.len());

        let errors = symbol_errors(&codeword, &corrupted);
        if errors <= t {
            correctable += 1;
            assert_eq!(
                rs.decode(&corrupted).unwrap(),
                data,
                "seed {seed}: {errors} symbol errors (t = {t}) must decode"
            );
            recovered += 1;
        }
    }
    // The channel parameters are chosen so a healthy share of frames is
    // correctable; if none were, the test would be vacuous.
    assert!(
        correctable >= 10,
        "only {correctable}/40 frames were correctable"
    );
    assert_eq!(recovered, correctable);
}

#[test]
fn rs_roundtrip_is_clean_on_a_quiet_channel() {
    let rs = ReedSolomon::new(63, 47).unwrap();
    let channel = GilbertElliott::new(0.0, 1.0, 0.0, 0.0);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..20 {
        let data: Vec<u8> = (0..rs.data_len()).map(|_| rng.gen()).collect();
        let through = channel.corrupt(&rs.encode(&data).unwrap(), &mut rng);
        assert_eq!(rs.decode(&through).unwrap(), data);
    }
}

#[test]
fn rs_reports_failure_beyond_capability_instead_of_miscorrecting_silently() {
    let rs = ReedSolomon::new(63, 47).unwrap(); // t = 8
    let mut rng = StdRng::seed_from_u64(23);
    let data: Vec<u8> = (0..rs.data_len()).map(|_| rng.gen()).collect();
    let codeword = rs.encode(&data).unwrap();
    let mut corrupted = codeword;
    // A solid burst of 3t consecutive corrupted symbols.
    for symbol in corrupted.iter_mut().take(3 * rs.correction_capability()) {
        *symbol ^= 0xA5;
    }
    // For this deterministic input the decoder detects the overload and
    // reports failure (pinned so a regression to silent miscorrection — an
    // `Ok` with garbage — cannot slip through).
    let result = rs.decode(&corrupted);
    assert!(
        matches!(result, Err(SatcomError::DecodingFailure { .. })),
        "expected a DecodingFailure for a 3t burst, got {result:?}"
    );
}
