//! Randomized cross-engine differential testing: for **random** small
//! geometries, topologies, controller configurations and request patterns,
//! the cycle-accurate and event-driven timing engines must produce
//! bit-identical [`Stats`] — every field, including diagnostics such as
//! `stall_cycles`.
//!
//! PR 3 pinned the engine equivalence on the fixed Table I presets and a
//! fixed ablation list (`tests/integration_engines.rs` at the workspace
//! root); this suite turns that pinning into randomized coverage, including
//! the multi-rank bank spaces and rank-switch bus bubbles introduced with
//! the channel/rank scale-out.  The case count follows proptest's default
//! (64) and is raised in CI via `PROPTEST_CASES`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tbi_dram::{
    ChannelTopology, Controller, ControllerConfig, DramConfig, MemorySystem, PagePolicy,
    RefreshMode, Request, SchedulingPolicy, Stats, TimingEngine,
};

/// Builds a small, valid DRAM configuration from sampled axis indices: a
/// preset supplies the (internally consistent) timing set, the geometry is
/// shrunk so refresh deadlines and row conflicts occur within a few
/// thousand cycles.
fn small_config(
    preset_idx: usize,
    bank_groups: u32,
    banks_per_group: u32,
    rows_log2: u32,
    cols_log2: u32,
    ranks: u32,
) -> DramConfig {
    // One combined axis: the paper's Table I presets followed by the modern
    // scale-out presets (HBM2, GDDR6, DDR5-3DS), so their timing sets are
    // differentially tested too.  The baked multi-channel topologies are
    // replaced below — the engines are per-channel.
    let paper = tbi_dram::standards::ALL_CONFIGS;
    let modern = tbi_dram::standards::MODERN_CONFIGS;
    let index = preset_idx % (paper.len() + modern.len());
    let (standard, rate) = if index < paper.len() {
        paper[index]
    } else {
        modern[index - paper.len()]
    };
    let mut config = DramConfig::preset(standard, rate).expect("preset exists");
    config.geometry.bank_groups = bank_groups;
    config.geometry.banks_per_group = banks_per_group;
    config.geometry.rows = 1 << rows_log2;
    config.geometry.columns_per_row = 1 << cols_log2;
    config.topology = ChannelTopology::new(1, ranks);
    config.validate().expect("sampled configuration is valid");
    config
}

/// Generates a request pattern mixing sequential runs (row hits), strided
/// jumps (conflicts, bank/rank switches) and direction changes — the access
/// classes whose timing interactions differ most between scheduler paths.
fn pattern(config: &DramConfig, seed: u64, requests: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let capacity = config.geometry.total_bursts() * u64::from(config.topology.ranks);
    let mut out = Vec::with_capacity(requests);
    let mut cursor = rng.gen_range(0..capacity);
    while out.len() < requests {
        let run = rng.gen_range(1..16usize).min(requests - out.len());
        let writes = rng.gen_bool(0.5);
        for _ in 0..run {
            let address = config.decode_linear(cursor % capacity);
            out.push(if writes {
                Request::write(address)
            } else {
                Request::read(address)
            });
            cursor += 1;
        }
        // Jump: nearby (same rows, different banks) or far (row conflicts).
        cursor = if rng.gen_bool(0.5) {
            cursor.wrapping_add(rng.gen_range(1..64))
        } else {
            rng.gen_range(0..capacity)
        };
    }
    out
}

/// Runs `requests` through a fresh memory system under `engine` (the same
/// saturating [`MemorySystem::run_trace`] drive loop every harness uses)
/// and returns the final window statistics.
fn run(
    config: &DramConfig,
    base: ControllerConfig,
    engine: TimingEngine,
    requests: &[Request],
) -> Stats {
    let ctrl = ControllerConfig { engine, ..base };
    let mut system =
        MemorySystem::with_controller(config.clone(), ctrl).expect("memory system builds");
    system.run_trace(requests.iter().copied())
}

proptest! {
    /// The headline differential property: identical `Stats` from both
    /// engines for random (geometry × topology × refresh × scheduling ×
    /// page-policy × queue × pattern) combinations.
    #[test]
    fn cycle_and_event_engines_agree_on_random_configurations(
        preset_idx in 0usize..16,
        bank_groups_log2 in 0u32..3,
        banks_per_group_log2 in 1u32..3,
        rows_log2 in 6u32..8,
        cols_log2 in 4u32..7,
        ranks_log2 in 0u32..2,
        refresh_idx in 0usize..4,
        scheduling_idx in 0usize..2,
        page_idx in 0usize..2,
        queue_idx in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let config = small_config(
            preset_idx,
            1 << bank_groups_log2,
            1 << banks_per_group_log2,
            rows_log2,
            cols_log2,
            1 << ranks_log2,
        );
        let base = ControllerConfig {
            refresh_mode: [
                None,
                Some(RefreshMode::AllBank),
                Some(RefreshMode::PerBank),
                Some(RefreshMode::Disabled),
            ][refresh_idx],
            scheduling: [SchedulingPolicy::FrFcfs, SchedulingPolicy::Fcfs][scheduling_idx],
            page_policy: [PagePolicy::Open, PagePolicy::Closed][page_idx],
            queue_capacity: [2, 8, 64][queue_idx],
            ..ControllerConfig::default()
        };
        let requests = pattern(&config, seed, 1_500);
        let cycle = run(&config, base, TimingEngine::Cycle, &requests);
        let event = run(&config, base, TimingEngine::Event, &requests);
        prop_assert_eq!(
            &cycle,
            &event,
            "engines diverged: geometry={:?} topology={:?} ctrl={:?} seed={}",
            config.geometry,
            config.topology,
            base,
            seed
        );
        prop_assert_eq!(cycle.completed_requests, requests.len() as u64);
    }

    /// Two consecutive measurement windows (write burst then read-back of
    /// the same addresses, statistics reset in between) must also agree —
    /// any off-by-one clock drift desynchronizes the second window's
    /// refresh deadlines.
    #[test]
    fn engines_agree_across_stats_windows(
        preset_idx in 0usize..16,
        ranks_log2 in 0u32..2,
        seed in 0u64..u64::MAX,
    ) {
        let config = small_config(preset_idx, 2, 2, 7, 5, 1 << ranks_log2);
        let run_windows = |engine: TimingEngine| {
            let ctrl = ControllerConfig { engine, ..ControllerConfig::default() };
            let mut controller = Controller::new(config.clone(), ctrl).expect("controller builds");
            let mut windows = Vec::new();
            for (phase, writes) in [(0u64, true), (1, false)] {
                let requests: Vec<Request> = pattern(&config, seed ^ phase, 600)
                    .into_iter()
                    .map(|r| {
                        if writes {
                            Request::write(r.address)
                        } else {
                            Request::read(r.address)
                        }
                    })
                    .collect();
                for request in requests {
                    while !controller.can_accept() {
                        controller.step();
                    }
                    assert!(controller.enqueue(request));
                }
                controller.drain();
                windows.push(controller.stats().clone());
                controller.reset_stats();
            }
            windows
        };
        let cycle = run_windows(TimingEngine::Cycle);
        let event = run_windows(TimingEngine::Event);
        prop_assert_eq!(cycle, event, "windows diverged for seed {}", seed);
    }
}
