//! Randomized sequential-vs-threaded differential testing: for **random**
//! small geometries, channel topologies, controller configurations, request
//! patterns and worker counts, [`ChannelRouter::run_phase_threaded`] must
//! produce [`CombinedStats`] bit-identical to the sequential
//! [`ChannelRouter::run_phase`] — every per-channel field, including
//! diagnostics such as `stall_cycles`.
//!
//! The threaded drive replays each channel's projection of the sequential
//! admission schedule (fill, burst-until-accepting, fill, …, drain) on its
//! own worker; channels share no state, so the worker count and the
//! channel-to-worker distribution must never leak into the results.  This
//! suite pins that invariant the same way `engine_differential.rs` pins
//! cycle/event equivalence.  The case count follows proptest's default (64)
//! and is raised in CI via `PROPTEST_CASES`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tbi_dram::{
    ChannelRouter, ChannelTopology, CombinedStats, ControllerConfig, DramConfig, PagePolicy,
    RefreshMode, Request, SchedulingPolicy, TimingEngine,
};

/// Builds a small, valid multi-channel DRAM configuration from sampled axis
/// indices (the `engine_differential.rs` generator plus a channel axis).
fn small_config(
    preset_idx: usize,
    bank_groups: u32,
    banks_per_group: u32,
    rows_log2: u32,
    cols_log2: u32,
    channels: u32,
    ranks: u32,
) -> DramConfig {
    let presets = tbi_dram::standards::ALL_CONFIGS;
    let (standard, rate) = presets[preset_idx % presets.len()];
    let mut config = DramConfig::preset(standard, rate).expect("preset exists");
    config.geometry.bank_groups = bank_groups;
    config.geometry.banks_per_group = banks_per_group;
    config.geometry.rows = 1 << rows_log2;
    config.geometry.columns_per_row = 1 << cols_log2;
    config.topology = ChannelTopology::new(channels, ranks);
    config.validate().expect("sampled configuration is valid");
    config
}

/// Generates one channel's request pattern mixing sequential runs (row
/// hits), strided jumps (conflicts, bank/rank switches) and direction
/// changes — addresses are channel-local, as `run_phase` expects.
fn pattern(config: &DramConfig, seed: u64, requests: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let capacity = config.geometry.total_bursts() * u64::from(config.topology.ranks);
    let mut out = Vec::with_capacity(requests);
    let mut cursor = rng.gen_range(0..capacity);
    while out.len() < requests {
        let run = rng.gen_range(1..16usize).min(requests - out.len());
        let writes = rng.gen_bool(0.5);
        for _ in 0..run {
            let address = config.decode_linear(cursor % capacity);
            out.push(if writes {
                Request::write(address)
            } else {
                Request::read(address)
            });
            cursor += 1;
        }
        cursor = if rng.gen_bool(0.5) {
            cursor.wrapping_add(rng.gen_range(1..64))
        } else {
            rng.gen_range(0..capacity)
        };
    }
    out
}

/// Per-channel traces for `config`, sized unevenly (channel `c` gets
/// `base + 97 * c` requests) so the laggard-driven admission order is
/// exercised, not just the symmetric case.
fn traces(config: &DramConfig, seed: u64, base: usize) -> Vec<Vec<Request>> {
    (0..config.topology.channels)
        .map(|channel| {
            pattern(
                config,
                seed ^ (u64::from(channel) << 32),
                base + 97 * channel as usize,
            )
        })
        .collect()
}

/// Drives a fresh router over `traces` with `threads` workers (0 selects
/// the sequential `run_phase` path) and returns the combined statistics.
fn run(
    config: &DramConfig,
    ctrl: ControllerConfig,
    traces: &[Vec<Request>],
    threads: usize,
) -> CombinedStats {
    let mut router = ChannelRouter::new(config.clone(), ctrl).expect("router builds");
    let iters: Vec<_> = traces.iter().map(|t| t.iter().copied()).collect();
    if threads == 0 {
        router.run_phase(iters)
    } else {
        router.run_phase_threaded(iters, threads)
    }
}

proptest! {
    /// The headline differential property: identical `CombinedStats` from
    /// the sequential and threaded drives for random (geometry × channel
    /// topology × refresh × scheduling × page-policy × queue × engine ×
    /// pattern × thread-count) combinations, including thread counts that
    /// are odd or exceed the channel count.
    #[test]
    fn threaded_drive_matches_sequential_on_random_configurations(
        preset_idx in 0usize..10,
        bank_groups_log2 in 0u32..3,
        banks_per_group_log2 in 1u32..3,
        rows_log2 in 6u32..8,
        cols_log2 in 4u32..7,
        channels_log2 in 0u32..3,
        ranks_log2 in 0u32..2,
        refresh_idx in 0usize..4,
        scheduling_idx in 0usize..2,
        page_idx in 0usize..2,
        queue_idx in 0usize..3,
        engine_idx in 0usize..2,
        threads_idx in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let config = small_config(
            preset_idx,
            1 << bank_groups_log2,
            1 << banks_per_group_log2,
            rows_log2,
            cols_log2,
            1 << channels_log2,
            1 << ranks_log2,
        );
        let ctrl = ControllerConfig {
            refresh_mode: [
                None,
                Some(RefreshMode::AllBank),
                Some(RefreshMode::PerBank),
                Some(RefreshMode::Disabled),
            ][refresh_idx],
            scheduling: [SchedulingPolicy::FrFcfs, SchedulingPolicy::Fcfs][scheduling_idx],
            page_policy: [PagePolicy::Open, PagePolicy::Closed][page_idx],
            queue_capacity: [2, 8, 64][queue_idx],
            engine: [TimingEngine::Cycle, TimingEngine::Event][engine_idx],
        };
        // 1, 2, 4 workers plus an odd count that never divides the
        // power-of-two channel axis evenly.
        let threads = [1usize, 2, 4, 3][threads_idx];
        let traces = traces(&config, seed, 400);
        let sequential = run(&config, ctrl, &traces, 0);
        let threaded = run(&config, ctrl, &traces, threads);
        prop_assert_eq!(
            &sequential,
            &threaded,
            "threaded drive diverged: topology={:?} ctrl={:?} threads={} seed={}",
            config.topology,
            ctrl,
            threads,
            seed
        );
        let completed: u64 = sequential
            .per_channel()
            .iter()
            .map(|s| s.completed_requests)
            .sum();
        let expected: u64 = traces.iter().map(|t| t.len() as u64).sum();
        prop_assert_eq!(completed, expected);
    }

    /// Consecutive measurement windows (write phase, statistics reset, read
    /// phase on the same router) must also agree for every thread count —
    /// any cross-phase clock or bank-state divergence desynchronizes the
    /// second window.
    #[test]
    fn threaded_drive_matches_sequential_across_stats_windows(
        preset_idx in 0usize..10,
        channels_log2 in 0u32..3,
        threads_idx in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let config = small_config(preset_idx, 2, 2, 7, 5, 1 << channels_log2, 1);
        let ctrl = ControllerConfig::default();
        let threads = [1usize, 2, 4, 3][threads_idx];
        let run_windows = |threads: usize| -> Vec<CombinedStats> {
            let mut router =
                ChannelRouter::new(config.clone(), ctrl).expect("router builds");
            let mut windows = Vec::new();
            for (phase, writes) in [(0u64, true), (1, false)] {
                let phase_traces: Vec<Vec<Request>> = traces(&config, seed ^ phase, 200)
                    .into_iter()
                    .map(|trace| {
                        trace
                            .into_iter()
                            .map(|r| {
                                if writes {
                                    Request::write(r.address)
                                } else {
                                    Request::read(r.address)
                                }
                            })
                            .collect()
                    })
                    .collect();
                let iters: Vec<_> =
                    phase_traces.iter().map(|t| t.iter().copied()).collect();
                windows.push(if threads == 0 {
                    router.run_phase(iters)
                } else {
                    router.run_phase_threaded(iters, threads)
                });
                router.reset_stats();
            }
            windows
        };
        let sequential = run_windows(0);
        let threaded = run_windows(threads);
        prop_assert_eq!(
            sequential,
            threaded,
            "windows diverged for {} threads, seed {}",
            threads,
            seed
        );
    }
}
